//! # dfm-par — deterministic parallel execution substrate
//!
//! Every engine in this workspace (litho convolution, DRC sweeps,
//! Monte-Carlo critical area, pattern scanning, timing extraction) is
//! required to produce **bit-identical output at any thread count** —
//! the determinism contract in `DESIGN.md`. This crate is the only
//! place threads are created: a std-only scoped fork-join layer whose
//! primitives guarantee *deterministic ordered reduction*: results are
//! combined in input order regardless of completion order.
//!
//! The contract has two halves, one provided here and one owed by the
//! caller:
//!
//! * **this crate** always delivers per-item / per-chunk results in
//!   input order, and partitions work purely by index (never by timing,
//!   never by which worker got there first);
//! * **the caller** must make each item/chunk computation a pure
//!   function of its index and inputs. RNG-consuming tasks take
//!   per-chunk seeds (`dfm_rand::Seed::derive(chunk_index)` or
//!   sequentially pre-forked generators), never a stream shared across
//!   chunks.
//!
//! Under those rules `DFM_THREADS=1` and `DFM_THREADS=64` produce the
//! same bits, which is what the cross-thread determinism suite at the
//! workspace root asserts end to end.
//!
//! ## Thread count
//!
//! [`thread_count`] resolves, in order: a scoped [`with_threads`]
//! override (propagated into worker threads so nested parallel regions
//! follow the same setting), the `DFM_THREADS` environment variable,
//! then [`std::thread::available_parallelism`]. A resolved count of 1
//! takes a zero-overhead sequential path — no threads are spawned and
//! no result buffers are reordered.
//!
//! ```
//! let doubled = dfm_par::par_map(&[1, 2, 3, 4], |_, &x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6, 8]);
//!
//! // Identical output at any thread count, by construction:
//! let at_one = dfm_par::with_threads(1, || dfm_par::par_map_range(10, |i| i * i));
//! let at_eight = dfm_par::with_threads(8, || dfm_par::par_map_range(10, |i| i * i));
//! assert_eq!(at_one, at_eight);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    /// Scoped thread-count override; 0 means "no override".
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// `DFM_THREADS` parsed once per process (0 / unset / garbage → none).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("DFM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The number of worker threads parallel primitives will use right now:
/// a [`with_threads`] override if one is active on this thread, else
/// `DFM_THREADS`, else the machine's available parallelism.
pub fn thread_count() -> usize {
    let o = OVERRIDE.with(|c| c.get());
    if o > 0 {
        return o;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` with the thread count pinned to `n` (for tests, benches and
/// the determinism suite). The override is scoped to this call and is
/// inherited by worker threads spawned inside it, so nested parallel
/// regions follow the same setting.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n > 0, "thread count must be at least 1");
    OVERRIDE.with(|c| {
        let prev = c.replace(n);
        let guard = RestoreOverride { prev };
        let out = f();
        drop(guard);
        out
    })
}

/// Restores the thread-local override even if the closure panics.
struct RestoreOverride {
    prev: usize,
}

impl Drop for RestoreOverride {
    fn drop(&mut self) {
        OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Fork-join over chunk indices `0..n_chunks`: `work(chunk)` runs on
/// some worker, results come back ordered by chunk index. The shared
/// cursor hands out chunks dynamically (load balance) but the output
/// position of each result is its index, so completion order is
/// invisible to the caller.
fn fork_join_indexed<R: Send>(
    n_chunks: usize,
    threads: usize,
    work: &(impl Fn(usize) -> R + Sync),
) -> Vec<R> {
    debug_assert!(threads > 1 && n_chunks > 1);
    let workers = threads.min(n_chunks);
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    // Workers inherit the effective count so nested
                    // parallel regions follow the caller's setting.
                    with_threads(threads, || {
                        let mut mine = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n_chunks {
                                return mine;
                            }
                            mine.push((i, work(i)));
                        }
                    })
                })
            })
            .collect();
        // Join every worker before reacting to any panic, then rethrow
        // the first worker's payload on the calling thread — a single
        // clean unwind instead of a panic-while-panicking teardown.
        let mut results = Vec::with_capacity(workers);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(r) => results.push(r),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        results
    });
    // Ordered reduction: place every result at its input index.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n_chunks);
    slots.resize_with(n_chunks, || None);
    for (i, r) in collected.drain(..).flatten() {
        debug_assert!(slots[i].is_none());
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every chunk produced a result"))
        .collect()
}

/// Maps `f(index, &item)` over `items`, returning results in input
/// order. Sequential when the effective thread count is 1.
pub fn par_map<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let threads = thread_count();
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    fork_join_indexed(items.len(), threads, &|i| f(i, &items[i]))
}

/// Maps `f(i)` over `0..n`, returning results in index order.
pub fn par_map_range<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = thread_count();
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    fork_join_indexed(n, threads, &f)
}

/// Splits `items` into contiguous chunks of `chunk_len` and maps
/// `f(chunk_index, chunk)` over them, returning per-chunk results in
/// chunk order. Chunk boundaries depend only on `chunk_len`, never on
/// the thread count — the partition a caller derives per-chunk seeds
/// from is therefore stable.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn par_chunks<T: Sync, R: Send>(
    items: &[T],
    chunk_len: usize,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let threads = thread_count();
    if threads <= 1 || items.len() <= chunk_len {
        return items.chunks(chunk_len).enumerate().map(|(i, c)| f(i, c)).collect();
    }
    let n_chunks = items.len().div_ceil(chunk_len);
    fork_join_indexed(n_chunks, threads, &|i| {
        let start = i * chunk_len;
        let end = (start + chunk_len).min(items.len());
        f(i, &items[start..end])
    })
}

/// Runs `f(chunk_index, element_offset, chunk)` over disjoint mutable
/// chunks of `data`, `chunk_len` elements each (the last chunk may be
/// short). `element_offset` is the index of the chunk's first element
/// in `data`. Used for row-band raster passes where each band owns a
/// contiguous span of pixels.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let threads = thread_count();
    if threads <= 1 || data.len() <= chunk_len {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, i * chunk_len, chunk);
        }
        return;
    }
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let n_chunks = chunks.len();
    let workers = threads.min(n_chunks);
    // Static contiguous partition of the chunk list per worker; each
    // chunk is still tagged with its global index for the callback.
    let per_worker = n_chunks.div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = chunks;
        while !rest.is_empty() {
            let take = per_worker.min(rest.len());
            let tail = rest.split_off(take);
            let mine = std::mem::replace(&mut rest, tail);
            scope.spawn(move || {
                with_threads(threads, || {
                    for (i, chunk) in mine {
                        f(i, i * chunk_len, chunk);
                    }
                });
            });
        }
    });
}

/// Streaming ordered reduction over a lazily produced sequence.
///
/// `produce(i)` builds item `i` (for `i` in `0..n`) on some worker;
/// `fold` consumes the items **strictly in index order** on the calling
/// thread. At most `window` produced-but-unconsumed items exist at any
/// moment, so a pipeline over `n` expensive items (layout tiles, raster
/// bands) holds O(`window`) of them in memory instead of O(`n`) — this
/// is the primitive the tiled engines stream tiles through.
///
/// Determinism: the fold order is the index order regardless of worker
/// completion order, so the result is bit-identical at any thread
/// count; `produce` must be a pure function of its index.
///
/// # Panics
///
/// Panics if `window == 0` or a worker panics.
pub fn par_reduce_streaming<T: Send, A>(
    n: usize,
    window: usize,
    produce: impl Fn(usize) -> T + Sync,
    init: A,
    mut fold: impl FnMut(A, T) -> A,
) -> A {
    assert!(window > 0, "window must be positive");
    let threads = thread_count();
    if threads <= 1 || n <= 1 {
        let mut acc = init;
        for i in 0..n {
            acc = fold(acc, produce(i));
        }
        return acc;
    }

    use std::collections::BTreeMap;
    use std::sync::{Condvar, Mutex};

    /// Shared pipeline state: the next index to claim, the next index
    /// the consumer will fold, the finished-but-unfolded items, and the
    /// poison latch a panicking producer leaves behind (so the consumer
    /// rethrows instead of waiting forever for an item that will never
    /// arrive).
    struct State<T> {
        next_claim: usize,
        base: usize,
        done: BTreeMap<usize, T>,
        poisoned: bool,
        poison: Option<Box<dyn std::any::Any + Send>>,
    }

    let state = Mutex::new(State {
        next_claim: 0,
        base: 0,
        done: BTreeMap::new(),
        poisoned: false,
        poison: None,
    });
    // `item`: signalled when the item the consumer waits for arrives.
    // `space`: signalled when `base` advances and claims may resume.
    let item = Condvar::new();
    let space = Condvar::new();

    std::thread::scope(|scope| {
        let workers = threads.min(n);
        for _ in 0..workers {
            let (state, item, space) = (&state, &item, &space);
            let produce = &produce;
            scope.spawn(move || {
                with_threads(threads, || loop {
                    let i = {
                        let mut s = state.lock().expect("dfm-par streaming lock");
                        while !s.poisoned && s.next_claim < n && s.next_claim - s.base >= window {
                            s = space.wait(s).expect("dfm-par streaming wait");
                        }
                        if s.poisoned || s.next_claim >= n {
                            return;
                        }
                        s.next_claim += 1;
                        s.next_claim - 1
                    };
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| produce(i))) {
                        Ok(t) => {
                            let mut s = state.lock().expect("dfm-par streaming lock");
                            s.done.insert(i, t);
                            if i == s.base {
                                item.notify_all();
                            }
                        }
                        Err(payload) => {
                            let mut s = state.lock().expect("dfm-par streaming lock");
                            if !s.poisoned {
                                s.poisoned = true;
                                s.poison = Some(payload);
                            }
                            item.notify_all();
                            space.notify_all();
                            return;
                        }
                    }
                })
            });
        }

        let mut acc = init;
        for i in 0..n {
            let t = {
                let mut s = state.lock().expect("dfm-par streaming lock");
                loop {
                    if s.poisoned {
                        // `poisoned` stays latched so remaining workers
                        // drain; rethrow the producer's panic here.
                        let payload = s.poison.take();
                        space.notify_all();
                        drop(s);
                        match payload {
                            Some(p) => std::panic::resume_unwind(p),
                            None => panic!("dfm-par streaming producer panicked"),
                        }
                    }
                    if let Some(t) = s.done.remove(&i) {
                        s.base = i + 1;
                        space.notify_all();
                        break t;
                    }
                    s = item.wait(s).expect("dfm-par streaming wait");
                }
            };
            acc = fold(acc, t);
        }
        acc
    })
}

/// Maps `map(chunk_index, chunk)` over `chunk_len`-sized chunks of
/// `items`, then folds the per-chunk accumulators **in chunk order**
/// with `fold`. Returns `None` for empty input. Because the fold order
/// is the input order, non-associative-in-practice reductions (f64
/// sums) are bit-identical at every thread count.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn par_reduce_ordered<T: Sync, A: Send>(
    items: &[T],
    chunk_len: usize,
    map: impl Fn(usize, &[T]) -> A + Sync,
    mut fold: impl FnMut(A, A) -> A,
) -> Option<A> {
    let mut acc: Option<A> = None;
    for a in par_chunks(items, chunk_len, map) {
        acc = Some(match acc {
            None => a,
            Some(prev) => fold(prev, a),
        });
    }
    acc
}

// ---------------------------------------------------------------------------
// Persistent worker pool + cooperative cancellation
// ---------------------------------------------------------------------------

use dfm_fault::FaultPlane;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::{Arc, Condvar, Mutex};

/// Fault-injection site: panic inside a pool task, keyed by submission
/// index (see [`WorkerPool::with_fault_plane`]).
pub const SITE_TASK_PANIC: &str = "par.task.panic";

/// Fault-injection site: delay before a pool task runs, keyed by
/// submission index. The injected virtual milliseconds are slept as
/// real milliseconds, capped at one second.
pub const SITE_TASK_DELAY: &str = "par.task.delay";

/// A cooperative cancellation flag shared between a task's submitter and
/// its executors. Cloning shares the flag. Cancellation is a latch: once
/// set it never resets — resumable computations mint a fresh token per
/// attempt instead of reusing a cancelled one.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Latches the token cancelled.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called on any
    /// clone of this token.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Counters a [`WorkerPool`] maintains about its queue — the "queue
/// depth hooks" long-running services publish as load gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks submitted but not yet started.
    pub queue_depth: usize,
    /// Tasks currently executing on a worker.
    pub in_flight: usize,
    /// Largest queue depth ever observed.
    pub queue_depth_peak: usize,
    /// Largest concurrent in-flight count ever observed.
    pub in_flight_peak: usize,
    /// Tasks that ran to completion (including ones that panicked).
    pub completed: u64,
    /// Tasks skipped because their [`CancelToken`] was already
    /// cancelled when a worker picked them up.
    pub skipped: u64,
    /// Tasks whose closure panicked (the panic is contained; the worker
    /// survives).
    pub panicked: u64,
}

/// How a task submitted with [`WorkerPool::submit_supervised`] ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskOutcome {
    /// The closure ran to completion.
    Completed,
    /// The closure panicked; the payload is rendered to a message. The
    /// panic was contained and the worker survives.
    Panicked(String),
    /// The task never ran: its [`CancelToken`] was already cancelled
    /// when a worker dequeued it.
    Skipped,
}

type PoolTask = Box<dyn FnOnce() + Send + 'static>;
type ExitHook = Box<dyn FnOnce(TaskOutcome) + Send + 'static>;

struct QueuedTask {
    token: Option<CancelToken>,
    task: PoolTask,
    on_exit: Option<ExitHook>,
    /// Monotonic submission index — the fault-plane key for the
    /// pool-level injection sites.
    submit_idx: u64,
}

struct PoolQueue {
    tasks: VecDeque<QueuedTask>,
    in_flight: usize,
    shutdown: bool,
}

/// Reorder buffer for [`WorkerPool::submit_sequenced`]: tasks carry a
/// dense sequence number and enter the FIFO strictly in sequence
/// order, whatever thread hands them over.
struct SequencedIntake {
    next_seq: u64,
    held: std::collections::BTreeMap<u64, (Option<CancelToken>, PoolTask, Option<ExitHook>)>,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signalled when a task is pushed or shutdown begins.
    available: Condvar,
    /// Reorder buffer for sequence-numbered intake.
    intake: Mutex<SequencedIntake>,
    /// Signalled when the pool drains to idle.
    idle: Condvar,
    /// Fault-injection plane; `None` (the default) costs nothing.
    plane: Option<Arc<FaultPlane>>,
    submitted: AtomicU64,
    queue_depth_peak: AtomicUsize,
    in_flight_peak: AtomicUsize,
    completed: AtomicU64,
    skipped: AtomicU64,
    panicked: AtomicU64,
}

/// A persistent fork-free worker pool for long-running services.
///
/// Unlike the scoped fork-join primitives above, a `WorkerPool` owns its
/// threads for its whole lifetime and accepts `'static` boxed tasks —
/// the execution substrate for job services that schedule many
/// independent work units (layout tiles) and merge results *by index*
/// on the consumer side. The pool itself makes no ordering promise
/// beyond FIFO dispatch; determinism is the caller's ordered merge.
///
/// Tasks submitted with [`submit_cancellable`](WorkerPool::submit_cancellable)
/// are skipped (never run) if their [`CancelToken`] is already
/// cancelled when a worker dequeues them — the pool-level half of
/// cancelling at a work-unit boundary. A task that panics is contained
/// ([`std::panic::catch_unwind`]); the worker thread survives and the
/// panic is counted in [`PoolStats::panicked`].
///
/// Dropping the pool shuts it down: queued tasks still drain, then the
/// workers exit and are joined.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool::with_fault_plane(threads, None)
    }

    /// Spawns a pool whose workers consult a fault-injection plane:
    /// [`SITE_TASK_DELAY`] before a task runs (slept as real
    /// milliseconds, capped at 1 s) and [`SITE_TASK_PANIC`] inside the
    /// task's containment boundary, both keyed by the task's submission
    /// index. `None` is exactly [`WorkerPool::new`].
    pub fn with_fault_plane(threads: usize, plane: Option<Arc<FaultPlane>>) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                tasks: VecDeque::new(),
                in_flight: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            idle: Condvar::new(),
            intake: Mutex::new(SequencedIntake {
                next_seq: 0,
                held: std::collections::BTreeMap::new(),
            }),
            plane,
            submitted: AtomicU64::new(0),
            queue_depth_peak: AtomicUsize::new(0),
            in_flight_peak: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The fault plane this pool consults, if any.
    pub fn fault_plane(&self) -> Option<&Arc<FaultPlane>> {
        self.shared.plane.as_ref()
    }

    /// Enqueues a task.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        self.push(None, Box::new(task), None);
    }

    /// Enqueues a task that is silently skipped if `token` is already
    /// cancelled when a worker dequeues it.
    pub fn submit_cancellable(&self, token: &CancelToken, task: impl FnOnce() + Send + 'static) {
        self.push(Some(token.clone()), Box::new(task), None);
    }

    /// Enqueues a task under supervision: `on_exit` is called exactly
    /// once with how the task ended — [`TaskOutcome::Completed`],
    /// [`TaskOutcome::Panicked`] (with the rendered payload), or
    /// [`TaskOutcome::Skipped`] if `token` was already cancelled at
    /// dequeue. This is the pool-level half of a retry/quarantine
    /// supervisor: even a panic the task's own bookkeeping missed still
    /// reaches the supervisor.
    pub fn submit_supervised(
        &self,
        token: &CancelToken,
        task: impl FnOnce() + Send + 'static,
        on_exit: impl FnOnce(TaskOutcome) + Send + 'static,
    ) {
        self.push(Some(token.clone()), Box::new(task), Some(Box::new(on_exit)));
    }

    /// Enqueues a supervised task under **grant-ordered intake**: the
    /// task carries a dense sequence number (`0, 1, 2, ...`) and joins
    /// the run queue strictly in sequence order, no matter which thread
    /// hands it over or in what order the handovers race. A task whose
    /// predecessors have not arrived yet is held in a reorder buffer
    /// and released the moment the gap fills.
    ///
    /// This is the pool-side half of a fair-share scheduler: the
    /// scheduler assigns sequence numbers under its own lock (so the
    /// grant *log* is deterministic), and sequenced intake guarantees
    /// workers also *start* tasks in that exact order, even when
    /// concurrent completions pump new grants from different threads.
    ///
    /// Sequence numbers must be dense per pool; a permanently missing
    /// number would hold all later tasks forever. Tasks still held at
    /// pool drop are discarded without running their exit hooks.
    pub fn submit_sequenced(
        &self,
        seq: u64,
        token: &CancelToken,
        task: impl FnOnce() + Send + 'static,
        on_exit: impl FnOnce(TaskOutcome) + Send + 'static,
    ) {
        let mut intake = self.shared.intake.lock().expect("dfm-par intake lock");
        if seq != intake.next_seq {
            assert!(
                seq > intake.next_seq,
                "sequenced submit {seq} replays an already-admitted sequence number"
            );
            intake
                .held
                .insert(seq, (Some(token.clone()), Box::new(task), Some(Box::new(on_exit))));
            return;
        }
        self.push(Some(token.clone()), Box::new(task), Some(Box::new(on_exit)));
        intake.next_seq += 1;
        loop {
            let next = intake.next_seq;
            let Some((token, task, on_exit)) = intake.held.remove(&next) else {
                break;
            };
            self.push(token, task, on_exit);
            intake.next_seq += 1;
        }
    }

    /// Tasks parked in the sequenced-intake reorder buffer, waiting for
    /// a predecessor sequence number to arrive.
    pub fn sequenced_held(&self) -> usize {
        self.shared.intake.lock().expect("dfm-par intake lock").held.len()
    }

    fn push(&self, token: Option<CancelToken>, task: PoolTask, on_exit: Option<ExitHook>) {
        let submit_idx = self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let depth = {
            let mut q = self.shared.queue.lock().expect("dfm-par pool lock");
            assert!(!q.shutdown, "submit on a shut-down WorkerPool");
            q.tasks.push_back(QueuedTask { token, task, on_exit, submit_idx });
            q.tasks.len()
        };
        self.shared.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
        self.shared.available.notify_one();
    }

    /// A snapshot of the pool's load counters.
    pub fn stats(&self) -> PoolStats {
        let (queue_depth, in_flight) = {
            let q = self.shared.queue.lock().expect("dfm-par pool lock");
            (q.tasks.len(), q.in_flight)
        };
        PoolStats {
            queue_depth,
            in_flight,
            queue_depth_peak: self.shared.queue_depth_peak.load(Ordering::Relaxed),
            in_flight_peak: self.shared.in_flight_peak.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            skipped: self.shared.skipped.load(Ordering::Relaxed),
            panicked: self.shared.panicked.load(Ordering::Relaxed),
        }
    }

    /// Blocks until the queue is empty and no task is executing.
    pub fn wait_idle(&self) {
        let mut q = self.shared.queue.lock().expect("dfm-par pool lock");
        while !q.tasks.is_empty() || q.in_flight > 0 {
            q = self.shared.idle.wait(q).expect("dfm-par pool wait");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("dfm-par pool lock");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let item = {
            let mut q = shared.queue.lock().expect("dfm-par pool lock");
            loop {
                if let Some(item) = q.tasks.pop_front() {
                    q.in_flight += 1;
                    let now = q.in_flight;
                    shared.in_flight_peak.fetch_max(now, Ordering::Relaxed);
                    break item;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).expect("dfm-par pool wait");
            }
        };
        let QueuedTask { token, task, on_exit, submit_idx } = item;
        let outcome = if token.is_some_and(|t| t.is_cancelled()) {
            shared.skipped.fetch_add(1, Ordering::Relaxed);
            TaskOutcome::Skipped
        } else {
            if let Some(plane) = &shared.plane {
                if let Some(vms) = plane.delay_vms(SITE_TASK_DELAY, submit_idx, 0) {
                    std::thread::sleep(std::time::Duration::from_millis(vms.min(1000)));
                }
            }
            let plane = shared.plane.as_deref();
            let run = move || {
                if let Some(plane) = plane {
                    plane.maybe_panic(SITE_TASK_PANIC, submit_idx, 0);
                }
                task();
            };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
            shared.completed.fetch_add(1, Ordering::Relaxed);
            match result {
                Ok(()) => TaskOutcome::Completed,
                Err(payload) => {
                    shared.panicked.fetch_add(1, Ordering::Relaxed);
                    TaskOutcome::Panicked(panic_payload_message(payload.as_ref()))
                }
            }
        };
        if let Some(hook) = on_exit {
            // The hook runs outside the task's containment: a panicking
            // supervisor is a bug we want loud, not a task failure.
            hook(outcome);
        }
        let mut q = shared.queue.lock().expect("dfm-par pool lock");
        q.in_flight -= 1;
        if q.tasks.is_empty() && q.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
}

/// Renders a caught panic payload to a stable message (`&str` and
/// `String` payloads verbatim, anything else a fixed fallback).
pub fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_rand::{Rng, Seed};

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = with_threads(7, || par_map(&items, |i, &x| i * 1000 + x));
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 1000 + i);
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let items: Vec<i64> = (0..500).collect();
        let run = |t: usize| {
            with_threads(t, || {
                par_chunks(&items, 16, |ci, chunk| {
                    // Chunk-seeded RNG: the caller half of the contract.
                    let mut rng = Rng::from_seed(Seed(99).derive(ci as u64));
                    chunk.iter().map(|&x| x + rng.range(0i64..10)).sum::<i64>()
                })
            })
        };
        let a = run(1);
        let b = run(2);
        let c = run(8);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn par_chunks_mut_covers_disjointly() {
        let mut data = vec![0u64; 997];
        with_threads(5, || {
            par_chunks_mut(&mut data, 100, |ci, off, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v += (ci as u64) << 32 | (off + k) as u64;
                }
            });
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v & 0xffff_ffff, i as u64, "element offset wrong at {i}");
            assert_eq!(v >> 32, (i / 100) as u64, "chunk index wrong at {i}");
        }
    }

    #[test]
    fn par_reduce_ordered_is_input_order() {
        // Float folding order matters; assert it is the chunk order by
        // using a non-commutative fold.
        let items: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let seq = items
            .chunks(7)
            .map(|c| c.iter().sum::<f64>())
            .fold(None::<f64>, |acc, a| Some(acc.map_or(a, |p| p / 2.0 + a)))
            .unwrap();
        let par = with_threads(6, || {
            par_reduce_ordered(&items, 7, |_, c| c.iter().sum::<f64>(), |p, a| p / 2.0 + a)
        })
        .unwrap();
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn empty_inputs() {
        let none: Vec<u8> = Vec::new();
        assert!(par_map(&none, |_, &x| x).is_empty());
        assert!(par_map_range(0, |i| i).is_empty());
        assert!(par_chunks(&none, 4, |_, c| c.len()).is_empty());
        assert_eq!(par_reduce_ordered(&none, 4, |_, c| c.len(), |a, b| a + b), None);
        let mut empty: Vec<u8> = Vec::new();
        par_chunks_mut(&mut empty, 4, |_, _, _| panic!("no chunks expected"));
    }

    #[test]
    fn streaming_folds_in_index_order() {
        // Non-commutative fold pins the order; identical across thread
        // counts and window sizes.
        let run = |t: usize, w: usize| {
            with_threads(t, || {
                par_reduce_streaming(37, w, |i| (i as f64) + 1.0, 0.0f64, |a, x| a / 2.0 + x)
            })
        };
        let seq = run(1, 1);
        for (t, w) in [(2, 1), (4, 3), (8, 16), (3, 64)] {
            assert_eq!(seq.to_bits(), run(t, w).to_bits(), "t={t} w={w}");
        }
    }

    #[test]
    fn streaming_bounds_outstanding_items() {
        use std::sync::atomic::{AtomicIsize, Ordering};
        let live = AtomicIsize::new(0);
        let peak = AtomicIsize::new(0);
        let window = 3;
        let total: usize = with_threads(6, || {
            par_reduce_streaming(
                200,
                window,
                |i| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    i
                },
                0usize,
                |a, x| {
                    live.fetch_sub(1, Ordering::SeqCst);
                    a + x
                },
            )
        });
        assert_eq!(total, 199 * 200 / 2);
        // In-flight items are bounded by the window plus one per worker
        // that has claimed-but-not-yet-queued an item.
        assert!(
            peak.load(Ordering::SeqCst) <= (window + 6) as isize,
            "peak {} exceeds window bound",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn streaming_empty_and_sequential() {
        assert_eq!(par_reduce_streaming(0, 4, |i| i, 7usize, |a, x| a + x), 7);
        let s = with_threads(1, || par_reduce_streaming(5, 2, |i| i, 0usize, |a, x| a * 10 + x));
        assert_eq!(s, 1234); // 0,1,2,3,4 folded in order
    }

    #[test]
    fn with_threads_scopes_and_restores() {
        let before = thread_count();
        let inside = with_threads(3, thread_count);
        assert_eq!(inside, 3);
        assert_eq!(thread_count(), before);
        // Nested overrides stack.
        let nested = with_threads(4, || with_threads(2, thread_count));
        assert_eq!(nested, 2);
    }

    #[test]
    fn workers_inherit_override() {
        let counts = with_threads(4, || par_map_range(8, |_| thread_count()));
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_panics() {
        with_threads(0, || ());
    }

    #[test]
    fn pool_runs_all_tasks() {
        let pool = WorkerPool::new(3);
        let sum = Arc::new(AtomicUsize::new(0));
        for i in 0..100 {
            let sum = Arc::clone(&sum);
            pool.submit(move || {
                sum.fetch_add(i, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(sum.load(Ordering::SeqCst), 99 * 100 / 2);
        let stats = pool.stats();
        assert_eq!(stats.completed, 100);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.in_flight, 0);
        assert!(stats.queue_depth_peak >= 1);
        assert!(stats.in_flight_peak >= 1);
    }

    #[test]
    fn pool_skips_cancelled_tasks() {
        // One worker, first task blocks until we cancel the token the
        // queued tasks carry — those must be skipped, never run.
        let pool = WorkerPool::new(1);
        let token = CancelToken::new();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let gate = Arc::clone(&gate);
            pool.submit(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
        }
        for _ in 0..5 {
            let ran = Arc::clone(&ran);
            pool.submit_cancellable(&token, move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        token.cancel();
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        pool.wait_idle();
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        let stats = pool.stats();
        assert_eq!(stats.skipped, 5);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn pool_survives_panicking_task() {
        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("task boom"));
        let ok = Arc::new(AtomicUsize::new(0));
        {
            let ok = Arc::clone(&ok);
            pool.submit(move || {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(ok.load(Ordering::SeqCst), 1);
        let stats = pool.stats();
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn pool_drop_drains_queue() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..20 {
                let done = Arc::clone(&done);
                pool.submit(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(done.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn cancel_token_latches_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn fork_join_propagates_worker_panic_cleanly() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map_range(64, |i| {
                    if i == 17 {
                        panic!("chunk 17 exploded");
                    }
                    i
                })
            })
        });
        let payload = caught.expect_err("must propagate the worker panic");
        assert_eq!(panic_payload_message(payload.as_ref()), "chunk 17 exploded");
    }

    #[test]
    fn streaming_producer_panic_does_not_deadlock() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_reduce_streaming(
                    100,
                    3,
                    |i| {
                        if i == 5 {
                            panic!("producer 5 exploded");
                        }
                        i
                    },
                    0usize,
                    |a, x| a + x,
                )
            })
        });
        let payload = caught.expect_err("must propagate the producer panic");
        assert_eq!(panic_payload_message(payload.as_ref()), "producer 5 exploded");
    }

    #[test]
    fn fork_join_propagates_panic_in_the_last_chunk() {
        // The final chunk is the regression-prone case: when it
        // panics, every other worker has already drained the cursor
        // and exited cleanly, so the join loop sees exactly one Err —
        // which must still unwind with the original payload instead of
        // being lost among the drained results. Includes n == threads
        // (one chunk per worker) and n < threads (idle workers).
        for (n, t) in [(64usize, 4usize), (4, 4), (2, 8)] {
            let caught = std::panic::catch_unwind(|| {
                with_threads(t, || {
                    par_map_range(n, |i| {
                        if i == n - 1 {
                            panic!("last chunk exploded");
                        }
                        i
                    })
                })
            });
            let payload = caught.expect_err("must propagate the last chunk's panic");
            assert_eq!(
                panic_payload_message(payload.as_ref()),
                "last chunk exploded",
                "n={n} t={t}"
            );
        }
    }

    #[test]
    fn streaming_panic_in_the_last_item_does_not_deadlock() {
        // When index n-1 panics, every earlier item has been produced
        // and may already be folded, so no further `done` insert will
        // ever signal `item`: the poison latch alone must wake the
        // consumer blocked on the last item AND any worker parked on
        // the window, or the scope join hangs forever. Window 1 is the
        // tightest case (the panicking claim waits for the fold of
        // n-2); a window past n means no worker ever parks.
        for (t, w) in [(2usize, 1usize), (4, 3), (4, 64), (8, 2)] {
            let n = 37;
            let caught = std::panic::catch_unwind(|| {
                with_threads(t, || {
                    par_reduce_streaming(
                        n,
                        w,
                        |i| {
                            if i == n - 1 {
                                panic!("last producer exploded");
                            }
                            i
                        },
                        0usize,
                        |a, x| a + x,
                    )
                })
            });
            let payload = caught.expect_err("must propagate the last producer's panic");
            assert_eq!(
                panic_payload_message(payload.as_ref()),
                "last producer exploded",
                "t={t} w={w}"
            );
        }
    }

    #[test]
    fn streaming_panic_with_more_workers_than_items() {
        // n=2 with a 4-thread pool spawns min(4, 2) workers; index 1 —
        // the last item — panics after index 0 was folded (window 1
        // forces that ordering). The consumer is already waiting on
        // item 1 when the poison lands.
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_reduce_streaming(
                    2,
                    1,
                    |i| {
                        if i == 1 {
                            panic!("tail boom");
                        }
                        i
                    },
                    0usize,
                    |a, x| a + x,
                )
            })
        });
        let payload = caught.expect_err("must propagate the tail panic");
        assert_eq!(panic_payload_message(payload.as_ref()), "tail boom");
    }

    #[test]
    fn supervised_tasks_report_outcomes() {
        let pool = WorkerPool::new(2);
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let record = |outcomes: &Arc<Mutex<Vec<(u8, TaskOutcome)>>>, tag: u8| {
            let outcomes = Arc::clone(outcomes);
            move |o: TaskOutcome| outcomes.lock().unwrap().push((tag, o))
        };
        let live = CancelToken::new();
        let dead = CancelToken::new();
        dead.cancel();
        pool.submit_supervised(&live, || (), record(&outcomes, 0));
        pool.submit_supervised(&live, || panic!("supervised boom"), record(&outcomes, 1));
        pool.submit_supervised(&dead, || unreachable!("cancelled"), record(&outcomes, 2));
        pool.wait_idle();
        let mut got = outcomes.lock().unwrap().clone();
        got.sort_by_key(|(tag, _)| *tag);
        assert_eq!(
            got,
            vec![
                (0, TaskOutcome::Completed),
                (1, TaskOutcome::Panicked("supervised boom".to_string())),
                (2, TaskOutcome::Skipped),
            ]
        );
    }

    #[test]
    fn pool_fault_plane_injects_deterministic_panics() {
        use dfm_fault::{FaultAction, FaultPlan, FaultPlane, FaultRule};
        // Submission index 2 panics; everything else completes.
        let plan = FaultPlan::seeded(11)
            .with_rule(FaultRule::new(SITE_TASK_PANIC, FaultAction::Panic).key(2));
        let pool = WorkerPool::with_fault_plane(1, Some(Arc::new(FaultPlane::new(plan))));
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let token = CancelToken::new();
        for i in 0..4u64 {
            let outcomes = Arc::clone(&outcomes);
            pool.submit_supervised(&token, || (), move |o| {
                outcomes.lock().unwrap().push((i, o));
            });
        }
        pool.wait_idle();
        let got = outcomes.lock().unwrap().clone();
        for (i, o) in &got {
            if *i == 2 {
                assert_eq!(
                    *o,
                    TaskOutcome::Panicked("injected panic at par.task.panic (key 2, attempt 0)".to_string())
                );
            } else {
                assert_eq!(*o, TaskOutcome::Completed, "task {i}");
            }
        }
        assert_eq!(pool.stats().panicked, 1);
        let injected = pool.fault_plane().expect("plane").injected();
        assert_eq!(injected.len(), 1);
        assert_eq!(injected[0].key, 2);
    }

    #[test]
    fn sequenced_intake_reorders_racing_submissions() {
        // Hand tasks over in scrambled order; a single worker must
        // still run them in sequence-number order.
        let pool = WorkerPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let token = CancelToken::new();
        for seq in [3u64, 1, 4, 0, 2, 5] {
            let order = Arc::clone(&order);
            pool.submit_sequenced(seq, &token, move || order.lock().unwrap().push(seq), |_| ());
        }
        pool.wait_idle();
        assert_eq!(*order.lock().unwrap(), [0, 1, 2, 3, 4, 5]);
        assert_eq!(pool.sequenced_held(), 0);
    }

    #[test]
    fn sequenced_intake_holds_gaps_and_runs_hooks() {
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        let hooks = Arc::new(Mutex::new(0u32));
        // seq 1 and 2 arrive first: both parked behind the missing 0.
        for seq in [1u64, 2] {
            let hooks = Arc::clone(&hooks);
            pool.submit_sequenced(seq, &token, || (), move |o| {
                assert_eq!(o, TaskOutcome::Completed);
                *hooks.lock().unwrap() += 1;
            });
        }
        assert_eq!(pool.sequenced_held(), 2);
        pool.wait_idle(); // nothing runnable yet
        assert_eq!(*hooks.lock().unwrap(), 0);
        let hooks_0 = Arc::clone(&hooks);
        pool.submit_sequenced(0, &token, || (), move |o| {
            assert_eq!(o, TaskOutcome::Completed);
            *hooks_0.lock().unwrap() += 1;
        });
        pool.wait_idle();
        assert_eq!(*hooks.lock().unwrap(), 3);
        assert_eq!(pool.sequenced_held(), 0);
        // Plain submissions bypass the reorder buffer entirely (the
        // path retries take: they must not wait behind future grants).
        let ran = Arc::new(Mutex::new(false));
        let ran2 = Arc::clone(&ran);
        pool.submit(move || *ran2.lock().unwrap() = true);
        pool.wait_idle();
        assert!(*ran.lock().unwrap());
    }
}
