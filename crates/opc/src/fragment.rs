//! Edge fragmentation and offset application.
//!
//! OPC moves pieces of feature boundary ("fragments") perpendicular to
//! themselves. A fragment displaced *outward* adds a strip of mask
//! material along its span; displaced *inward* it removes one. The
//! corrected mask is rebuilt exactly as
//! `drawn ∪ (outward strips) ∖ (inward strips)`.

use dfm_geom::{Coord, Rect, Region};

/// One movable boundary fragment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// True for a fragment of a vertical edge (moves along x).
    pub vertical: bool,
    /// Edge position: x for vertical fragments, y for horizontal.
    pub pos: Coord,
    /// Span start along the edge (y for vertical, x for horizontal).
    pub lo: Coord,
    /// Span end along the edge.
    pub hi: Coord,
    /// True if the outward normal points towards +x (vertical) / +y
    /// (horizontal); i.e. the region interior is on the negative side.
    pub outward_positive: bool,
}

impl Fragment {
    /// Length of the fragment along its edge.
    pub fn len(&self) -> Coord {
        self.hi - self.lo
    }

    /// True if the fragment has zero length.
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }

    /// Midpoint coordinate along the edge.
    pub fn mid(&self) -> Coord {
        self.lo + (self.hi - self.lo) / 2
    }

    /// Control point of the fragment (its midpoint on the edge).
    pub fn control_point(&self) -> dfm_geom::Point {
        if self.vertical {
            dfm_geom::Point::new(self.pos, self.mid())
        } else {
            dfm_geom::Point::new(self.mid(), self.pos)
        }
    }

    /// The strip of material swept when this fragment moves by `offset`
    /// (positive = outward). Returns `(rect, added)`: `added` is true for
    /// outward motion (material gained).
    pub fn sweep(&self, offset: Coord) -> Option<(Rect, bool)> {
        if offset == 0 {
            return None;
        }
        let added = offset > 0;
        let d = offset.abs();
        // Outward-positive, outward move: add on [pos, pos+d).
        // Outward-positive, inward move: remove on [pos-d, pos).
        // Outward-negative mirrors.
        let (a, b) = match (self.outward_positive, added) {
            (true, true) => (self.pos, self.pos + d),
            (true, false) => (self.pos - d, self.pos),
            (false, true) => (self.pos - d, self.pos),
            (false, false) => (self.pos, self.pos + d),
        };
        let rect = if self.vertical {
            Rect::new(a, self.lo, b, self.hi)
        } else {
            Rect::new(self.lo, a, self.hi, b)
        };
        Some((rect, added))
    }
}

/// Splits region boundaries into fragments no longer than `max_len`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fragmenter {
    /// Maximum fragment length; long edges are split into equal pieces.
    pub max_len: Coord,
}

impl Fragmenter {
    /// Creates a fragmenter.
    ///
    /// # Panics
    ///
    /// Panics if `max_len <= 0`.
    pub fn new(max_len: Coord) -> Self {
        assert!(max_len > 0, "fragment length must be positive");
        Fragmenter { max_len }
    }

    /// Fragments every boundary edge of `region`.
    pub fn fragment(&self, region: &Region) -> Vec<Fragment> {
        let mut out = Vec::new();
        let edges = region.boundary_edges();
        for e in &edges.vertical {
            self.split(e.y0, e.y1, |lo, hi| {
                out.push(Fragment {
                    vertical: true,
                    pos: e.x,
                    lo,
                    hi,
                    // interior_right means outward is -x.
                    outward_positive: !e.interior_right,
                });
            });
        }
        for e in &edges.horizontal {
            self.split(e.x0, e.x1, |lo, hi| {
                out.push(Fragment {
                    vertical: false,
                    pos: e.y,
                    lo,
                    hi,
                    outward_positive: !e.interior_up,
                });
            });
        }
        out
    }

    fn split(&self, lo: Coord, hi: Coord, mut emit: impl FnMut(Coord, Coord)) {
        let len = hi - lo;
        if len <= 0 {
            return;
        }
        let n = ((len + self.max_len - 1) / self.max_len).max(1);
        for k in 0..n {
            let a = lo + k * len / n;
            let b = lo + (k + 1) * len / n;
            if b > a {
                emit(a, b);
            }
        }
    }
}

/// Rebuilds the corrected mask from per-fragment offsets (parallel to
/// `fragments`; positive = outward).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn apply_offsets(drawn: &Region, fragments: &[Fragment], offsets: &[Coord]) -> Region {
    assert_eq!(
        fragments.len(),
        offsets.len(),
        "one offset per fragment required"
    );
    let mut adds: Vec<Rect> = Vec::new();
    let mut subs: Vec<Rect> = Vec::new();
    for (f, &off) in fragments.iter().zip(offsets) {
        if let Some((rect, added)) = f.sweep(off) {
            if added {
                adds.push(rect);
            } else {
                subs.push(rect);
            }
        }
    }
    let mut mask = drawn.clone();
    if !adds.is_empty() {
        mask = mask.union(&Region::from_rects(adds));
    }
    if !subs.is_empty() {
        mask = mask.difference(&Region::from_rects(subs));
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_counts_for_square() {
        let r = Region::from_rect(Rect::new(0, 0, 300, 300));
        // max_len 100: each 300-long edge splits into 3.
        let frags = Fragmenter::new(100).fragment(&r);
        assert_eq!(frags.len(), 12);
        assert!(frags.iter().all(|f| f.len() == 100));
    }

    #[test]
    fn short_edges_one_fragment() {
        let r = Region::from_rect(Rect::new(0, 0, 50, 50));
        let frags = Fragmenter::new(100).fragment(&r);
        assert_eq!(frags.len(), 4);
    }

    #[test]
    fn outward_direction_is_away_from_interior() {
        let r = Region::from_rect(Rect::new(0, 0, 100, 100));
        let frags = Fragmenter::new(1000).fragment(&r);
        let left = frags
            .iter()
            .find(|f| f.vertical && f.pos == 0)
            .expect("left edge fragment");
        assert!(!left.outward_positive, "outward of left edge is -x");
        let right = frags
            .iter()
            .find(|f| f.vertical && f.pos == 100)
            .expect("right edge fragment");
        assert!(right.outward_positive);
    }

    #[test]
    fn uniform_outward_offsets_equal_bloat() {
        let r = Region::from_rect(Rect::new(0, 0, 200, 100));
        let frags = Fragmenter::new(10_000).fragment(&r);
        let offsets = vec![10; frags.len()];
        let grown = apply_offsets(&r, &frags, &offsets);
        // Edge strips without corner squares: bloat minus the 4 corners.
        assert_eq!(grown.area(), r.bloated(10).area() - 4 * 100);
        assert_eq!(grown.bbox(), Rect::new(-10, -10, 210, 110));
    }

    #[test]
    fn uniform_inward_offsets_equal_shrink() {
        let r = Region::from_rect(Rect::new(0, 0, 200, 100));
        let frags = Fragmenter::new(10_000).fragment(&r);
        let offsets = vec![-10; frags.len()];
        let shrunk = apply_offsets(&r, &frags, &offsets);
        assert_eq!(shrunk, r.shrunk(10));
    }

    #[test]
    fn zero_offsets_are_identity() {
        let r = Region::from_rects([Rect::new(0, 0, 100, 50), Rect::new(200, 0, 260, 90)]);
        let frags = Fragmenter::new(40).fragment(&r);
        let same = apply_offsets(&r, &frags, &vec![0; frags.len()]);
        assert_eq!(same, r);
    }

    #[test]
    fn single_fragment_move_makes_jog() {
        let r = Region::from_rect(Rect::new(0, 0, 300, 100));
        let mut frags = Fragmenter::new(100).fragment(&r);
        frags.sort_by_key(|f| (f.vertical, f.pos, f.lo));
        // Move one top-edge fragment outward.
        let idx = frags
            .iter()
            .position(|f| !f.vertical && f.pos == 100 && f.lo == 100)
            .expect("middle top fragment");
        let mut offsets = vec![0; frags.len()];
        offsets[idx] = 20;
        let jogged = apply_offsets(&r, &frags, &offsets);
        assert_eq!(jogged.area(), r.area() + 100 * 20);
        assert!(jogged.contains_point(dfm_geom::Point::new(150, 110)));
        assert!(!jogged.contains_point(dfm_geom::Point::new(50, 110)));
    }

    #[test]
    #[should_panic(expected = "one offset per fragment")]
    fn mismatched_offsets_panic() {
        let r = Region::from_rect(Rect::new(0, 0, 10, 10));
        let frags = Fragmenter::new(100).fragment(&r);
        let _ = apply_offsets(&r, &frags, &[0; 1]);
    }
}
