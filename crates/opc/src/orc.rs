//! ORC — post-OPC (optical rule check) verification.
//!
//! After OPC, the corrected mask must be re-verified: does the printed
//! image meet the drawn intent across the process window? ORC combines
//! EPE statistics with residual hotspot detection at every corner
//! condition.

use dfm_geom::{Coord, Region};
use dfm_litho::hotspots::{classify_deviations, Hotspot, HotspotParams};
use dfm_litho::metrics::{edge_placement_errors, summarize_epe, EpeSummary};
use dfm_litho::{Condition, LithoSimulator};
use std::fmt;

/// Verification thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrcParams {
    /// EPE sampling interval along edges.
    pub sample_spacing: Coord,
    /// How far inside the drawn edge the EPE probe sits; pullback beyond
    /// this reads as a missing (broken) image.
    pub probe_depth: Coord,
    /// |EPE| above this is a violation.
    pub epe_tolerance: Coord,
    /// Hotspot detector configuration.
    pub hotspot: HotspotParams,
}

impl OrcParams {
    /// Defaults scaled from a minimum feature size.
    pub fn for_feature_size(w: Coord) -> Self {
        OrcParams {
            sample_spacing: w,
            probe_depth: w / 4,
            epe_tolerance: w / 6,
            hotspot: HotspotParams::for_min_width(w),
        }
    }
}

/// Verification result at one exposure condition.
#[derive(Clone, Debug)]
pub struct OrcConditionResult {
    /// The condition verified.
    pub condition: Condition,
    /// EPE statistics against the drawn target.
    pub epe: EpeSummary,
    /// Samples with |EPE| above tolerance.
    pub epe_violations: usize,
    /// Residual printability hotspots.
    pub hotspots: Vec<Hotspot>,
}

/// Full ORC report over a set of conditions.
#[derive(Clone, Debug)]
pub struct OrcReport {
    /// Per-condition results, in input order.
    pub per_condition: Vec<OrcConditionResult>,
}

impl OrcReport {
    /// Total residual hotspots across all conditions.
    pub fn total_hotspots(&self) -> usize {
        self.per_condition.iter().map(|c| c.hotspots.len()).sum()
    }

    /// Total EPE violations across all conditions.
    pub fn total_epe_violations(&self) -> usize {
        self.per_condition.iter().map(|c| c.epe_violations).sum()
    }

    /// True if the mask verifies clean everywhere.
    pub fn is_clean(&self) -> bool {
        self.total_hotspots() == 0 && self.total_epe_violations() == 0
    }

    /// Worst RMS EPE across conditions.
    pub fn worst_rms(&self) -> f64 {
        self.per_condition
            .iter()
            .map(|c| c.epe.rms)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for OrcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ORC: {} hotspots, {} EPE violations, worst RMS {:.1} nm",
            self.total_hotspots(),
            self.total_epe_violations(),
            self.worst_rms()
        )?;
        for c in &self.per_condition {
            writeln!(
                f,
                "  {}: rms {:.1} max {} missing {} hotspots {}",
                c.condition, c.epe.rms, c.epe.max_abs, c.epe.missing, c.hotspots.len()
            )?;
        }
        Ok(())
    }
}

/// Verifies `mask` against the drawn `target` at every condition.
pub fn verify(
    sim: &LithoSimulator,
    target: &Region,
    mask: &Region,
    conditions: &[Condition],
    params: OrcParams,
) -> OrcReport {
    let per_condition = conditions
        .iter()
        .map(|&condition| {
            let printed = sim.printed(mask, condition);
            let samples = edge_placement_errors(
                target,
                &printed,
                params.sample_spacing,
                params.probe_depth,
            );
            let epe = summarize_epe(&samples);
            let epe_violations = samples
                .iter()
                .filter(|s| match s.epe {
                    None => true,
                    Some(e) => e.abs() > params.epe_tolerance,
                })
                .count();
            let hotspots = classify_deviations(target, &printed, params.hotspot);
            OrcConditionResult { condition, epe, epe_violations, hotspots }
        })
        .collect();
    OrcReport { per_condition }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelOpc;
    use dfm_geom::Rect;

    #[test]
    fn orc_flags_uncorrected_marginal_mask() {
        let sim = LithoSimulator::for_feature_size(90);
        // A 75 nm line with heavy defocus in the corner set: pinches.
        let target = Region::from_rect(Rect::new(0, 0, 2000, 75));
        let report = verify(
            &sim,
            &target,
            &target,
            &[Condition::nominal(), Condition::with_defocus(200.0)],
            OrcParams::for_feature_size(75),
        );
        assert!(!report.is_clean());
        assert!(report.total_hotspots() > 0 || report.total_epe_violations() > 0);
    }

    #[test]
    fn orc_improves_after_opc() {
        let sim = LithoSimulator::for_feature_size(90);
        let target = Region::from_rect(Rect::new(0, 0, 1200, 90));
        let conditions = [Condition::nominal(), Condition::with_defocus(100.0)];
        let params = OrcParams::for_feature_size(90);
        let raw = verify(&sim, &target, &target, &conditions, params);
        let corrected = ModelOpc::new(sim.clone()).correct(&target);
        let post = verify(&sim, &target, &corrected.mask, &conditions, params);
        assert!(
            post.total_epe_violations() <= raw.total_epe_violations(),
            "OPC should not increase EPE violations: {} -> {}",
            raw.total_epe_violations(),
            post.total_epe_violations()
        );
        assert!(post.worst_rms() <= raw.worst_rms() + 1.0);
    }

    #[test]
    fn clean_wide_geometry_verifies_clean() {
        let sim = LithoSimulator::for_feature_size(90);
        let target = Region::from_rect(Rect::new(0, 0, 3000, 500));
        let report = verify(
            &sim,
            &target,
            &target,
            &[Condition::nominal()],
            OrcParams::for_feature_size(90),
        );
        assert_eq!(report.total_hotspots(), 0);
        // Corner rounding gives small EPE at the four corners only; the
        // vast majority of samples must be in tolerance.
        let total: usize = report.per_condition[0].epe.samples;
        assert!(report.total_epe_violations() * 10 <= total);
    }

    #[test]
    fn report_display_mentions_counts() {
        let sim = LithoSimulator::for_feature_size(90);
        let target = Region::from_rect(Rect::new(0, 0, 500, 200));
        let report = verify(
            &sim,
            &target,
            &target,
            &[Condition::nominal()],
            OrcParams::for_feature_size(90),
        );
        let text = report.to_string();
        assert!(text.contains("ORC:"));
        assert!(text.contains("rms"));
    }
}
