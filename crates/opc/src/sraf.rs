//! Sub-resolution assist features (scatter bars).
//!
//! Isolated edges image with lower contrast and less depth of focus than
//! dense ones. A scatter bar — a mask feature too narrow to print —
//! placed parallel to an isolated edge makes its environment "look
//! dense" to the optics. This module inserts rule-based SRAFs and cleans
//! them against mask rules (MRC).

use dfm_geom::{Coord, Rect, Region};

/// Scatter-bar insertion rules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SrafParams {
    /// Bar width (must stay sub-resolution).
    pub bar_width: Coord,
    /// Centre-of-bar distance from the protected edge.
    pub bar_distance: Coord,
    /// Minimum clearance an edge needs before it gets a bar.
    pub iso_threshold: Coord,
    /// Minimum mask-rule separation between a bar and any geometry.
    pub mrc_space: Coord,
    /// Minimum bar length worth keeping.
    pub min_len: Coord,
}

impl SrafParams {
    /// Defaults for a minimum feature size `w`: bars of w/3 at 1.5·w.
    pub fn for_feature_size(w: Coord) -> Self {
        SrafParams {
            bar_width: w / 3,
            bar_distance: w * 3 / 2,
            iso_threshold: w * 3,
            mrc_space: w / 2,
            min_len: w * 2,
        }
    }
}

/// Inserts scatter bars next to isolated edges of `drawn`.
///
/// Returns only the assist geometry; the full mask is
/// `drawn ∪ insert_srafs(drawn, p)`. Bars are MRC-cleaned: anything
/// closer than `mrc_space` to the drawn geometry or overlapping another
/// bar is trimmed, and fragments shorter than `min_len` are dropped.
pub fn insert_srafs(drawn: &Region, p: SrafParams) -> Region {
    let mut candidates: Vec<Rect> = Vec::new();
    let edges = drawn.boundary_edges();

    for e in &edges.vertical {
        if e.len() < p.min_len {
            continue;
        }
        // Outward direction: -x when interior is right.
        let dir: Coord = if e.interior_right { -1 } else { 1 };
        let near = e.x + dir * p.bar_distance;
        let bar = Rect::new(
            near.min(near + dir * p.bar_width),
            e.y0,
            near.max(near + dir * p.bar_width),
            e.y1,
        );
        candidates.push(bar);
    }
    for e in &edges.horizontal {
        if e.len() < p.min_len {
            continue;
        }
        let dir: Coord = if e.interior_up { -1 } else { 1 };
        let near = e.y + dir * p.bar_distance;
        let bar = Rect::new(
            e.x0,
            near.min(near + dir * p.bar_width),
            e.x1,
            near.max(near + dir * p.bar_width),
        );
        candidates.push(bar);
    }

    // MRC cleanup: keep bar material clear of the drawn geometry. This
    // also deletes bars in gaps narrower than bar_distance (dense edges
    // don't need assists — their neighbour provides the density).
    let keepout = drawn.bloated(p.mrc_space.max(1));
    let bars = Region::from_rects(candidates).difference(&keepout);

    // Also enforce that a bar really sits next to an isolated edge: bars
    // whose far side has geometry within (iso_threshold − bar_distance)
    // would be in a semi-dense gap; the keepout above already trimmed
    // truly dense ones. Finally drop short slivers.
    let kept: Vec<Rect> = bars
        .connected_components()
        .into_iter()
        .filter(|c| {
            let b = c.bbox();
            b.width().max(b.height()) >= p.min_len
        })
        .flat_map(|c| c.into_rects())
        .collect();
    Region::from_rects(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_litho::{Condition, LithoSimulator};

    fn params() -> SrafParams {
        SrafParams::for_feature_size(90)
    }

    #[test]
    fn isolated_line_gets_bars_both_sides() {
        let drawn = Region::from_rect(Rect::new(0, 0, 2000, 90));
        let bars = insert_srafs(&drawn, params());
        assert!(!bars.is_empty());
        // One bar above, one below.
        assert!(bars.rects().iter().any(|b| b.y0 > 90));
        assert!(bars.rects().iter().any(|b| b.y1 < 0));
    }

    #[test]
    fn dense_pair_gets_no_bars_between() {
        let p = params();
        // Gap of 180 < bar_distance-driven requirement: the keepout
        // swallows between-bars.
        let drawn = Region::from_rects([
            Rect::new(0, 0, 2000, 90),
            Rect::new(0, 270, 2000, 360),
        ]);
        let bars = insert_srafs(&drawn, p);
        for b in bars.rects() {
            let in_gap = b.y0 >= 90 && b.y1 <= 270;
            assert!(!in_gap, "unexpected bar in dense gap: {b:?}");
        }
    }

    #[test]
    fn bars_respect_mrc_clearance() {
        let p = params();
        let drawn = Region::from_rect(Rect::new(0, 0, 2000, 90));
        let bars = insert_srafs(&drawn, p);
        let too_close = drawn.bloated(p.mrc_space - 1);
        assert!(bars.intersection(&too_close).is_empty());
    }

    #[test]
    fn bars_do_not_print() {
        let p = params();
        let sim = LithoSimulator::for_feature_size(90);
        let drawn = Region::from_rect(Rect::new(0, 0, 2000, 90));
        let bars = insert_srafs(&drawn, p);
        let mask = drawn.union(&bars);
        let printed = sim.printed(&mask, Condition::nominal());
        // Nothing prints at the bar centreline.
        for b in bars.rects() {
            let c = b.center();
            assert!(
                !printed.contains_point(c),
                "assist feature printed at {c:?}"
            );
        }
    }

    #[test]
    fn bars_improve_depth_of_focus() {
        use dfm_litho::process_window::{bossung, depth_of_focus, CutAxis, CutSpec};
        let sim = LithoSimulator::for_feature_size(90);
        let drawn = Region::from_rect(Rect::new(0, 0, 2000, 120));
        let cut = CutSpec { at: dfm_geom::Point::new(1000, 60), axis: CutAxis::Vertical };
        let defoci: Vec<f64> = (0..8).map(|i| i as f64 * 30.0).collect();
        let raw_points = bossung(&sim, &drawn, cut, &[1.0], &defoci);
        let target = raw_points[0].cd.expect("prints at focus");
        let raw_dof = depth_of_focus(&raw_points, target, 0.10);

        let mask = drawn.union(&insert_srafs(&drawn, params()));
        let sraf_points = bossung(&sim, &mask, cut, &[1.0], &defoci);
        let sraf_dof = depth_of_focus(&sraf_points, target, 0.10);
        assert!(
            sraf_dof >= raw_dof,
            "SRAFs should not reduce DoF: {raw_dof} -> {sraf_dof}"
        );
    }
}
