//! Rule-based OPC: environment-driven edge bias.

use crate::fragment::{apply_offsets, Fragmenter};
use dfm_geom::{Coord, Region};
use dfm_litho::metrics::{x_intervals_at, y_intervals_at};

/// Tuning for [`RuleOpc`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RuleOpcParams {
    /// Fragment length.
    pub fragment_len: Coord,
    /// Bias applied to edges of near-minimum features (`width <
    /// narrow_threshold`).
    pub narrow_bias: Coord,
    /// Bias applied to isolated edges (`space > iso_threshold`).
    pub iso_bias: Coord,
    /// Width below which a feature counts as narrow.
    pub narrow_threshold: Coord,
    /// Spacing above which an edge counts as isolated.
    pub iso_threshold: Coord,
    /// Hard cap on any single edge bias.
    pub max_bias: Coord,
    /// The post-bias gap the table guarantees: assuming the facing edge
    /// biases symmetrically, an edge never moves closer than
    /// `(clearance − min_final_space) / 2`.
    pub min_final_space: Coord,
}

impl RuleOpcParams {
    /// Defaults scaled from a minimum feature size.
    pub fn for_feature_size(w: Coord) -> Self {
        RuleOpcParams {
            fragment_len: w * 2,
            narrow_bias: w / 8,
            iso_bias: w / 10,
            narrow_threshold: w * 3 / 2,
            iso_threshold: w * 3,
            max_bias: w / 4,
            min_final_space: w * 3 / 2,
        }
    }
}

/// Rule-based OPC engine.
///
/// For every boundary fragment it measures the local feature width (along
/// the inward normal) and local clearance (along the outward normal) and
/// applies a table-driven outward bias: narrow features get a width bias,
/// isolated edges get an iso bias, and both effects stack up to
/// `max_bias`. No simulation is used — that is the point of the
/// rule-based generation, and its limitation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RuleOpc {
    /// Tuning parameters.
    pub params: RuleOpcParams,
}

impl RuleOpc {
    /// Creates the engine with the given parameters.
    pub fn new(params: RuleOpcParams) -> Self {
        RuleOpc { params }
    }

    /// Computes the local (width, clearance) environment of a fragment.
    fn environment(&self, drawn: &Region, f: &crate::Fragment) -> (Coord, Coord) {
        let probe = f.control_point();
        let big: Coord = self.params.iso_threshold * 4;
        if f.vertical {
            let ivs = x_intervals_at(drawn, probe.y);
            // The interval whose boundary is this fragment.
            let own = ivs
                .iter()
                .find(|iv| iv.lo <= probe.x && probe.x <= iv.hi)
                .copied();
            let width = own.map_or(0, |iv| iv.len());
            let clearance = if f.outward_positive {
                ivs.iter()
                    .filter(|iv| iv.lo >= probe.x)
                    .map(|iv| iv.lo - probe.x)
                    .filter(|&d| d > 0)
                    .min()
                    .unwrap_or(big)
            } else {
                ivs.iter()
                    .filter(|iv| iv.hi <= probe.x)
                    .map(|iv| probe.x - iv.hi)
                    .filter(|&d| d > 0)
                    .min()
                    .unwrap_or(big)
            };
            (width, clearance)
        } else {
            let ivs = y_intervals_at(drawn, probe.x);
            let own = ivs
                .iter()
                .find(|iv| iv.lo <= probe.y && probe.y <= iv.hi)
                .copied();
            let width = own.map_or(0, |iv| iv.len());
            let clearance = if f.outward_positive {
                ivs.iter()
                    .filter(|iv| iv.lo >= probe.y)
                    .map(|iv| iv.lo - probe.y)
                    .filter(|&d| d > 0)
                    .min()
                    .unwrap_or(big)
            } else {
                ivs.iter()
                    .filter(|iv| iv.hi <= probe.y)
                    .map(|iv| probe.y - iv.hi)
                    .filter(|&d| d > 0)
                    .min()
                    .unwrap_or(big)
            };
            (width, clearance)
        }
    }

    /// Applies rule-based correction, returning the corrected mask.
    pub fn correct(&self, drawn: &Region) -> Region {
        let p = self.params;
        let frags = Fragmenter::new(p.fragment_len).fragment(drawn);
        let mut offsets = Vec::with_capacity(frags.len());
        for f in &frags {
            let (width, clearance) = self.environment(drawn, f);
            let mut bias = 0;
            if width > 0 && width < p.narrow_threshold {
                bias = p.narrow_bias;
            }
            if clearance > p.iso_threshold {
                bias = bias.max(p.iso_bias + p.narrow_bias / 2);
            }
            // Never bias into a tight gap: assuming the facing edge does
            // the same, keep the post-bias gap at min_final_space.
            let cap = ((clearance - p.min_final_space) / 2).max(0);
            offsets.push(bias.min(p.max_bias).min(cap));
        }
        apply_offsets(drawn, &frags, &offsets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::{Point, Rect};

    fn opc() -> RuleOpc {
        RuleOpc::new(RuleOpcParams::for_feature_size(90))
    }

    #[test]
    fn narrow_line_gets_fattened() {
        let drawn = Region::from_rect(Rect::new(0, 0, 2000, 90));
        let corrected = opc().correct(&drawn);
        assert!(corrected.area() > drawn.area());
        // Still contains the drawn line entirely (bias is outward only).
        assert!(drawn.difference(&corrected).is_empty());
    }

    #[test]
    fn wide_dense_feature_unchanged() {
        // Wide feature with near neighbours: no narrow bias, no iso bias.
        let drawn = Region::from_rects([
            Rect::new(0, 0, 3000, 200),
            Rect::new(0, 300, 3000, 500),
            Rect::new(0, 600, 3000, 800),
        ]);
        let corrected = opc().correct(&drawn);
        // The middle feature's long edges face close neighbours (gap 100
        // < iso threshold 270) and it is wide (200 > 135): unchanged
        // except possibly its short ends.
        let mid_strip = corrected.clipped(Rect::new(1000, 250, 2000, 550));
        let drawn_strip = drawn.clipped(Rect::new(1000, 250, 2000, 550));
        assert_eq!(mid_strip.area(), drawn_strip.area());
    }

    #[test]
    fn bias_never_bridges_gap() {
        // Two narrow lines separated by a minimum gap: biases must not
        // make them touch.
        let drawn = Region::from_rects([
            Rect::new(0, 0, 2000, 90),
            Rect::new(0, 180, 2000, 270),
        ]);
        let corrected = opc().correct(&drawn);
        assert_eq!(corrected.connected_components().len(), 2);
        // Gap midline stays clear.
        assert!(!corrected.contains_point(Point::new(1000, 135)));
    }

    #[test]
    fn isolated_edge_biased_more_than_dense() {
        // A narrow line with a neighbour below but nothing above.
        let drawn = Region::from_rects([
            Rect::new(0, 0, 2000, 90),
            Rect::new(0, 180, 2000, 270),
        ]);
        let corrected = opc().correct(&drawn);
        // The outer (isolated) top edge of the upper line moved out more
        // than the inner (dense) edges: probe above the upper line.
        let above = corrected.contains_point(Point::new(1000, 275));
        assert!(above, "isolated edge should be biased outward");
    }

    #[test]
    fn correction_is_deterministic() {
        let drawn = Region::from_rects([
            Rect::new(0, 0, 1000, 90),
            Rect::new(0, 400, 600, 490),
        ]);
        assert_eq!(opc().correct(&drawn), opc().correct(&drawn));
    }
}
