//! Full-layout OPC: tiled model-based correction of an entire layer.
//!
//! Production OPC runs on whole chips by partitioning into tiles with
//! optical halos; corrections inside a tile only depend on geometry
//! within the halo, so tiles are independent (and, in production,
//! massively parallel — the "farm" cost the panel debated). This module
//! applies [`ModelOpc`] tile by tile and stitches the corrected mask
//! back together.

use crate::ModelOpc;
use dfm_geom::{Coord, Rect, Region};

/// Tiling configuration.
#[derive(Clone, Copy, Debug)]
pub struct TileParams {
    /// Core tile edge length.
    pub tile: Coord,
    /// Extra context beyond the optical halo (fragments near the core
    /// boundary see their true environment).
    pub margin: Coord,
}

impl TileParams {
    /// A reasonable default: 4 µm tiles with one-σ extra margin.
    pub fn for_engine(engine: &ModelOpc) -> Self {
        TileParams {
            tile: 4_000,
            margin: engine.sim.optics.sigma0_nm() as Coord,
        }
    }
}

/// Statistics from a full-layout correction.
#[derive(Clone, Copy, Debug, Default)]
pub struct LayoutOpcStats {
    /// Tiles processed (tiles with no geometry are skipped).
    pub tiles: usize,
    /// Total drawn area before.
    pub area_before: i128,
    /// Total mask area after correction.
    pub area_after: i128,
}

/// Corrects an entire layer tile by tile, returning the corrected mask
/// and the run statistics.
pub fn correct_layout(
    engine: &ModelOpc,
    drawn: &Region,
    params: TileParams,
) -> (Region, LayoutOpcStats) {
    let bbox = drawn.bbox();
    if bbox.is_empty() {
        return (Region::new(), LayoutOpcStats::default());
    }
    let halo = engine.sim.halo_nm(engine.condition) + params.margin;
    let mut stats = LayoutOpcStats {
        tiles: 0,
        area_before: drawn.area(),
        area_after: 0,
    };
    let mut pieces: Vec<Rect> = Vec::new();
    let mut y = bbox.y0;
    while y < bbox.y1 {
        let y1 = (y + params.tile).min(bbox.y1);
        let mut x = bbox.x0;
        while x < bbox.x1 {
            let x1 = (x + params.tile).min(bbox.x1);
            let core = Rect::new(x, y, x1, y1);
            let context = drawn.clipped(core.expanded(halo));
            if !context.is_empty() {
                stats.tiles += 1;
                let corrected = engine.correct(&context).mask;
                // Keep only the core's share of the corrected mask, with
                // a small apron so fragment jogs at the boundary survive;
                // overlaps between neighbouring tiles union out.
                pieces.extend(corrected.clipped(core.expanded(params.margin)).into_rects());
            }
            x = x1;
        }
        y = y1;
    }
    let mask = Region::from_rects(pieces);
    stats.area_after = mask.area();
    (mask, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_litho::{Condition, LithoSimulator};

    fn engine() -> ModelOpc {
        ModelOpc::new(LithoSimulator::for_feature_size(90))
    }

    fn sample_layer() -> Region {
        // Several wires spread over multiple tiles.
        Region::from_rects([
            Rect::new(0, 0, 9_000, 90),
            Rect::new(0, 270, 9_000, 360),
            Rect::new(0, 2_000, 3_000, 2_090),
            Rect::new(6_000, 2_000, 9_000, 2_090),
            Rect::new(4_000, 4_000, 4_090, 9_000),
        ])
    }

    #[test]
    fn tiled_correction_improves_epe() {
        let eng = engine();
        let drawn = sample_layer();
        let (mask, stats) = correct_layout(&eng, &drawn, TileParams { tile: 3_000, margin: 40 });
        assert!(stats.tiles > 1, "should use several tiles");
        assert!(stats.area_after > stats.area_before, "correction grows narrow wires");
        let before = eng.verify(&drawn, &drawn);
        let after = eng.verify(&drawn, &mask);
        assert!(
            after.rms < before.rms,
            "EPE rms {} -> {}",
            before.rms,
            after.rms
        );
    }

    #[test]
    fn tiled_matches_untiled_closely() {
        let eng = engine();
        let drawn = Region::from_rects([
            Rect::new(0, 0, 5_000, 90),
            Rect::new(0, 270, 5_000, 360),
        ]);
        let (tiled, _) = correct_layout(&eng, &drawn, TileParams { tile: 2_000, margin: 60 });
        let untiled = eng.correct(&drawn).mask;
        // The two masks agree outside a small boundary-effect area.
        let diff = tiled.xor(&untiled).area();
        assert!(
            (diff as f64) < 0.02 * untiled.area() as f64,
            "tiled differs by {diff} of {}",
            untiled.area()
        );
        // And both print with comparable fidelity.
        let t = eng.verify(&drawn, &tiled);
        let u = eng.verify(&drawn, &untiled);
        assert!((t.rms - u.rms).abs() < 2.0, "{} vs {}", t.rms, u.rms);
    }

    #[test]
    fn empty_layer_is_trivial() {
        let eng = engine();
        let (mask, stats) = correct_layout(&eng, &Region::new(), TileParams::for_engine(&eng));
        assert!(mask.is_empty());
        assert_eq!(stats.tiles, 0);
    }

    #[test]
    fn deterministic() {
        let eng = engine();
        let drawn = sample_layer();
        let p = TileParams { tile: 3_000, margin: 40 };
        let (a, _) = correct_layout(&eng, &drawn, p);
        let (b, _) = correct_layout(&eng, &drawn, p);
        assert_eq!(a, b);
    }

    #[test]
    fn condition_is_respected() {
        let mut eng = engine();
        eng.condition = Condition::nominal();
        let drawn = Region::from_rect(Rect::new(0, 0, 4_000, 90));
        let (mask, _) = correct_layout(&eng, &drawn, TileParams::for_engine(&eng));
        assert!(!mask.is_empty());
    }
}
