//! Model-based OPC: iterative EPE-feedback correction.

use crate::fragment::{apply_offsets, Fragment, Fragmenter};
use dfm_geom::{Coord, Region};
use dfm_litho::metrics::{summarize_epe, x_intervals_at, y_intervals_at, EpeSample, EpeSummary};
use dfm_litho::{Condition, LithoSimulator};

/// Model-based OPC engine: simulate, measure per-fragment EPE against the
/// drawn target, move each fragment against its error, repeat.
#[derive(Clone, Debug)]
pub struct ModelOpc {
    /// The lithography model used in the feedback loop.
    pub sim: LithoSimulator,
    /// Feedback iterations.
    pub iterations: usize,
    /// Fraction of the measured EPE applied per iteration (0–1).
    pub gain: f64,
    /// Hard cap on any fragment's total offset (mask rule).
    pub max_move: Coord,
    /// Fragment length.
    pub fragment_len: Coord,
    /// Exposure condition the correction targets.
    pub condition: Condition,
}

/// The outcome of a model-based correction.
#[derive(Clone, Debug)]
pub struct OpcResult {
    /// The corrected mask.
    pub mask: Region,
    /// EPE statistics of the *uncorrected* mask.
    pub epe_before: EpeSummary,
    /// EPE statistics of the corrected mask.
    pub epe_after: EpeSummary,
    /// RMS EPE after each iteration (convergence trace).
    pub convergence: Vec<f64>,
}

impl ModelOpc {
    /// Creates an engine with defaults derived from the simulator's scale
    /// (fragment ≈ 2σ, 6 iterations, gain 0.7).
    pub fn new(sim: LithoSimulator) -> Self {
        let sigma = sim.optics.sigma0_nm();
        ModelOpc {
            sim,
            iterations: 6,
            gain: 0.7,
            max_move: (sigma * 1.2) as Coord,
            fragment_len: (2.0 * sigma) as Coord,
            condition: Condition::nominal(),
        }
    }

    /// Measures the per-fragment EPE of `printed` against the drawn
    /// target (positive = overprint along the outward normal). Missing
    /// image reads as a full pullback of `-max_move`.
    fn fragment_epe(&self, fragments: &[Fragment], printed: &Region) -> Vec<Coord> {
        // Probe well inside the drawn feature so ordinary pullback is
        // measured rather than read as "missing".
        let probe_depth = (self.max_move / 2).max(4);
        fragments
            .iter()
            .map(|f| {
                let cp = f.control_point();
                if f.vertical {
                    let ivs = x_intervals_at(printed, cp.y);
                    let inside_x = if f.outward_positive { cp.x - probe_depth } else { cp.x + probe_depth };
                    match ivs.iter().find(|iv| iv.contains(inside_x)) {
                        None => -self.max_move,
                        Some(iv) => {
                            if f.outward_positive {
                                iv.hi - cp.x
                            } else {
                                cp.x - iv.lo
                            }
                        }
                    }
                } else {
                    let ivs = y_intervals_at(printed, cp.x);
                    let inside_y = if f.outward_positive { cp.y - probe_depth } else { cp.y + probe_depth };
                    match ivs.iter().find(|iv| iv.contains(inside_y)) {
                        None => -self.max_move,
                        Some(iv) => {
                            if f.outward_positive {
                                iv.hi - cp.y
                            } else {
                                cp.y - iv.lo
                            }
                        }
                    }
                }
            })
            .collect()
    }

    /// Runs the correction loop on `drawn`, returning the corrected mask
    /// and before/after verification statistics.
    pub fn correct(&self, drawn: &Region) -> OpcResult {
        let fragments = Fragmenter::new(self.fragment_len).fragment(drawn);
        let mut offsets: Vec<Coord> = vec![0; fragments.len()];
        let mut convergence = Vec::with_capacity(self.iterations);

        let epe_before = self.verify(drawn, drawn);

        for _ in 0..self.iterations {
            let mask = apply_offsets(drawn, &fragments, &offsets);
            let printed = self.sim.printed(&mask, self.condition);
            let epes = self.fragment_epe(&fragments, &printed);
            let mut rms_acc = 0.0;
            for ((off, f), epe) in offsets.iter_mut().zip(&fragments).zip(&epes) {
                let _ = f;
                rms_acc += (*epe as f64) * (*epe as f64);
                let step = (-(*epe) as f64 * self.gain).round() as Coord;
                *off = (*off + step).clamp(-self.max_move, self.max_move);
            }
            convergence.push((rms_acc / epes.len().max(1) as f64).sqrt());
        }

        let mask = apply_offsets(drawn, &fragments, &offsets);
        let epe_after = self.verify(drawn, &mask);
        OpcResult { mask, epe_before, epe_after, convergence }
    }

    /// Simulates `mask` and summarises EPE against the drawn target.
    pub fn verify(&self, drawn: &Region, mask: &Region) -> EpeSummary {
        let printed = self.sim.printed(mask, self.condition);
        let samples: Vec<EpeSample> = dfm_litho::metrics::edge_placement_errors(
            drawn,
            &printed,
            self.fragment_len,
            (self.max_move / 2).max(4),
        );
        summarize_epe(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::Rect;

    fn engine() -> ModelOpc {
        ModelOpc::new(LithoSimulator::for_feature_size(90))
    }

    #[test]
    fn opc_improves_narrow_line_epe() {
        let drawn = Region::from_rect(Rect::new(0, 0, 1500, 90));
        let result = engine().correct(&drawn);
        assert!(
            result.epe_after.rms < result.epe_before.rms,
            "rms {} -> {}",
            result.epe_before.rms,
            result.epe_after.rms
        );
        assert_eq!(result.epe_after.missing, 0);
    }

    #[test]
    fn opc_mask_differs_from_drawn() {
        let drawn = Region::from_rect(Rect::new(0, 0, 1500, 90));
        let result = engine().correct(&drawn);
        assert_ne!(result.mask, drawn);
        // Correction grows a narrow line.
        assert!(result.mask.area() > drawn.area());
    }

    #[test]
    fn convergence_trace_decreases_overall() {
        let drawn = Region::from_rects([
            Rect::new(0, 0, 1500, 90),
            Rect::new(0, 270, 1500, 360),
        ]);
        let result = engine().correct(&drawn);
        let first = result.convergence.first().copied().expect("has iterations");
        let last = result.convergence.last().copied().expect("has iterations");
        assert!(last <= first, "convergence {first} -> {last}");
    }

    #[test]
    fn opc_rescues_line_end_pullback() {
        let eng = engine();
        let drawn = Region::from_rect(Rect::new(0, 0, 800, 90));
        // Raw printing pulls the line ends back.
        let raw_printed = eng.sim.printed(&drawn, Condition::nominal());
        let raw_len = raw_printed.bbox().width();
        let result = eng.correct(&drawn);
        let opc_printed = eng.sim.printed(&result.mask, Condition::nominal());
        let opc_len = opc_printed.bbox().width();
        assert!(
            opc_len > raw_len,
            "OPC should extend printed line length: {raw_len} -> {opc_len}"
        );
    }

    #[test]
    fn correction_is_deterministic() {
        let drawn = Region::from_rect(Rect::new(0, 0, 900, 90));
        let a = engine().correct(&drawn);
        let b = engine().correct(&drawn);
        assert_eq!(a.mask, b.mask);
        assert_eq!(a.convergence, b.convergence);
    }
}
