//! # dfm-opc — optical proximity correction for the `dfm-practice` workspace
//!
//! Implements the two OPC generations whose cost/benefit the DAC 2008
//! panel argued about, plus sub-resolution assist features and post-OPC
//! verification:
//!
//! * [`fragment`] — decomposes a drawn region's boundary into movable
//!   edge **fragments**; correction is expressed as a per-fragment
//!   perpendicular offset and rebuilt with exact region algebra,
//! * [`RuleOpc`] — rule-based OPC: environment-dependent edge bias from a
//!   lookup of local width and spacing (the 1996-era approach),
//! * [`ModelOpc`] — model-based OPC: iterative simulate → measure EPE →
//!   move fragments feedback using the [`dfm_litho`] simulator (the
//!   production approach at the panel date),
//! * [`sraf`] — rule-based sub-resolution assist-feature (scatter-bar)
//!   insertion with mask-rule cleanup,
//! * [`orc`] — post-OPC verification: EPE statistics and residual
//!   hotspots of the corrected mask.
//!
//! ```
//! use dfm_geom::{Rect, Region};
//! use dfm_litho::{Condition, LithoSimulator};
//! use dfm_opc::ModelOpc;
//!
//! let sim = LithoSimulator::for_feature_size(90);
//! let drawn = Region::from_rect(Rect::new(0, 0, 1500, 90));
//! let opc = ModelOpc::new(sim.clone());
//! let result = opc.correct(&drawn);
//! // Corrected mask prints closer to intent than the raw mask does.
//! assert!(result.epe_after.rms <= result.epe_before.rms);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fragment;
pub mod layout_opc;
mod model_based;
pub mod orc;
mod rule_based;
pub mod sraf;

pub use fragment::{apply_offsets, Fragment, Fragmenter};
pub use layout_opc::{correct_layout, LayoutOpcStats, TileParams};
pub use model_based::{ModelOpc, OpcResult};
pub use rule_based::{RuleOpc, RuleOpcParams};
