//! Property-based tests for the OPC engines.

use dfm_geom::{Rect, Region};
use dfm_opc::{apply_offsets, Fragmenter, RuleOpc, RuleOpcParams};
use proptest::prelude::*;

fn arb_wires() -> impl Strategy<Value = Region> {
    prop::collection::vec((0i64..8, 0i64..4, 4i64..20), 1..6).prop_map(|specs| {
        Region::from_rects(specs.into_iter().map(|(start, track, len)| {
            Rect::new(
                start * 100,
                track * 300,
                start * 100 + len * 100,
                track * 300 + 90,
            )
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Outward-only offsets always produce a superset; inward-only a
    /// subset.
    #[test]
    fn offset_direction_containment(region in arb_wires(), d in 1i64..30) {
        let frags = Fragmenter::new(120).fragment(&region);
        let grown = apply_offsets(&region, &frags, &vec![d; frags.len()]);
        prop_assert!(region.difference(&grown).is_empty(), "outward must contain drawn");
        let shrunk = apply_offsets(&region, &frags, &vec![-d; frags.len()]);
        prop_assert!(shrunk.difference(&region).is_empty(), "inward must stay inside drawn");
    }

    /// Fragmentation covers the boundary exactly: fragment lengths sum to
    /// the region perimeter.
    #[test]
    fn fragments_cover_perimeter(region in arb_wires(), max_len in 30i64..500) {
        let frags = Fragmenter::new(max_len).fragment(&region);
        let total: i64 = frags.iter().map(|f| f.len()).sum();
        prop_assert_eq!(total, region.perimeter());
        prop_assert!(frags.iter().all(|f| f.len() <= max_len));
    }

    /// Rule-based OPC never merges components and never shrinks the
    /// drawn geometry.
    #[test]
    fn rule_opc_is_safe(region in arb_wires()) {
        let opc = RuleOpc::new(RuleOpcParams::for_feature_size(90));
        let corrected = opc.correct(&region);
        prop_assert!(region.difference(&corrected).is_empty(), "bias is outward-only");
        prop_assert_eq!(
            corrected.connected_components().len(),
            region.connected_components().len(),
            "bias must not bridge or split"
        );
    }

    /// Rule-based OPC is deterministic and translation-equivariant.
    #[test]
    fn rule_opc_translation_equivariant(region in arb_wires(), dx in -3000i64..3000) {
        let opc = RuleOpc::new(RuleOpcParams::for_feature_size(90));
        let v = dfm_geom::Vector::new(dx, 0);
        let a = opc.correct(&region).translated(v);
        let b = opc.correct(&region.translated(v));
        prop_assert_eq!(a, b);
    }
}
