//! Property-based tests for the OPC engines (dfm-check harness).

use dfm_check::{check, prop_assert, prop_assert_eq, Config, Gen};
use dfm_geom::{Rect, Region};
use dfm_opc::{apply_offsets, Fragmenter, RuleOpc, RuleOpcParams};

fn cfg() -> Config {
    Config::with_cases(48)
}

fn arb_wires() -> impl Gen<Value = Region> {
    dfm_check::vec((0i64..8, 0i64..4, 4i64..20), 1..6).prop_map(|specs| {
        Region::from_rects(specs.into_iter().map(|(start, track, len)| {
            Rect::new(
                start * 100,
                track * 300,
                start * 100 + len * 100,
                track * 300 + 90,
            )
        }))
    })
}

/// Outward-only offsets always produce a superset; inward-only a
/// subset.
#[test]
fn offset_direction_containment() {
    check(
        "offset_direction_containment",
        &cfg(),
        &(arb_wires(), 1i64..30),
        |v| {
            let (region, d) = v;
            let frags = Fragmenter::new(120).fragment(region);
            let grown = apply_offsets(region, &frags, &vec![*d; frags.len()]);
            prop_assert!(region.difference(&grown).is_empty(), "outward must contain drawn");
            let shrunk = apply_offsets(region, &frags, &vec![-*d; frags.len()]);
            prop_assert!(shrunk.difference(region).is_empty(), "inward must stay inside drawn");
            Ok(())
        },
    );
}

/// Fragmentation covers the boundary exactly: fragment lengths sum to
/// the region perimeter.
#[test]
fn fragments_cover_perimeter() {
    check(
        "fragments_cover_perimeter",
        &cfg(),
        &(arb_wires(), 30i64..500),
        |v| {
            let (region, max_len) = v;
            let frags = Fragmenter::new(*max_len).fragment(region);
            let total: i64 = frags.iter().map(|f| f.len()).sum();
            prop_assert_eq!(total, region.perimeter());
            prop_assert!(frags.iter().all(|f| f.len() <= *max_len));
            Ok(())
        },
    );
}

/// Rule-based OPC never merges components and never shrinks the
/// drawn geometry.
#[test]
fn rule_opc_is_safe() {
    check("rule_opc_is_safe", &cfg(), &arb_wires(), |region| {
        let opc = RuleOpc::new(RuleOpcParams::for_feature_size(90));
        let corrected = opc.correct(region);
        prop_assert!(region.difference(&corrected).is_empty(), "bias is outward-only");
        prop_assert_eq!(
            corrected.connected_components().len(),
            region.connected_components().len(),
            "bias must not bridge or split"
        );
        Ok(())
    });
}

/// Rule-based OPC is deterministic and translation-equivariant.
#[test]
fn rule_opc_translation_equivariant() {
    check(
        "rule_opc_translation_equivariant",
        &cfg(),
        &(arb_wires(), -3000i64..3000),
        |v| {
            let (region, dx) = v;
            let opc = RuleOpc::new(RuleOpcParams::for_feature_size(90));
            let shift = dfm_geom::Vector::new(*dx, 0);
            let a = opc.correct(region).translated(shift);
            let b = opc.correct(&region.translated(shift));
            prop_assert_eq!(a, b);
            Ok(())
        },
    );
}
