//! # dfm-check — a minimal, hermetic property-testing harness
//!
//! Replaces `proptest` for this workspace with zero registry
//! dependencies. The pieces:
//!
//! * [`Gen`] — a generator trait (`generate` + optional `shrink`),
//!   implemented for integer/float ranges, booleans, tuples of
//!   generators, [`vec`] collections and [`lowercase_string`]s, with a
//!   [`Gen::map`] combinator for building domain values;
//! * [`check`] — the runner: a fixed iteration budget of seeded cases,
//!   automatic failure shrinking for scalars and vectors, and a
//!   panic message that names the reproducing seed;
//! * seed-corpus files ([`Config::corpus`]) — known-bad seeds are
//!   replayed *before* any random cases and newly found failures are
//!   appended, so regressions stay pinned across runs (the in-repo
//!   replacement for `.proptest-regressions` files).
//!
//! Determinism policy: every case derives from the run seed, the
//! property name and the case index via [`dfm_rand::Seed::derive`] —
//! two `cargo test` runs execute bit-identical cases.
//!
//! ```
//! use dfm_check::{check, prop_assert, Config, Gen};
//!
//! check("add_commutes", &Config::with_cases(64), &(0i64..100, 0i64..100), |v| {
//!     let (a, b) = v;
//!     prop_assert!(a + b == b + a, "{a} {b}");
//!     Ok(())
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dfm_rand::{Rng, Seed};
use std::fmt::Debug;
use std::fs;
use std::io::Write as _;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Sentinel error string meaning "discard this case" (see
/// [`prop_assume!`]). Not counted as a failure.
pub const DISCARD: &str = "__dfm_check_discard__";

/// A property's verdict on one generated case: `Ok(())` passes,
/// `Err(message)` fails (or discards, when the message is [`DISCARD`]).
pub type PropResult = Result<(), String>;

/// A value generator with optional shrinking.
///
/// Shrinking contract: every candidate returned by `shrink` must be
/// *simpler* than the input and still satisfy the generator's own
/// invariants (range bounds, minimum lengths), so the shrink loop
/// terminates and never reports an impossible counterexample.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Generates one value from the given RNG.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Simpler candidate values for a failing case (may be empty).
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f` to build domain objects
    /// (named `prop_map` so it cannot collide with `Iterator::map` on
    /// ranges, mirroring the proptest convention).
    ///
    /// Mapped generators do not shrink (there is no inverse to map a
    /// shrunk output back through); keep inputs raw where shrinking
    /// matters.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

macro_rules! impl_int_gen {
    ($($t:ty),*) => {$(
        impl Gen for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *v;
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    if v - 1 != lo && v - 1 != mid {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
    )*};
}

impl_int_gen!(i64, u64, i32, u32, u16, u8, usize);

impl Gen for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.range(self.clone())
    }

    fn shrink(&self, v: &f64) -> Vec<f64> {
        let lo = self.start;
        let mut out = Vec::new();
        if *v > lo {
            out.push(lo);
            let mid = lo + (*v - lo) / 2.0;
            if mid > lo && mid < *v {
                out.push(mid);
            }
        }
        out
    }
}

/// Uniform boolean generator (shrinks `true` to `false`).
#[derive(Clone, Copy, Debug)]
pub struct BoolGen;

/// Creates a uniform boolean generator.
pub fn bools() -> BoolGen {
    BoolGen
}

impl Gen for BoolGen {
    type Value = bool;

    fn generate(&self, rng: &mut Rng) -> bool {
        rng.bool()
    }

    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_tuple_gen {
    ($(($($G:ident $idx:tt),+))*) => {$(
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for s in self.$idx.shrink(&v.$idx) {
                        let mut c = v.clone();
                        c.$idx = s;
                        out.push(c);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_gen! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Generator of `Vec<T>` with length drawn from `len` (half-open).
///
/// Shrinks by removing elements (never below the minimum length) and
/// by shrinking individual elements through the element generator.
#[derive(Clone, Debug)]
pub struct VecGen<G> {
    elem: G,
    len: Range<usize>,
}

/// Creates a vector generator: `len` elements from `elem`.
pub fn vec<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "empty length range");
    VecGen { elem, len }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        let n = rng.range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let min = self.len.start;
        let mut out = Vec::new();
        // Aggressive first: drop to the minimum length, then halve.
        if v.len() > min {
            out.push(v[..min].to_vec());
            let half = min.max(v.len() / 2);
            if half < v.len() && half > min {
                out.push(v[..half].to_vec());
            }
            // Remove single elements.
            for i in 0..v.len() {
                if v.len() > min {
                    let mut c = v.clone();
                    c.remove(i);
                    out.push(c);
                }
            }
        }
        // Shrink individual elements in place.
        for i in 0..v.len() {
            for s in self.elem.shrink(&v[i]) {
                let mut c = v.clone();
                c[i] = s;
                out.push(c);
            }
        }
        out
    }
}

/// Generator of lowercase ASCII strings with length drawn from `len`.
#[derive(Clone, Debug)]
pub struct LowercaseStringGen {
    len: Range<usize>,
}

/// Creates a `[a-z]{len}` string generator (the label/name alphabet
/// used by the GDSII suites).
pub fn lowercase_string(len: Range<usize>) -> LowercaseStringGen {
    assert!(len.start < len.end, "empty length range");
    LowercaseStringGen { len }
}

impl Gen for LowercaseStringGen {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        let n = rng.range(self.len.clone());
        (0..n).map(|_| (b'a' + rng.range(0u8..26)) as char).collect()
    }

    fn shrink(&self, v: &String) -> Vec<String> {
        let mut out = Vec::new();
        if v.len() > self.len.start {
            out.push(v[..v.len() - 1].to_string());
        }
        if let Some(pos) = v.find(|c| c != 'a') {
            let mut c: Vec<char> = v.chars().collect();
            c[pos] = 'a';
            out.push(c.into_iter().collect());
        }
        out
    }
}

/// A mapped generator (see [`Gen::prop_map`]).
#[derive(Clone, Debug)]
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G, U, F> Gen for Map<G, F>
where
    G: Gen,
    U: Clone + Debug,
    F: Fn(G::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases to run (the iteration budget).
    pub cases: u32,
    /// Run seed; every case seed derives from this, the property name
    /// and the case index.
    pub seed: u64,
    /// Total shrink-candidate evaluations allowed per failure.
    pub max_shrink_steps: u32,
    /// Discard budget as a multiple of `cases`; exceeding it fails the
    /// property (the generator and `prop_assume!` filters disagree).
    pub max_discard_ratio: u32,
    /// Optional seed-corpus file: replayed before random cases, and
    /// appended to (best-effort) when a new failure is found.
    pub corpus: Option<PathBuf>,
}

/// The default run seed. Fixed — never derived from time or entropy —
/// so `cargo test` is bit-identical run to run.
pub const DEFAULT_SEED: u64 = 0xDF4D_C11E_C0FF_EE01;

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            seed: DEFAULT_SEED,
            max_shrink_steps: 4096,
            max_discard_ratio: 16,
            corpus: None,
        }
    }
}

impl Config {
    /// Default configuration with the given case budget.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases, ..Config::default() }
    }

    /// Sets the run seed.
    pub fn seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }

    /// Attaches a seed-corpus file.
    pub fn corpus(mut self, path: impl Into<PathBuf>) -> Config {
        self.corpus = Some(path.into());
        self
    }
}

/// Everything known about one property failure (after shrinking).
#[derive(Clone, Debug)]
pub struct FailureInfo<V> {
    /// The case seed that reproduces the failure: generating from this
    /// seed with the same generator yields `original`.
    pub seed: u64,
    /// Random-case index, or `None` when replayed from the corpus.
    pub case: Option<u32>,
    /// The originally generated failing value.
    pub original: V,
    /// The smallest failing value the shrinker found.
    pub shrunk: V,
    /// Shrink candidates evaluated.
    pub shrink_steps: u32,
    /// The failure message from the property on the shrunk value.
    pub message: String,
}

/// FNV-1a 64-bit hash — used to mix property names into case seeds;
/// also handy for content digests in golden-file tests.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn case_seed(run_seed: u64, name: &str, index: u64) -> u64 {
    Seed(run_seed ^ fnv1a_64(name.as_bytes())).derive(index).0
}

/// Runs the property and panics with a reproducible report on failure.
///
/// Order of execution: corpus seeds (if configured) first, then
/// `cfg.cases` random cases. On failure the counterexample is shrunk
/// and — when a corpus file is configured and the failure came from a
/// random case — its seed is appended to the corpus.
pub fn check<G: Gen>(
    name: &str,
    cfg: &Config,
    gen: &G,
    prop: impl Fn(&G::Value) -> PropResult,
) {
    if let Some(failure) = check_outcome(name, cfg, gen, &prop) {
        if failure.case.is_some() {
            if let Some(path) = &cfg.corpus {
                record_corpus_entry(path, name, failure.seed, &failure.shrunk);
            }
        }
        let origin = match failure.case {
            Some(i) => format!("random case {i}"),
            None => "corpus replay".to_string(),
        };
        panic!(
            "property '{name}' failed ({origin})\n  \
             reproduce: seed 0x{seed:016x}\n  \
             original: {original:?}\n  \
             shrunk ({steps} steps): {shrunk:?}\n  \
             error: {message}",
            seed = failure.seed,
            original = failure.original,
            steps = failure.shrink_steps,
            shrunk = failure.shrunk,
            message = failure.message,
        );
    }
}

/// Non-panicking core of [`check`]: returns the first (shrunk) failure
/// or `None` when all cases pass.
pub fn check_outcome<G: Gen>(
    name: &str,
    cfg: &Config,
    gen: &G,
    prop: &impl Fn(&G::Value) -> PropResult,
) -> Option<FailureInfo<G::Value>> {
    // 1. Replay the persisted corpus before anything random.
    if let Some(path) = &cfg.corpus {
        for (tag, seed) in read_corpus(path) {
            if let Some(t) = &tag {
                if t != name {
                    continue;
                }
            }
            let value = gen.generate(&mut Rng::seed_from_u64(seed));
            match prop(&value) {
                Err(e) if e != DISCARD => {
                    return Some(shrink_failure(gen, prop, cfg, seed, None, value, e));
                }
                _ => {}
            }
        }
    }

    // 2. Random cases, each derived from (run seed, name, index).
    let mut discards = 0u64;
    let max_discards = cfg.cases as u64 * cfg.max_discard_ratio as u64;
    let mut index = 0u64;
    let mut done = 0u32;
    while done < cfg.cases {
        let seed = case_seed(cfg.seed, name, index);
        index += 1;
        let value = gen.generate(&mut Rng::seed_from_u64(seed));
        match prop(&value) {
            Ok(()) => done += 1,
            Err(e) if e == DISCARD => {
                discards += 1;
                assert!(
                    discards <= max_discards,
                    "property '{name}' discarded {discards} cases (budget {max_discards}); \
                     generator and prop_assume! filters are incompatible"
                );
            }
            Err(e) => {
                return Some(shrink_failure(gen, prop, cfg, seed, Some(done), value, e));
            }
        }
    }
    None
}

fn shrink_failure<G: Gen>(
    gen: &G,
    prop: &impl Fn(&G::Value) -> PropResult,
    cfg: &Config,
    seed: u64,
    case: Option<u32>,
    original: G::Value,
    message: String,
) -> FailureInfo<G::Value> {
    let mut shrunk = original.clone();
    let mut message = message;
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for candidate in gen.shrink(&shrunk) {
            steps += 1;
            match prop(&candidate) {
                Err(e) if e != DISCARD => {
                    shrunk = candidate;
                    message = e;
                    continue 'outer;
                }
                _ => {}
            }
            if steps >= cfg.max_shrink_steps {
                break;
            }
        }
        break; // no candidate failed: local minimum
    }
    FailureInfo { seed, case, original, shrunk, shrink_steps: steps, message }
}

/// Parses a corpus file into `(optional property tag, seed)` entries.
///
/// Format, one entry per line:
/// `<property-name> 0x<hex-seed>  # optional comment`
/// A `*` property name (or a bare seed) applies to every property in
/// the file. Blank lines and `#` comments are ignored.
pub fn read_corpus(path: &Path) -> Vec<(Option<String>, u64)> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let first = tokens.next().unwrap_or("");
        let (tag, seed_tok) = match tokens.next() {
            Some(second) => (
                if first == "*" { None } else { Some(first.to_string()) },
                second,
            ),
            None => (None, first),
        };
        let digits = seed_tok.trim_start_matches("0x");
        if let Ok(seed) = u64::from_str_radix(digits, 16) {
            out.push((tag, seed));
        }
    }
    out
}

fn record_corpus_entry<V: Debug>(path: &Path, name: &str, seed: u64, shrunk: &V) {
    // Best-effort: persisting a regression seed must never mask the
    // real failure, so IO errors are swallowed.
    let existing = read_corpus(path);
    if existing.iter().any(|(_, s)| *s == seed) {
        return;
    }
    let mut note = format!("{shrunk:?}");
    note.truncate(100);
    let note = note.replace('\n', " ");
    let line = format!("{name} 0x{seed:016x} # auto-recorded; shrinks to {note}\n");
    let _ = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
}

/// Asserts a condition inside a property, failing the case (with
/// shrinking) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {} at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) at {}:{}",
                stringify!($a), stringify!($b), left, right, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) — {} at {}:{}",
                stringify!($a), stringify!($b), left, right,
                format!($($fmt)+), file!(), line!()
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err(format!(
                "assertion failed: {} != {} (both {:?}) at {}:{}",
                stringify!($a), stringify!($b), left, file!(), line!()
            ));
        }
    }};
}

/// Discards the current case when the precondition does not hold
/// (bounded by [`Config::max_discard_ratio`]).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::DISCARD.to_string());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(cases: u32) -> Config {
        Config::with_cases(cases)
    }

    #[test]
    fn passing_property_returns_none() {
        let out = check_outcome("pass", &quiet(128), &(0i64..100, 0i64..100), &|v| {
            let (a, b) = v;
            prop_assert_eq!(a + b, b + a);
            Ok(())
        });
        assert!(out.is_none());
    }

    #[test]
    fn int_failure_shrinks_to_boundary() {
        // Fails for v >= 50; the minimal counterexample is exactly 50.
        let out = check_outcome("int_shrink", &quiet(256), &(0i64..1000), &|v| {
            prop_assert!(*v < 50, "v={v}");
            Ok(())
        })
        .expect("must fail");
        assert_eq!(out.shrunk, 50, "shrinker should land on the boundary");
        assert!(out.original >= 50);
        // The recorded seed reproduces the original value.
        let regen = (0i64..1000).generate(&mut Rng::seed_from_u64(out.seed));
        assert_eq!(regen, out.original);
    }

    #[test]
    fn vec_failure_shrinks_to_single_offender() {
        // Fails when any element exceeds 100.
        let gen = vec(0i64..1000, 0..20);
        let out = check_outcome("vec_shrink", &quiet(256), &gen, &|v| {
            prop_assert!(v.iter().all(|&x| x <= 100), "{v:?}");
            Ok(())
        })
        .expect("must fail");
        assert_eq!(out.shrunk.len(), 1, "one offending element: {:?}", out.shrunk);
        assert_eq!(out.shrunk[0], 101, "minimal offender: {:?}", out.shrunk);
    }

    #[test]
    fn vec_respects_min_len_during_shrink() {
        let gen = vec(0i64..10, 3..8);
        let out = check_outcome("vec_min_len", &quiet(64), &gen, &|_| {
            Err("always".to_string())
        })
        .expect("must fail");
        assert!(out.shrunk.len() >= 3);
    }

    #[test]
    fn tuple_components_shrink_independently() {
        let out = check_outcome("tuple_shrink", &quiet(256), &(0i64..100, 0i64..100), &|v| {
            let (a, b) = v;
            prop_assert!(a + b < 60, "{a}+{b}");
            Ok(())
        })
        .expect("must fail");
        let (a, b) = out.shrunk;
        assert_eq!(a + b, 60, "minimal failing sum: {a}+{b}");
    }

    #[test]
    fn discards_are_bounded_and_skipped() {
        let out = check_outcome("assume", &quiet(64), &(0i64..100), &|v| {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
            Ok(())
        });
        assert!(out.is_none());
    }

    #[test]
    fn failures_are_deterministic() {
        let run = || {
            check_outcome("det", &quiet(128).seed(99), &(0i64..10_000), &|v| {
                prop_assert!(*v < 9_000);
                Ok(())
            })
            .expect("fails")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.original, b.original);
        assert_eq!(a.shrunk, b.shrunk);
    }

    #[test]
    fn corpus_roundtrip_and_replay() {
        let path = std::env::temp_dir().join(format!(
            "dfm-check-corpus-{}-{}.seeds",
            std::process::id(),
            fnv1a_64(b"corpus_roundtrip")
        ));
        let _ = fs::remove_file(&path);

        // First run: find a failure and record it.
        let cfg = quiet(256).corpus(&path);
        let prop = |v: &i64| -> PropResult {
            prop_assert!(*v < 500, "v={v}");
            Ok(())
        };
        let first = check_outcome("corpus_prop", &cfg, &(0i64..1000), &prop).expect("fails");
        record_corpus_entry(&path, "corpus_prop", first.seed, &first.shrunk);

        let entries = read_corpus(&path);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0.as_deref(), Some("corpus_prop"));
        assert_eq!(entries[0].1, first.seed);

        // Second run: the corpus seed replays before random cases.
        let second = check_outcome("corpus_prop", &cfg, &(0i64..1000), &prop).expect("fails");
        assert_eq!(second.case, None, "failure must come from corpus replay");
        assert_eq!(second.seed, first.seed);

        // Recording the same seed twice is a no-op.
        record_corpus_entry(&path, "corpus_prop", first.seed, &first.shrunk);
        assert_eq!(read_corpus(&path).len(), 1);

        // Tagged entries are ignored by other properties.
        let other = check_outcome("other_prop", &cfg, &(0i64..400), &prop);
        assert!(other.is_none());

        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corpus_parser_accepts_comments_and_bare_seeds() {
        let path = std::env::temp_dir().join(format!(
            "dfm-check-parse-{}.seeds",
            std::process::id()
        ));
        fs::write(
            &path,
            "# header comment\n\n\
             my_prop 0x00000000000000ff # tagged\n\
             * 0x10\n\
             1f\n",
        )
        .expect("write");
        let entries = read_corpus(&path);
        assert_eq!(
            entries,
            [
                (Some("my_prop".to_string()), 0xff),
                (None, 0x10),
                (None, 0x1f),
            ]
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn mapped_generators_generate_but_do_not_shrink() {
        #[derive(Clone, Debug, PartialEq)]
        struct Wrapper(i64);
        let gen = (10i64..20).prop_map(Wrapper);
        let mut rng = Rng::seed_from_u64(1);
        let v = gen.generate(&mut rng);
        assert!((10..20).contains(&v.0));
        assert!(gen.shrink(&v).is_empty());
    }

    #[test]
    fn string_generator_respects_alphabet_and_length() {
        let gen = lowercase_string(1..9);
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..200 {
            let s = gen.generate(&mut rng);
            assert!((1..9).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let shrunk = gen.shrink(&"zz".to_string());
        assert!(shrunk.contains(&"z".to_string()));
        assert!(shrunk.contains(&"az".to_string()));
    }

    #[test]
    fn fnv_matches_known_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
