//! Property-based tests for boundary-loop tracing.

use dfm_geom::trace::{boundary_loops, signed_area};
use dfm_geom::{Rect, Region};
use proptest::prelude::*;

fn arb_region() -> impl Strategy<Value = Region> {
    prop::collection::vec((-5i64..5, -5i64..5, 1i64..5, 1i64..5), 1..10).prop_map(|specs| {
        Region::from_rects(specs.into_iter().map(|(x, y, w, h)| {
            Rect::new(x * 40, y * 40, x * 40 + w * 40, y * 40 + h * 40)
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The signed areas of all traced loops sum to the region area
    /// (outer CCW loops positive, holes negative).
    #[test]
    fn loop_areas_reconstruct_region(r in arb_region()) {
        let loops = boundary_loops(&r);
        let total: i128 = loops.iter().map(signed_area).sum();
        prop_assert_eq!(total, r.area());
    }

    /// Loop perimeters sum to the region perimeter.
    #[test]
    fn loop_perimeters_reconstruct(r in arb_region()) {
        let loops = boundary_loops(&r);
        let total: i64 = loops.iter().map(|l| l.perimeter()).sum();
        prop_assert_eq!(total, r.perimeter());
    }

    /// Every traced loop is a valid rectilinear polygon whose region
    /// decomposition is consistent with its own area.
    #[test]
    fn loops_are_valid_polygons(r in arb_region()) {
        for l in boundary_loops(&r) {
            prop_assert!(l.vertex_count() >= 4);
            prop_assert_eq!(l.to_region().area(), l.area());
        }
    }

    /// Converting the loops back through even-odd fill reproduces the
    /// region exactly (XOR of all loop fills).
    #[test]
    fn even_odd_reconstruction(r in arb_region()) {
        let mut acc = Region::new();
        for l in boundary_loops(&r) {
            acc = acc.xor(&l.to_region());
        }
        prop_assert_eq!(acc, r);
    }
}
