//! Property-based tests for boundary-loop tracing (dfm-check harness).

use dfm_check::{check, prop_assert, prop_assert_eq, Config, Gen};
use dfm_geom::trace::{boundary_loops, signed_area};
use dfm_geom::{Rect, Region};

fn cfg() -> Config {
    Config::with_cases(96)
}

fn arb_region() -> impl Gen<Value = Region> {
    dfm_check::vec((-5i64..5, -5i64..5, 1i64..5, 1i64..5), 1..10).prop_map(|specs| {
        Region::from_rects(specs.into_iter().map(|(x, y, w, h)| {
            Rect::new(x * 40, y * 40, x * 40 + w * 40, y * 40 + h * 40)
        }))
    })
}

/// The signed areas of all traced loops sum to the region area
/// (outer CCW loops positive, holes negative).
#[test]
fn loop_areas_reconstruct_region() {
    check("loop_areas_reconstruct_region", &cfg(), &arb_region(), |r| {
        let loops = boundary_loops(r);
        let total: i128 = loops.iter().map(signed_area).sum();
        prop_assert_eq!(total, r.area());
        Ok(())
    });
}

/// Loop perimeters sum to the region perimeter.
#[test]
fn loop_perimeters_reconstruct() {
    check("loop_perimeters_reconstruct", &cfg(), &arb_region(), |r| {
        let loops = boundary_loops(r);
        let total: i64 = loops.iter().map(|l| l.perimeter()).sum();
        prop_assert_eq!(total, r.perimeter());
        Ok(())
    });
}

/// Every traced loop is a valid rectilinear polygon whose region
/// decomposition is consistent with its own area.
#[test]
fn loops_are_valid_polygons() {
    check("loops_are_valid_polygons", &cfg(), &arb_region(), |r| {
        for l in boundary_loops(r) {
            prop_assert!(l.vertex_count() >= 4);
            prop_assert_eq!(l.to_region().area(), l.area());
        }
        Ok(())
    });
}

/// Converting the loops back through even-odd fill reproduces the
/// region exactly (XOR of all loop fills).
#[test]
fn even_odd_reconstruction() {
    check("even_odd_reconstruction", &cfg(), &arb_region(), |r| {
        let mut acc = Region::new();
        for l in boundary_loops(r) {
            acc = acc.xor(&l.to_region());
        }
        prop_assert_eq!(acc, *r);
        Ok(())
    });
}
