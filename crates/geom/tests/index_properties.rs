//! Property tests for the grid index, pinning [`dfm_geom::Searcher`]'s
//! generation-stamp deduplication to the behaviour of the original
//! sort+dedup query (dfm-check harness; hermetic, seed-deterministic).

use dfm_check::{check, prop_assert_eq, Config, Gen};
use dfm_geom::{GridIndex, Rect};

fn cfg() -> Config {
    Config::with_cases(256)
}

fn arb_rect() -> impl Gen<Value = Rect> {
    (-300i64..300, -300i64..300, 1i64..150, 1i64..150)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

/// Oracle with the old query's observable contract (the bucket scan
/// followed by `sort_unstable` + `dedup` + touch filter): every
/// touching item exactly once, in insertion order. Implemented as a
/// brute-force scan so the oracle shares no code with the index.
fn reference_query(ix: &GridIndex<usize>, window: Rect) -> Vec<(Rect, usize)> {
    let mut ids: Vec<usize> = Vec::new();
    for (i, (r, _)) in ix.iter().enumerate() {
        if r.touches(&window) {
            ids.push(i);
        }
    }
    ids.sort_unstable();
    ids.dedup();
    ids.into_iter()
        .map(|id| {
            let (r, v) = ix.iter().nth(id).unwrap();
            (*r, *v)
        })
        .collect()
}

#[test]
fn searcher_matches_reference_implementation() {
    let gen = (
        dfm_check::vec(arb_rect(), 0..40),
        dfm_check::vec(arb_rect(), 1..12),
        16i64..200,
    );
    check("searcher_matches_reference", &cfg(), &gen, |v| {
        let (items, windows, cell) = v;
        let mut ix = GridIndex::new(*cell);
        for (i, r) in items.iter().enumerate() {
            ix.insert(*r, i);
        }
        // One searcher reused across all windows: the generation stamp
        // must isolate queries from each other.
        let mut s = ix.searcher();
        for w in windows {
            let got: Vec<(Rect, usize)> =
                s.query_with_rects(*w).into_iter().map(|(r, v)| (r, *v)).collect();
            let want = reference_query(&ix, *w);
            prop_assert_eq!(&got, &want, "window {:?} cell {}", w, cell);
            // And the cold-path method on the index agrees too.
            let cold: Vec<(Rect, usize)> =
                ix.query_with_rects(*w).into_iter().map(|(r, v)| (r, *v)).collect();
            prop_assert_eq!(&cold, &want);
        }
        Ok(())
    });
}

#[test]
fn searcher_results_are_insertion_ordered_and_unique() {
    let gen = (dfm_check::vec(arb_rect(), 0..40), arb_rect(), 16i64..200);
    check("searcher_insertion_order", &cfg(), &gen, |v| {
        let (items, window, cell) = v;
        let mut ix = GridIndex::new(*cell);
        for (i, r) in items.iter().enumerate() {
            ix.insert(*r, i);
        }
        let ids: Vec<usize> =
            ix.searcher().query_with_rects(*window).iter().map(|(_, v)| **v).collect();
        for pair in ids.windows(2) {
            prop_assert_eq!(pair[0] < pair[1], true, "ids not strictly increasing: {:?}", ids);
        }
        Ok(())
    });
}

/// Generation wraparound keeps queries isolated: force the counter past
/// u32::MAX via many queries is impractical, so this just exercises a
/// long reuse run against the oracle.
#[test]
fn searcher_reuse_many_queries() {
    let mut ix = GridIndex::new(32);
    for i in 0..200i64 {
        ix.insert(Rect::new(i * 7 % 400, i * 13 % 400, i * 7 % 400 + 40, i * 13 % 400 + 40), i);
    }
    let mut s = ix.searcher();
    for q in 0..500i64 {
        let w = Rect::new(q % 350, (q * 3) % 350, q % 350 + 60, (q * 3) % 350 + 60);
        let got: Vec<i64> = s.query_with_rects(w).iter().map(|(_, v)| **v).collect();
        let want: Vec<i64> = ix
            .iter()
            .filter(|(r, _)| r.touches(&w))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(got, want, "query {q}");
    }
}
