//! Property-based tests for the geometry kernel invariants
//! (dfm-check harness; hermetic, seed-deterministic).

use dfm_check::{bools, check, prop_assert, prop_assert_eq, Config, Gen};
use dfm_geom::{Point, Rect, Region, Rotation, Transform, Vector};

fn cfg() -> Config {
    Config::with_cases(256)
}

fn arb_rect() -> impl Gen<Value = Rect> {
    (-200i64..200, -200i64..200, 1i64..80, 1i64..80)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_region() -> impl Gen<Value = Region> {
    dfm_check::vec(arb_rect(), 0..12).prop_map(Region::from_rects)
}

fn arb_transform() -> impl Gen<Value = Transform> {
    (-100i64..100, -100i64..100, 0u8..4, bools()).prop_map(|(x, y, r, m)| {
        Transform::new(Vector::new(x, y), Rotation::from_quarter_turns(r), m)
    })
}

/// Canonical regions consist of pairwise non-overlapping rectangles.
#[test]
fn region_rects_are_disjoint() {
    check("region_rects_are_disjoint", &cfg(), &arb_region(), |r| {
        let rects = r.rects();
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                prop_assert!(!rects[i].overlaps(&rects[j]),
                    "rects {i} and {j} overlap: {:?} {:?}", rects[i], rects[j]);
            }
        }
        Ok(())
    });
}

/// Inclusion–exclusion: |A ∪ B| = |A| + |B| − |A ∩ B|.
#[test]
fn inclusion_exclusion() {
    check("inclusion_exclusion", &cfg(), &(arb_region(), arb_region()), |v| {
        let (a, b) = v;
        let u = a.union(b).area();
        let i = a.intersection(b).area();
        prop_assert_eq!(u + i, a.area() + b.area());
        Ok(())
    });
}

/// Difference partitions the union: |A∖B| + |B∖A| + |A∩B| = |A∪B|.
#[test]
fn boolean_partition() {
    check("boolean_partition", &cfg(), &(arb_region(), arb_region()), |v| {
        let (a, b) = v;
        let ab = a.difference(b).area();
        let ba = b.difference(a).area();
        let i = a.intersection(b).area();
        let u = a.union(b).area();
        prop_assert_eq!(ab + ba + i, u);
        prop_assert_eq!(a.xor(b).area(), ab + ba);
        Ok(())
    });
}

/// Union is commutative and idempotent in area and membership.
#[test]
fn union_commutes() {
    check("union_commutes", &cfg(), &(arb_region(), arb_region()), |v| {
        let (a, b) = v;
        prop_assert_eq!(a.union(b).area(), b.union(a).area());
        prop_assert_eq!(a.union(a).area(), a.area());
        Ok(())
    });
}

/// Intersection with a clip window equals `clipped`.
#[test]
fn clip_matches_intersection() {
    check("clip_matches_intersection", &cfg(), &(arb_region(), arb_rect()), |v| {
        let (a, w) = v;
        let clipped = a.clipped(*w);
        let inter = a.intersection(&Region::from_rect(*w));
        prop_assert_eq!(clipped.area(), inter.area());
        Ok(())
    });
}

/// Dilation then erosion by the same amount restores any region that
/// was already "open" (e.g. a single rectangle).
#[test]
fn bloat_shrink_roundtrip_single_rect() {
    check("bloat_shrink_roundtrip_single_rect", &cfg(), &(arb_rect(), 0i64..20), |v| {
        let (r, d) = v;
        let region = Region::from_rect(*r);
        prop_assert_eq!(region.bloated(*d).shrunk(*d), region);
        Ok(())
    });
}

/// Opening is idempotent: open(open(R)) == open(R).
#[test]
fn opening_idempotent() {
    check("opening_idempotent", &cfg(), &(arb_region(), 1i64..8), |v| {
        let (r, d) = v;
        let once = r.opened(*d);
        let twice = once.opened(*d);
        prop_assert_eq!(once.area(), twice.area());
        Ok(())
    });
}

/// Erosion shrinks area; dilation grows it.
#[test]
fn morphology_monotone() {
    check("morphology_monotone", &cfg(), &(arb_region(), 1i64..10), |v| {
        let (r, d) = v;
        prop_assert!(r.shrunk(*d).area() <= r.area());
        prop_assert!(r.bloated(*d).area() >= r.area());
        Ok(())
    });
}

/// The bounding box contains every rect of the region.
#[test]
fn bbox_contains_all() {
    check("bbox_contains_all", &cfg(), &arb_region(), |r| {
        let b = r.bbox();
        for rect in r.rects() {
            prop_assert!(b.contains_rect(rect));
        }
        Ok(())
    });
}

/// Transforms are area-preserving bijections on regions.
#[test]
fn transform_preserves_area() {
    check("transform_preserves_area", &cfg(), &(arb_rect(), arb_transform()), |v| {
        let (r, t) = v;
        let moved = t.apply_rect(*r);
        prop_assert_eq!(moved.area(), r.area());
        let back = t.inverse().apply_rect(moved);
        prop_assert_eq!(back, *r);
        Ok(())
    });
}

/// Transform composition agrees with sequential application on points.
#[test]
fn transform_composition() {
    check(
        "transform_composition",
        &cfg(),
        &((-50i64..50, -50i64..50), arb_transform(), arb_transform()),
        |v| {
            let (p, t1, t2) = v;
            let p = Point::new(p.0, p.1);
            prop_assert_eq!(t1.then(t2).apply(p), t2.apply(t1.apply(p)));
            Ok(())
        },
    );
}

/// Sum of connected-component areas equals the region area.
#[test]
fn components_partition_area() {
    check("components_partition_area", &cfg(), &arb_region(), |r| {
        let total: i128 = r.connected_components().iter().map(|c| c.area()).sum();
        prop_assert_eq!(total, r.area());
        Ok(())
    });
}

/// Perimeter of the union never exceeds the sum of perimeters.
#[test]
fn union_perimeter_subadditive() {
    check("union_perimeter_subadditive", &cfg(), &(arb_region(), arb_region()), |v| {
        let (a, b) = v;
        prop_assert!(a.union(b).perimeter() <= a.perimeter() + b.perimeter());
        Ok(())
    });
}
