//! Property-based tests for the geometry kernel invariants.

use dfm_geom::{Point, Rect, Region, Rotation, Transform, Vector};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-200i64..200, -200i64..200, 1i64..80, 1i64..80)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_region() -> impl Strategy<Value = Region> {
    prop::collection::vec(arb_rect(), 0..12).prop_map(Region::from_rects)
}

fn arb_transform() -> impl Strategy<Value = Transform> {
    (-100i64..100, -100i64..100, 0u8..4, any::<bool>()).prop_map(|(x, y, r, m)| {
        Transform::new(Vector::new(x, y), Rotation::from_quarter_turns(r), m)
    })
}

proptest! {
    /// Canonical regions consist of pairwise non-overlapping rectangles.
    #[test]
    fn region_rects_are_disjoint(r in arb_region()) {
        let rects = r.rects();
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                prop_assert!(!rects[i].overlaps(&rects[j]),
                    "rects {i} and {j} overlap: {:?} {:?}", rects[i], rects[j]);
            }
        }
    }

    /// Inclusion–exclusion: |A ∪ B| = |A| + |B| − |A ∩ B|.
    #[test]
    fn inclusion_exclusion(a in arb_region(), b in arb_region()) {
        let u = a.union(&b).area();
        let i = a.intersection(&b).area();
        prop_assert_eq!(u + i, a.area() + b.area());
    }

    /// Difference partitions the union: |A∖B| + |B∖A| + |A∩B| = |A∪B|.
    #[test]
    fn boolean_partition(a in arb_region(), b in arb_region()) {
        let ab = a.difference(&b).area();
        let ba = b.difference(&a).area();
        let i = a.intersection(&b).area();
        let u = a.union(&b).area();
        prop_assert_eq!(ab + ba + i, u);
        prop_assert_eq!(a.xor(&b).area(), ab + ba);
    }

    /// Union is commutative and idempotent in area and membership.
    #[test]
    fn union_commutes(a in arb_region(), b in arb_region()) {
        prop_assert_eq!(a.union(&b).area(), b.union(&a).area());
        prop_assert_eq!(a.union(&a).area(), a.area());
    }

    /// Intersection with a clip window equals `clipped`.
    #[test]
    fn clip_matches_intersection(a in arb_region(), w in arb_rect()) {
        let clipped = a.clipped(w);
        let inter = a.intersection(&Region::from_rect(w));
        prop_assert_eq!(clipped.area(), inter.area());
    }

    /// Dilation then erosion by the same amount restores any region that
    /// was already "open" (e.g. a single rectangle).
    #[test]
    fn bloat_shrink_roundtrip_single_rect(r in arb_rect(), d in 0i64..20) {
        let region = Region::from_rect(r);
        prop_assert_eq!(region.bloated(d).shrunk(d), region);
    }

    /// Opening is idempotent: open(open(R)) == open(R).
    #[test]
    fn opening_idempotent(r in arb_region(), d in 1i64..8) {
        let once = r.opened(d);
        let twice = once.opened(d);
        prop_assert_eq!(once.area(), twice.area());
    }

    /// Erosion shrinks area; dilation grows it.
    #[test]
    fn morphology_monotone(r in arb_region(), d in 1i64..10) {
        prop_assert!(r.shrunk(d).area() <= r.area());
        prop_assert!(r.bloated(d).area() >= r.area());
    }

    /// The bounding box contains every rect of the region.
    #[test]
    fn bbox_contains_all(r in arb_region()) {
        let b = r.bbox();
        for rect in r.rects() {
            prop_assert!(b.contains_rect(rect));
        }
    }

    /// Transforms are area-preserving bijections on regions.
    #[test]
    fn transform_preserves_area(r in arb_rect(), t in arb_transform()) {
        let moved = t.apply_rect(r);
        prop_assert_eq!(moved.area(), r.area());
        let back = t.inverse().apply_rect(moved);
        prop_assert_eq!(back, r);
    }

    /// Transform composition agrees with sequential application on points.
    #[test]
    fn transform_composition(p in (-50i64..50, -50i64..50),
                             t1 in arb_transform(), t2 in arb_transform()) {
        let p = Point::new(p.0, p.1);
        prop_assert_eq!(t1.then(&t2).apply(p), t2.apply(t1.apply(p)));
    }

    /// Sum of connected-component areas equals the region area.
    #[test]
    fn components_partition_area(r in arb_region()) {
        let total: i128 = r.connected_components().iter().map(|c| c.area()).sum();
        prop_assert_eq!(total, r.area());
    }

    /// Perimeter of the union never exceeds the sum of perimeters.
    #[test]
    fn union_perimeter_subadditive(a in arb_region(), b in arb_region()) {
        prop_assert!(a.union(&b).perimeter() <= a.perimeter() + b.perimeter());
    }
}
