//! Boundary-loop tracing: region → closed polygon outlines.
//!
//! Converts a region's boundary edges into closed rectilinear vertex
//! loops. Outer boundaries come out **counter-clockwise**, hole
//! boundaries **clockwise** (the interior is always on the left of the
//! travel direction). Self-touching corners (four edges meeting at a
//! point, as in a checkerboard) are resolved by always taking the
//! left-most turn, which keeps every loop simple (non-self-crossing).

use crate::{Point, Polygon, Region, Vector};
use std::collections::HashMap;

/// One directed boundary segment.
#[derive(Clone, Copy, Debug)]
struct DirEdge {
    from: Point,
    to: Point,
}

impl DirEdge {
    fn dir(&self) -> Vector {
        let d = self.to - self.from;
        Vector::new(d.x.signum(), d.y.signum())
    }
}

/// Traces the boundary loops of a region.
///
/// Returns every closed loop as a [`Polygon`]; outer loops wind
/// counter-clockwise (positive shoelace), holes clockwise. The union of
/// the loops under even-odd fill reproduces the region exactly.
pub fn boundary_loops(region: &Region) -> Vec<Polygon> {
    let edges = region.boundary_edges();
    // Orient every edge so the interior is on its left.
    let mut directed: Vec<DirEdge> = Vec::with_capacity(edges.len());
    for v in &edges.vertical {
        if v.interior_right {
            // Interior at +x: travel downward.
            directed.push(DirEdge {
                from: Point::new(v.x, v.y1),
                to: Point::new(v.x, v.y0),
            });
        } else {
            directed.push(DirEdge {
                from: Point::new(v.x, v.y0),
                to: Point::new(v.x, v.y1),
            });
        }
    }
    for h in &edges.horizontal {
        if h.interior_up {
            // Interior at +y: travel rightward.
            directed.push(DirEdge {
                from: Point::new(h.x0, h.y),
                to: Point::new(h.x1, h.y),
            });
        } else {
            directed.push(DirEdge {
                from: Point::new(h.x1, h.y),
                to: Point::new(h.x0, h.y),
            });
        }
    }

    // Index edges by start point.
    let mut by_start: HashMap<Point, Vec<usize>> = HashMap::new();
    for (i, e) in directed.iter().enumerate() {
        by_start.entry(e.from).or_default().push(i);
    }
    let mut used = vec![false; directed.len()];

    let mut loops = Vec::new();
    for start in 0..directed.len() {
        if used[start] {
            continue;
        }
        // Trace one loop.
        let mut points: Vec<Point> = Vec::new();
        let mut cur = start;
        loop {
            used[cur] = true;
            points.push(directed[cur].from);
            let at = directed[cur].to;
            let incoming = directed[cur].dir();
            // Candidates leaving `at`; prefer the left-most turn so
            // self-touching corners don't cross loops.
            let next = by_start
                .get(&at)
                .into_iter()
                .flatten()
                .copied()
                .filter(|&i| !used[i])
                .min_by_key(|&i| turn_rank(incoming, directed[i].dir()));
            match next {
                Some(n) => cur = n,
                None => break, // returned to the loop start
            }
        }
        // Drop collinear midpoints (consecutive edges may be split).
        let cleaned = remove_collinear(points);
        if cleaned.len() >= 4 {
            loops.push(Polygon::new(cleaned).expect("traced loop is rectilinear"));
        }
    }
    loops
}

/// Ranks the turn from `incoming` to `outgoing`: left turn best, then
/// straight, then right turn. A U-turn never occurs on region boundaries.
fn turn_rank(incoming: Vector, outgoing: Vector) -> u8 {
    let cross = incoming.cross(outgoing);
    if cross > 0 {
        0 // left
    } else if cross == 0 {
        1 // straight
    } else {
        2 // right
    }
}

fn remove_collinear(points: Vec<Point>) -> Vec<Point> {
    let n = points.len();
    if n < 3 {
        return points;
    }
    let mut out: Vec<Point> = Vec::with_capacity(n);
    for i in 0..n {
        let prev = points[(i + n - 1) % n];
        let cur = points[i];
        let next = points[(i + 1) % n];
        let d1 = cur - prev;
        let d2 = next - cur;
        // Keep only true corners.
        if d1.cross(d2) != 0 {
            out.push(cur);
        }
    }
    out
}

/// Signed area of a polygon loop (positive = counter-clockwise).
pub fn signed_area(poly: &Polygon) -> i128 {
    let pts = poly.points();
    let n = pts.len();
    let mut acc: i128 = 0;
    for i in 0..n {
        let a = pts[i];
        let b = pts[(i + 1) % n];
        acc += a.x as i128 * b.y as i128 - b.x as i128 * a.y as i128;
    }
    acc / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    #[test]
    fn square_traces_one_ccw_loop() {
        let r = Region::from_rect(Rect::new(0, 0, 100, 50));
        let loops = boundary_loops(&r);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].vertex_count(), 4);
        assert_eq!(signed_area(&loops[0]), 100 * 50);
        assert_eq!(loops[0].area(), r.area());
    }

    #[test]
    fn l_shape_traces_six_corners() {
        let r = Region::from_rects([Rect::new(0, 0, 30, 10), Rect::new(0, 10, 10, 30)]);
        let loops = boundary_loops(&r);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].vertex_count(), 6);
        assert_eq!(signed_area(&loops[0]), r.area());
    }

    #[test]
    fn donut_traces_outer_ccw_and_hole_cw() {
        let donut = Region::from_rect(Rect::new(0, 0, 100, 100))
            .difference(&Region::from_rect(Rect::new(40, 40, 60, 60)));
        let mut loops = boundary_loops(&donut);
        assert_eq!(loops.len(), 2);
        loops.sort_by_key(|l| -l.area());
        assert!(signed_area(&loops[0]) > 0, "outer is CCW");
        assert!(signed_area(&loops[1]) < 0, "hole is CW");
        // Even-odd reconstruction: outer − hole = donut.
        assert_eq!(
            signed_area(&loops[0]) + signed_area(&loops[1]),
            donut.area()
        );
    }

    #[test]
    fn separate_islands_trace_separately() {
        let r = Region::from_rects([
            Rect::new(0, 0, 10, 10),
            Rect::new(100, 100, 120, 130),
        ]);
        let loops = boundary_loops(&r);
        assert_eq!(loops.len(), 2);
        let total: i128 = loops.iter().map(signed_area).sum();
        assert_eq!(total, r.area());
    }

    #[test]
    fn corner_touching_squares_stay_simple() {
        // Two squares sharing only a corner: left-most-turn tracing must
        // produce two simple loops (not one figure-eight).
        let r = Region::from_rects([
            Rect::new(0, 0, 10, 10),
            Rect::new(10, 10, 20, 20),
        ]);
        let loops = boundary_loops(&r);
        assert_eq!(loops.len(), 2);
        for l in &loops {
            assert_eq!(l.vertex_count(), 4);
            assert!(signed_area(l) > 0);
        }
    }

    #[test]
    fn loops_reconstruct_region_area_on_complex_shape() {
        let r = Region::from_rects([
            Rect::new(0, 0, 100, 20),
            Rect::new(0, 20, 20, 100),
            Rect::new(80, 20, 100, 100),
            Rect::new(0, 100, 100, 120),
            // This makes a ring with a rectangular hole 20..80 x 20..100.
        ]);
        let loops = boundary_loops(&r);
        let total: i128 = loops.iter().map(signed_area).sum();
        assert_eq!(total, r.area());
        assert_eq!(loops.len(), 2);
    }

    #[test]
    fn empty_region_no_loops() {
        assert!(boundary_loops(&Region::new()).is_empty());
    }
}
