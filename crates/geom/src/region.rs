//! Canonical rectangle-set regions with exact boolean operations.

use crate::edge::BoundaryEdges;
use crate::{Coord, Interval, IntervalSet, Point, Rect, Vector};
use std::fmt;

/// A boolean operation on regions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BoolOp {
    /// Points in either operand.
    Union,
    /// Points in both operands.
    Intersection,
    /// Points in the first operand but not the second.
    Difference,
    /// Points in exactly one operand.
    Xor,
}


/// A region of the plane represented as a canonical set of disjoint
/// rectangles.
///
/// `Region` is the workhorse of every physical-verification algorithm in
/// the workspace: DRC checks, lithography rasterisation, critical-area
/// extraction and fill generation all operate on regions. All operations
/// are exact over integer coordinates.
///
/// Internally rectangles behave as half-open boxes `[x0, x1) × [y0, y1)`,
/// so regions that merely share an edge merge seamlessly under
/// [`union`](Region::union) and have zero-area intersection.
///
/// ```
/// use dfm_geom::{Rect, Region};
/// let l_shape = Region::from_rects([
///     Rect::new(0, 0, 30, 10),
///     Rect::new(0, 10, 10, 30),
/// ]);
/// assert_eq!(l_shape.area(), 300 + 200);
/// assert_eq!(l_shape.bbox(), Rect::new(0, 0, 30, 30));
/// ```
#[derive(Clone, Default)]
pub struct Region {
    rects: Vec<Rect>,
}

impl PartialEq for Region {
    /// Semantic equality: two regions are equal when they cover exactly
    /// the same points, regardless of how the covering is decomposed into
    /// rectangles.
    fn eq(&self, other: &Self) -> bool {
        self.area() == other.area() && self.xor(other).is_empty()
    }
}

impl Eq for Region {}

/// One horizontal slab of a region decomposition: the y-range and the
/// x-interval coverage within it.
pub(crate) struct Slab {
    pub y0: Coord,
    pub y1: Coord,
    pub xs: IntervalSet,
}

/// Decomposes a set of (possibly overlapping) rectangles into maximal
/// horizontal slabs with canonical x-interval coverage. Empty slabs are
/// omitted.
pub(crate) fn slab_decompose(rects: &[Rect]) -> Vec<Slab> {
    if rects.is_empty() {
        return Vec::new();
    }
    let mut ys: Vec<Coord> = Vec::with_capacity(rects.len() * 2);
    for r in rects {
        if !r.is_empty() {
            ys.push(r.y0);
            ys.push(r.y1);
        }
    }
    ys.sort_unstable();
    ys.dedup();

    // Event lists: rects starting / ending at each y.
    let mut by_start: Vec<usize> = (0..rects.len()).filter(|&i| !rects[i].is_empty()).collect();
    by_start.sort_unstable_by_key(|&i| rects[i].y0);
    let mut by_end: Vec<usize> = by_start.clone();
    by_end.sort_unstable_by_key(|&i| rects[i].y1);

    let mut active: Vec<usize> = Vec::new();
    let mut si = 0usize;
    let mut ei = 0usize;
    let mut out = Vec::new();
    for w in ys.windows(2) {
        let (ylo, yhi) = (w[0], w[1]);
        while si < by_start.len() && rects[by_start[si]].y0 <= ylo {
            active.push(by_start[si]);
            si += 1;
        }
        while ei < by_end.len() && rects[by_end[ei]].y1 <= ylo {
            let gone = by_end[ei];
            active.retain(|&i| i != gone);
            ei += 1;
        }
        if active.is_empty() {
            continue;
        }
        let xs = IntervalSet::from_intervals(
            active.iter().map(|&i| Interval::new(rects[i].x0, rects[i].x1)),
        );
        if !xs.is_empty() {
            out.push(Slab { y0: ylo, y1: yhi, xs });
        }
    }
    out
}

/// Converts slabs back to rectangles, merging vertically-adjacent rects
/// that share an identical x-interval.
fn slabs_to_rects(slabs: Vec<Slab>) -> Vec<Rect> {
    // Collect per-slab rects, then coalesce runs with identical x-span.
    let mut open: Vec<Rect> = Vec::new(); // rects whose top edge is the previous slab top
    let mut done: Vec<Rect> = Vec::new();
    let mut prev_y1: Option<Coord> = None;
    for slab in slabs {
        let mut next_open: Vec<Rect> = Vec::with_capacity(slab.xs.as_slice().len());
        let contiguous = prev_y1 == Some(slab.y0);
        for iv in slab.xs.iter() {
            let mut r = Rect {
                x0: iv.lo,
                y0: slab.y0,
                x1: iv.hi,
                y1: slab.y1,
            };
            if contiguous {
                // Try to extend an open rect with the same x-span.
                if let Some(pos) = open.iter().position(|o| o.x0 == r.x0 && o.x1 == r.x1) {
                    let o = open.swap_remove(pos);
                    r.y0 = o.y0;
                }
            }
            next_open.push(r);
        }
        done.append(&mut open);
        open = next_open;
        prev_y1 = Some(slab.y1);
    }
    done.append(&mut open);
    done
}

/// Core boolean sweep: joint y-slab decomposition of both operand rect
/// sets with 1-D interval combination per slab.
fn boolean_raw(a_rects: &[Rect], b_rects: &[Rect], op: BoolOp) -> Region {
    let mut ys: Vec<Coord> = Vec::with_capacity(2 * (a_rects.len() + b_rects.len()));
    for r in a_rects.iter().chain(b_rects.iter()) {
        ys.push(r.y0);
        ys.push(r.y1);
    }
    ys.sort_unstable();
    ys.dedup();
    if ys.len() < 2 {
        return Region::new();
    }

    let slabs_a = slab_decompose(a_rects);
    let slabs_b = slab_decompose(b_rects);
    let empty = IntervalSet::new();
    let mut ai = 0usize;
    let mut bi = 0usize;
    let mut out_slabs = Vec::new();
    for w in ys.windows(2) {
        let (ylo, yhi) = (w[0], w[1]);
        while ai < slabs_a.len() && slabs_a[ai].y1 <= ylo {
            ai += 1;
        }
        while bi < slabs_b.len() && slabs_b[bi].y1 <= ylo {
            bi += 1;
        }
        let xa = if ai < slabs_a.len() && slabs_a[ai].y0 <= ylo && ylo < slabs_a[ai].y1 {
            &slabs_a[ai].xs
        } else {
            &empty
        };
        let xb = if bi < slabs_b.len() && slabs_b[bi].y0 <= ylo && ylo < slabs_b[bi].y1 {
            &slabs_b[bi].xs
        } else {
            &empty
        };
        let combined = match op {
            BoolOp::Union => xa.union(xb),
            BoolOp::Intersection => xa.intersection(xb),
            BoolOp::Difference => xa.difference(xb),
            BoolOp::Xor => xa.xor(xb),
        };
        if !combined.is_empty() {
            out_slabs.push(Slab { y0: ylo, y1: yhi, xs: combined });
        }
    }
    Region {
        rects: slabs_to_rects(out_slabs),
    }
}

impl Region {
    /// Creates an empty region.
    pub fn new() -> Self {
        Region { rects: Vec::new() }
    }

    /// Creates a region covering a single rectangle.
    pub fn from_rect(r: Rect) -> Self {
        if r.is_empty() {
            Region::new()
        } else {
            Region { rects: vec![r] }
        }
    }

    /// Creates a region from arbitrary (possibly overlapping) rectangles.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Self {
        let raw: Vec<Rect> = rects.into_iter().filter(|r| !r.is_empty()).collect();
        Region {
            rects: slabs_to_rects(slab_decompose(&raw)),
        }
    }

    /// The disjoint rectangles making up the region.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Consumes the region, returning its rectangles.
    pub fn into_rects(self) -> Vec<Rect> {
        self.rects
    }

    /// True if the region covers no area.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Number of rectangles in the canonical representation.
    pub fn rect_count(&self) -> usize {
        self.rects.len()
    }

    /// Total covered area.
    pub fn area(&self) -> i128 {
        self.rects.iter().map(|r| r.area()).sum()
    }

    /// Bounding box of the region (the empty rect for an empty region).
    pub fn bbox(&self) -> Rect {
        let mut it = self.rects.iter();
        match it.next() {
            None => Rect::empty(),
            Some(first) => it.fold(*first, |acc, r| acc.bounding_union(r)),
        }
    }

    /// True if point `p` is covered (using half-open box semantics).
    pub fn contains_point(&self, p: Point) -> bool {
        self.rects
            .iter()
            .any(|r| r.x0 <= p.x && p.x < r.x1 && r.y0 <= p.y && p.y < r.y1)
    }

    /// Applies a boolean operation against another region.
    ///
    /// Intersection and difference prefilter by bounding boxes, so
    /// operations between a huge region and a small one cost only the
    /// overlapping neighbourhood.
    pub fn boolean(&self, other: &Region, op: BoolOp) -> Region {
        match op {
            BoolOp::Intersection => {
                let Some(w) = self.bbox().intersection(&other.bbox()) else {
                    return Region::new();
                };
                let a: Vec<Rect> = self
                    .rects
                    .iter()
                    .filter_map(|r| r.intersection(&w))
                    .collect();
                let b: Vec<Rect> = other
                    .rects
                    .iter()
                    .filter_map(|r| r.intersection(&w))
                    .collect();
                boolean_raw(&a, &b, op)
            }
            BoolOp::Difference => {
                if other.is_empty() {
                    return self.clone();
                }
                let bb = other.bbox();
                let mut pass: Vec<Rect> = Vec::new();
                let mut work: Vec<Rect> = Vec::new();
                for r in &self.rects {
                    if r.overlaps(&bb) {
                        work.push(*r);
                    } else {
                        pass.push(*r);
                    }
                }
                if work.is_empty() {
                    return Region { rects: pass };
                }
                let wb = work
                    .iter()
                    .fold(Rect::empty(), |acc, r| acc.bounding_union(r));
                let b: Vec<Rect> = other
                    .rects
                    .iter()
                    .filter(|r| r.overlaps(&wb))
                    .copied()
                    .collect();
                let mut res = boolean_raw(&work, &b, op);
                // `pass` rects are disjoint from `work` (and hence from the
                // result), so appending keeps the representation disjoint.
                res.rects.extend(pass);
                res
            }
            BoolOp::Union | BoolOp::Xor => boolean_raw(&self.rects, &other.rects, op),
        }
    }

    /// Set union with another region.
    pub fn union(&self, other: &Region) -> Region {
        self.boolean(other, BoolOp::Union)
    }

    /// Set intersection with another region.
    pub fn intersection(&self, other: &Region) -> Region {
        self.boolean(other, BoolOp::Intersection)
    }

    /// Set difference (`self - other`).
    pub fn difference(&self, other: &Region) -> Region {
        self.boolean(other, BoolOp::Difference)
    }

    /// Symmetric difference with another region.
    pub fn xor(&self, other: &Region) -> Region {
        self.boolean(other, BoolOp::Xor)
    }

    /// The region translated by `v`.
    pub fn translated(&self, v: Vector) -> Region {
        Region {
            rects: self.rects.iter().map(|r| r.translated(v)).collect(),
        }
    }

    /// Clips the region to a window rectangle.
    pub fn clipped(&self, window: Rect) -> Region {
        let rects: Vec<Rect> = self
            .rects
            .iter()
            .filter_map(|r| r.intersection(&window))
            .collect();
        // Clipping disjoint rects keeps them disjoint; no re-normalisation
        // is needed, but vertical merging may be lost — acceptable.
        Region { rects }
    }

    /// Morphological dilation: every point within Chebyshev distance `d`
    /// of the region is added (Minkowski sum with a `2d` square).
    ///
    /// # Panics
    ///
    /// Panics if `d < 0`; use [`Region::shrunk`] to erode.
    pub fn bloated(&self, d: Coord) -> Region {
        assert!(d >= 0, "bloat distance must be non-negative");
        if d == 0 {
            return self.clone();
        }
        Region::from_rects(self.rects.iter().map(|r| r.expanded(d)))
    }

    /// Anisotropic dilation by `dx` horizontally and `dy` vertically.
    pub fn bloated_xy(&self, dx: Coord, dy: Coord) -> Region {
        assert!(dx >= 0 && dy >= 0, "bloat distances must be non-negative");
        if dx == 0 && dy == 0 {
            return self.clone();
        }
        Region::from_rects(self.rects.iter().map(|r| r.expanded_xy(dx, dy)))
    }

    /// Morphological erosion: every point within Chebyshev distance `d` of
    /// the complement is removed.
    ///
    /// # Panics
    ///
    /// Panics if `d < 0`.
    pub fn shrunk(&self, d: Coord) -> Region {
        assert!(d >= 0, "shrink distance must be non-negative");
        if d == 0 || self.is_empty() {
            return self.clone();
        }
        // erode(R, d) = R \ dilate(frame \ R, d), with the frame extending
        // past the bbox so the outer boundary erodes correctly.
        let frame = Region::from_rect(self.bbox().expanded(d + 1));
        let complement = frame.difference(self);
        self.difference(&complement.bloated(d))
    }

    /// Morphological opening (erode then dilate): removes features narrower
    /// than `2d` without moving the remaining boundary.
    pub fn opened(&self, d: Coord) -> Region {
        self.shrunk(d).bloated(d)
    }

    /// Morphological closing (dilate then erode): fills gaps and notches
    /// narrower than `2d`.
    pub fn closed(&self, d: Coord) -> Region {
        self.bloated(d).shrunk(d)
    }


    /// The rectangles of `self` whose shapes touch `other` (KLayout's
    /// "interacting" selection). Returns them as a region without
    /// re-normalisation.
    pub fn interacting(&self, other: &Region) -> Region {
        if other.is_empty() || self.is_empty() {
            return Region::new();
        }
        let bbox = other.bbox();
        let cell = ((bbox.width().max(bbox.height()) / 64).max(64)) as Coord;
        let mut index = crate::GridIndex::new(cell);
        for (i, r) in other.rects().iter().enumerate() {
            index.insert(*r, i);
        }
        // Select whole connected components, not individual rects: a
        // component counts as interacting when any of its rects touches
        // `other`.
        let comps = self.connected_components();
        let mut keep: Vec<Rect> = Vec::new();
        let mut searcher = index.searcher();
        for comp in comps {
            let hits = comp.rects().iter().any(|r| {
                searcher
                    .query_with_rects(*r)
                    .iter()
                    .any(|(o, _)| o.touches(r))
            });
            if hits {
                keep.extend(comp.rects().iter().copied());
            }
        }
        Region { rects: keep }
    }

    /// The connected components of `self` that do **not** touch `other`.
    pub fn not_interacting(&self, other: &Region) -> Region {
        let touching = self.interacting(other);
        if touching.is_empty() {
            return self.clone();
        }
        self.difference(&touching)
    }

    /// The connected components of `self` lying entirely inside `other`.
    pub fn inside(&self, other: &Region) -> Region {
        let mut keep: Vec<Rect> = Vec::new();
        for comp in self.connected_components() {
            if comp.difference(other).is_empty() {
                keep.extend(comp.rects().iter().copied());
            }
        }
        Region { rects: keep }
    }

    /// Extracts the boundary edges of the region.
    ///
    /// See [`BoundaryEdges`] for the result structure; edges carry which
    /// side is region interior, which the DRC engine relies on.
    pub fn boundary_edges(&self) -> BoundaryEdges {
        BoundaryEdges::of_slabs(slab_decompose(&self.rects))
    }

    /// Total boundary length (perimeter) of the region.
    pub fn perimeter(&self) -> Coord {
        let e = self.boundary_edges();
        e.horizontal.iter().map(|h| h.x1 - h.x0).sum::<Coord>()
            + e.vertical.iter().map(|v| v.y1 - v.y0).sum::<Coord>()
    }

    /// Splits the region into its connected components (8-connectivity on
    /// touching rects: rects sharing an edge *or a corner* are connected).
    pub fn connected_components(&self) -> Vec<Region> {
        let n = self.rects.len();
        if n == 0 {
            return Vec::new();
        }
        // Union-find over rect indices; use the grid index for neighbour
        // candidate generation.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], i: usize) -> usize {
            let mut root = i;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = i;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        let bbox = self.bbox();
        let cell = ((bbox.width().max(bbox.height()) / 64).max(1)) as Coord;
        let mut index = crate::GridIndex::new(cell);
        for (i, r) in self.rects.iter().enumerate() {
            index.insert(*r, i);
        }
        let mut searcher = index.searcher();
        for (i, r) in self.rects.iter().enumerate() {
            for &&j in searcher.query(r.expanded(1)).iter() {
                if j > i && self.rects[j].touches(r) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut groups: std::collections::HashMap<usize, Vec<Rect>> =
            std::collections::HashMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(self.rects[i]);
        }
        let mut comps: Vec<Region> = groups
            .into_values()
            .map(|rects| Region { rects })
            .collect();
        comps.sort_by_key(|c| c.bbox().lo());
        comps
    }
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Region({} rects, area {})", self.rects.len(), self.area())
    }
}

impl FromIterator<Rect> for Region {
    fn from_iter<I: IntoIterator<Item = Rect>>(iter: I) -> Self {
        Region::from_rects(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_of_overlapping_rects() {
        let a = Region::from_rect(Rect::new(0, 0, 10, 10));
        let b = Region::from_rect(Rect::new(5, 0, 15, 10));
        let u = a.union(&b);
        assert_eq!(u.area(), 150);
        assert_eq!(u.rect_count(), 1);
        assert_eq!(u.bbox(), Rect::new(0, 0, 15, 10));
    }

    #[test]
    fn union_of_touching_rects_merges() {
        let a = Region::from_rect(Rect::new(0, 0, 10, 10));
        let b = Region::from_rect(Rect::new(10, 0, 20, 10));
        let u = a.union(&b);
        assert_eq!(u.rect_count(), 1);
        assert_eq!(u.rects()[0], Rect::new(0, 0, 20, 10));
    }

    #[test]
    fn vertical_merge() {
        let u = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(0, 10, 10, 20)]);
        assert_eq!(u.rect_count(), 1);
        assert_eq!(u.rects()[0], Rect::new(0, 0, 10, 20));
    }

    #[test]
    fn intersection_and_difference() {
        let a = Region::from_rect(Rect::new(0, 0, 100, 100));
        let b = Region::from_rect(Rect::new(50, 50, 150, 150));
        assert_eq!(a.intersection(&b).area(), 2500);
        assert_eq!(a.difference(&b).area(), 7500);
        assert_eq!(b.difference(&a).area(), 7500);
        assert_eq!(a.xor(&b).area(), 15000);
    }

    #[test]
    fn difference_punches_hole() {
        let outer = Region::from_rect(Rect::new(0, 0, 100, 100));
        let hole = Region::from_rect(Rect::new(40, 40, 60, 60));
        let donut = outer.difference(&hole);
        assert_eq!(donut.area(), 10000 - 400);
        assert!(!donut.contains_point(Point::new(50, 50)));
        assert!(donut.contains_point(Point::new(10, 10)));
    }

    #[test]
    fn bloat_and_shrink_roundtrip() {
        let r = Region::from_rect(Rect::new(100, 100, 200, 200));
        let b = r.bloated(10);
        assert_eq!(b.bbox(), Rect::new(90, 90, 210, 210));
        assert_eq!(b.area(), 120 * 120);
        let s = b.shrunk(10);
        assert_eq!(s, r);
    }

    #[test]
    fn shrink_destroys_thin_features() {
        // 10-wide strip disappears when eroded by 5.
        let r = Region::from_rect(Rect::new(0, 0, 1000, 10));
        assert!(r.shrunk(5).is_empty());
        // ...but survives erosion by 4 (2 units remain).
        assert_eq!(r.shrunk(4).rects()[0], Rect::new(4, 4, 996, 6));
    }

    #[test]
    fn opening_removes_spur() {
        // Fat body with a thin spur: opening removes the spur only.
        let body = Rect::new(0, 0, 100, 100);
        let spur = Rect::new(100, 45, 200, 55); // 10 wide
        let r = Region::from_rects([body, spur]);
        let o = r.opened(10);
        assert_eq!(o.area(), 100 * 100);
        assert_eq!(o.bbox(), body);
    }

    #[test]
    fn closing_fills_gap() {
        let a = Rect::new(0, 0, 100, 100);
        let b = Rect::new(110, 0, 210, 100); // 10 gap
        let r = Region::from_rects([a, b]);
        let c = r.closed(10);
        assert_eq!(c.area(), 210 * 100);
    }

    #[test]
    fn clipping() {
        let r = Region::from_rects([Rect::new(0, 0, 100, 100), Rect::new(200, 0, 300, 100)]);
        let c = r.clipped(Rect::new(50, 50, 250, 80));
        assert_eq!(c.area(), 50 * 30 + 50 * 30);
    }

    #[test]
    fn perimeter_of_square_and_l() {
        let sq = Region::from_rect(Rect::new(0, 0, 10, 10));
        assert_eq!(sq.perimeter(), 40);
        let l = Region::from_rects([Rect::new(0, 0, 30, 10), Rect::new(0, 10, 10, 30)]);
        // L-shape perimeter: 30+10+20+20+10+30 = 120
        assert_eq!(l.perimeter(), 120);
    }

    #[test]
    fn connected_components() {
        let r = Region::from_rects([
            Rect::new(0, 0, 10, 10),
            Rect::new(10, 10, 20, 20), // touches first at a corner
            Rect::new(100, 100, 110, 110),
        ]);
        let comps = r.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].area(), 200);
        assert_eq!(comps[1].area(), 100);
    }

    #[test]
    fn selection_operations() {
        let wires = Region::from_rects([
            Rect::new(0, 0, 100, 10),
            Rect::new(0, 50, 100, 60),
            Rect::new(0, 100, 100, 110),
        ]);
        let marker = Region::from_rect(Rect::new(40, 45, 60, 65)); // touches middle wire
        let hit = wires.interacting(&marker);
        assert_eq!(hit.area(), 100 * 10);
        assert!(hit.contains_point(Point::new(50, 55)));
        let miss = wires.not_interacting(&marker);
        assert_eq!(miss.area(), 2 * 100 * 10);
        // inside: only components fully covered.
        let cover = Region::from_rect(Rect::new(-5, 40, 105, 70));
        let inside = wires.inside(&cover);
        assert_eq!(inside.area(), 100 * 10);
        assert!(wires.inside(&Region::new()).is_empty());
    }

    #[test]
    fn empty_behaviour() {
        let e = Region::new();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0);
        assert!(e.bbox().is_empty());
        let r = Region::from_rect(Rect::new(0, 0, 10, 10));
        assert_eq!(e.union(&r), r);
        assert!(e.intersection(&r).is_empty());
        assert!(r.difference(&r).is_empty());
    }

    #[test]
    fn from_rects_filters_degenerate() {
        let r = Region::from_rects([Rect::new(0, 0, 0, 100), Rect::new(0, 0, 10, 10)]);
        assert_eq!(r.area(), 100);
    }

    #[test]
    fn checkerboard_union() {
        let mut rects = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                if (i + j) % 2 == 0 {
                    rects.push(Rect::new(i * 10, j * 10, i * 10 + 10, j * 10 + 10));
                }
            }
        }
        let r = Region::from_rects(rects);
        assert_eq!(r.area(), 32 * 100);
        // 8-connectivity makes the whole checkerboard one component.
        assert_eq!(r.connected_components().len(), 1);
    }
}
