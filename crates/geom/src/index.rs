//! A uniform-grid spatial index for rectangle neighbour queries.

use crate::{Coord, Rect};
use std::collections::HashMap;

/// A uniform-grid spatial index mapping rectangles to payload values.
///
/// Items are bucketed by the grid cells their bounding rectangle overlaps;
/// [`query`](GridIndex::query) returns the payloads of every item whose
/// rectangle *touches* the query window (deduplicated). The index favours
/// the dense, locally-uniform geometry of IC layouts, where a well-chosen
/// cell size makes neighbour queries effectively O(1).
///
/// ```
/// use dfm_geom::{GridIndex, Rect};
/// let mut ix = GridIndex::new(100);
/// ix.insert(Rect::new(0, 0, 50, 50), "a");
/// ix.insert(Rect::new(500, 500, 600, 600), "b");
/// let near_origin = ix.query(Rect::new(0, 0, 10, 10));
/// assert_eq!(near_origin, vec![&"a"]);
/// ```
#[derive(Clone, Debug)]
pub struct GridIndex<T> {
    cell: Coord,
    items: Vec<(Rect, T)>,
    buckets: HashMap<(Coord, Coord), Vec<usize>>,
}

impl<T> GridIndex<T> {
    /// Creates an index with the given grid cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell <= 0`.
    pub fn new(cell: Coord) -> Self {
        assert!(cell > 0, "grid cell size must be positive");
        GridIndex {
            cell,
            items: Vec::new(),
            buckets: HashMap::new(),
        }
    }

    /// Number of items in the index.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items have been inserted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn cell_range(&self, r: Rect) -> (Coord, Coord, Coord, Coord) {
        (
            r.x0.div_euclid(self.cell),
            r.y0.div_euclid(self.cell),
            r.x1.div_euclid(self.cell),
            r.y1.div_euclid(self.cell),
        )
    }

    /// Inserts a rectangle with its payload.
    pub fn insert(&mut self, rect: Rect, value: T) {
        let id = self.items.len();
        let (cx0, cy0, cx1, cy1) = self.cell_range(rect);
        self.items.push((rect, value));
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                self.buckets.entry((cx, cy)).or_default().push(id);
            }
        }
    }

    /// Returns payload references for every item whose rectangle touches
    /// `window` (shared boundary counts), in insertion order.
    ///
    /// Cold-path convenience: allocates a fresh [`Searcher`] per call.
    /// Loops issuing many queries should hold a reusable searcher
    /// instead ([`searcher`](GridIndex::searcher)).
    pub fn query(&self, window: Rect) -> Vec<&T> {
        self.searcher().query(window)
    }

    /// Like [`query`](GridIndex::query) but also returns the stored rects.
    pub fn query_with_rects(&self, window: Rect) -> Vec<(Rect, &T)> {
        self.searcher().query_with_rects(window)
    }

    /// Creates a reusable query handle whose generation-stamp visited
    /// array amortises candidate deduplication to O(k) per query — the
    /// hot path for DRC sweeps and Monte-Carlo inner loops. Each thread
    /// gets its own searcher; the index itself stays shared and
    /// immutable.
    pub fn searcher(&self) -> Searcher<'_, T> {
        Searcher {
            index: self,
            stamps: vec![0; self.items.len()],
            generation: 0,
        }
    }

    /// Iterates over all `(rect, value)` items in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, (Rect, T)> {
        self.items.iter()
    }
}

/// Reusable query handle for a [`GridIndex`].
///
/// Deduplicates candidate ids with a generation-stamped visited array
/// instead of the sort+dedup the index used to perform on every query:
/// an id is a duplicate iff its stamp equals the current query
/// generation, so dedup costs one array probe per candidate. Results
/// are still returned in insertion order — bucket lists are ascending
/// by construction, so a single-bucket query needs no ordering work at
/// all, and a multi-bucket query sorts only the already-unique
/// survivors.
pub struct Searcher<'a, T> {
    index: &'a GridIndex<T>,
    stamps: Vec<u32>,
    generation: u32,
}

impl<'a, T> Searcher<'a, T> {
    /// Payloads of every item touching `window`, insertion order.
    pub fn query(&mut self, window: Rect) -> Vec<&'a T> {
        self.query_with_rects(window).into_iter().map(|(_, v)| v).collect()
    }

    /// Like [`query`](Searcher::query) but also returns the stored rects.
    pub fn query_with_rects(&mut self, window: Rect) -> Vec<(Rect, &'a T)> {
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                // Wraparound: clear stale stamps so generation 1 is fresh.
                self.stamps.fill(0);
                1
            }
        };
        let generation = self.generation;
        let index = self.index;
        let (cx0, cy0, cx1, cy1) = index.cell_range(window);
        let mut ids: Vec<usize> = Vec::new();
        let mut buckets_hit = 0usize;
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = index.buckets.get(&(cx, cy)) {
                    buckets_hit += 1;
                    for &id in bucket {
                        if self.stamps[id] != generation {
                            self.stamps[id] = generation;
                            ids.push(id);
                        }
                    }
                }
            }
        }
        // Each bucket is ascending, so one bucket is already insertion
        // order; only a multi-bucket merge needs sorting (of unique ids).
        if buckets_hit > 1 {
            ids.sort_unstable();
        }
        ids.into_iter()
            .filter_map(|id| {
                let (r, v) = &index.items[id];
                if r.touches(&window) {
                    Some((*r, v))
                } else {
                    None
                }
            })
            .collect()
    }
}

impl<T> Extend<(Rect, T)> for GridIndex<T> {
    fn extend<I: IntoIterator<Item = (Rect, T)>>(&mut self, iter: I) {
        for (r, v) in iter {
            self.insert(r, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_finds_touching_items() {
        let mut ix = GridIndex::new(10);
        ix.insert(Rect::new(0, 0, 10, 10), 1);
        ix.insert(Rect::new(10, 10, 20, 20), 2); // corner-touches query below
        ix.insert(Rect::new(100, 100, 110, 110), 3);
        let hits = ix.query(Rect::new(5, 5, 10, 10));
        assert_eq!(hits, vec![&1, &2]);
    }

    #[test]
    fn query_deduplicates_across_cells() {
        let mut ix = GridIndex::new(10);
        ix.insert(Rect::new(0, 0, 100, 100), 42); // spans many cells
        let hits = ix.query(Rect::new(0, 0, 100, 100));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn negative_coordinates() {
        let mut ix = GridIndex::new(10);
        ix.insert(Rect::new(-25, -25, -15, -15), "neg");
        assert_eq!(ix.query(Rect::new(-20, -20, -18, -18)).len(), 1);
        assert!(ix.query(Rect::new(0, 0, 5, 5)).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_panics() {
        let _ = GridIndex::<()>::new(0);
    }

    #[test]
    fn extend_and_iter() {
        let mut ix = GridIndex::new(50);
        ix.extend([(Rect::new(0, 0, 10, 10), 'a'), (Rect::new(20, 0, 30, 10), 'b')]);
        assert_eq!(ix.len(), 2);
        assert_eq!(ix.iter().count(), 2);
    }
}
