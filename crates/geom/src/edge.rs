//! Boundary-edge extraction from regions.
//!
//! DRC width/spacing checks are *edge-based*: they reason about pairs of
//! region boundary edges and which side of each edge is region interior.
//! [`BoundaryEdges`] is produced by [`Region::boundary_edges`](crate::Region::boundary_edges).

use crate::region::Slab;
use crate::{Coord, IntervalSet};
use std::collections::HashMap;

/// A vertical boundary edge at `x`, spanning `[y0, y1)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct VEdge {
    /// X position of the edge.
    pub x: Coord,
    /// Lower end of the span.
    pub y0: Coord,
    /// Upper end of the span.
    pub y1: Coord,
    /// True if the region interior lies on the +x side of the edge.
    pub interior_right: bool,
}

/// A horizontal boundary edge at `y`, spanning `[x0, x1)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct HEdge {
    /// Y position of the edge.
    pub y: Coord,
    /// Left end of the span.
    pub x0: Coord,
    /// Right end of the span.
    pub x1: Coord,
    /// True if the region interior lies on the +y side of the edge.
    pub interior_up: bool,
}

impl VEdge {
    /// Length of the edge.
    pub fn len(&self) -> Coord {
        self.y1 - self.y0
    }

    /// True for a degenerate zero-length edge.
    pub fn is_empty(&self) -> bool {
        self.y0 >= self.y1
    }
}

impl HEdge {
    /// Length of the edge.
    pub fn len(&self) -> Coord {
        self.x1 - self.x0
    }

    /// True for a degenerate zero-length edge.
    pub fn is_empty(&self) -> bool {
        self.x0 >= self.x1
    }
}

/// The complete boundary of a region as axis-separated edge lists.
///
/// Each edge records which side is region interior, enabling the classic
/// edge-pair formulation of width (interior between the edges) and spacing
/// (exterior between the edges) checks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BoundaryEdges {
    /// Vertical edges, sorted by `(x, y0)`.
    pub vertical: Vec<VEdge>,
    /// Horizontal edges, sorted by `(y, x0)`.
    pub horizontal: Vec<HEdge>,
}

impl BoundaryEdges {
    /// Builds boundary edges from a slab decomposition (crate-internal).
    pub(crate) fn of_slabs(slabs: Vec<Slab>) -> BoundaryEdges {
        let empty = IntervalSet::new();
        let mut horizontal: Vec<HEdge> = Vec::new();
        // Vertical edge fragments keyed by (x, interior_right).
        let mut vfrag: HashMap<(Coord, bool), Vec<(Coord, Coord)>> = HashMap::new();

        // Walk boundaries between consecutive slabs (plus sentinels).
        let n = slabs.len();
        for i in 0..=n {
            let below: &IntervalSet = if i > 0 { &slabs[i - 1].xs } else { &empty };
            let below_y1 = if i > 0 { Some(slabs[i - 1].y1) } else { None };
            let (above, y): (&IntervalSet, Option<Coord>) = if i < n {
                (&slabs[i].xs, Some(slabs[i].y0))
            } else {
                (&empty, None)
            };

            // Determine the y of this boundary and whether below/above are
            // actually adjacent to it (slabs may be separated by gaps).
            // We process two potential boundaries: the top of the slab
            // below (if not contiguous with the slab above) and the bottom
            // of the slab above.
            let contiguous = match (below_y1, y) {
                (Some(b), Some(a)) => b == a,
                _ => false,
            };
            if contiguous {
                let yb = below_y1.expect("contiguous implies below exists");
                // Top edges: covered below, uncovered above.
                for iv in below.difference(above).iter() {
                    horizontal.push(HEdge { y: yb, x0: iv.lo, x1: iv.hi, interior_up: false });
                }
                // Bottom edges: covered above, uncovered below.
                for iv in above.difference(below).iter() {
                    horizontal.push(HEdge { y: yb, x0: iv.lo, x1: iv.hi, interior_up: true });
                }
            } else {
                if let Some(yb) = below_y1 {
                    for iv in below.iter() {
                        horizontal.push(HEdge { y: yb, x0: iv.lo, x1: iv.hi, interior_up: false });
                    }
                }
                if let Some(ya) = y {
                    for iv in above.iter() {
                        horizontal.push(HEdge { y: ya, x0: iv.lo, x1: iv.hi, interior_up: true });
                    }
                }
            }

            // Vertical fragments for the slab above this boundary.
            if i < n {
                let s = &slabs[i];
                for iv in s.xs.iter() {
                    vfrag
                        .entry((iv.lo, true))
                        .or_default()
                        .push((s.y0, s.y1));
                    vfrag
                        .entry((iv.hi, false))
                        .or_default()
                        .push((s.y0, s.y1));
                }
            }
        }

        // Merge vertical fragments that abut.
        let mut vertical: Vec<VEdge> = Vec::new();
        for ((x, interior_right), mut spans) in vfrag {
            spans.sort_unstable();
            let mut cur: Option<(Coord, Coord)> = None;
            for (y0, y1) in spans {
                match cur.as_mut() {
                    Some(c) if c.1 == y0 => c.1 = y1,
                    _ => {
                        if let Some((a, b)) = cur.take() {
                            vertical.push(VEdge { x, y0: a, y1: b, interior_right });
                        }
                        cur = Some((y0, y1));
                    }
                }
            }
            if let Some((a, b)) = cur {
                vertical.push(VEdge { x, y0: a, y1: b, interior_right });
            }
        }

        vertical.sort_unstable_by_key(|e| (e.x, e.y0, e.interior_right));
        horizontal.sort_unstable_by_key(|e| (e.y, e.x0, e.interior_up));
        BoundaryEdges { vertical, horizontal }
    }

    /// Total number of edges.
    pub fn len(&self) -> usize {
        self.vertical.len() + self.horizontal.len()
    }

    /// True if there are no edges.
    pub fn is_empty(&self) -> bool {
        self.vertical.is_empty() && self.horizontal.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Rect, Region};

    #[test]
    fn square_edges() {
        let r = Region::from_rect(Rect::new(0, 0, 10, 10));
        let e = r.boundary_edges();
        assert_eq!(e.vertical.len(), 2);
        assert_eq!(e.horizontal.len(), 2);
        let left = e.vertical.iter().find(|v| v.x == 0).expect("left edge");
        assert!(left.interior_right);
        assert_eq!((left.y0, left.y1), (0, 10));
        let right = e.vertical.iter().find(|v| v.x == 10).expect("right edge");
        assert!(!right.interior_right);
        let bottom = e.horizontal.iter().find(|h| h.y == 0).expect("bottom edge");
        assert!(bottom.interior_up);
        let top = e.horizontal.iter().find(|h| h.y == 10).expect("top edge");
        assert!(!top.interior_up);
    }

    #[test]
    fn stacked_rects_merge_vertical_edges() {
        // Two stacked rects (same x-span): side edges must merge into one
        // edge spanning the full height, and the internal boundary must
        // produce no horizontal edges.
        let r = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(0, 10, 10, 20)]);
        let e = r.boundary_edges();
        assert_eq!(e.vertical.len(), 2);
        assert_eq!(e.vertical[0].len(), 20);
        assert_eq!(e.horizontal.len(), 2);
    }

    #[test]
    fn l_shape_edges() {
        let r = Region::from_rects([Rect::new(0, 0, 30, 10), Rect::new(0, 10, 10, 30)]);
        let e = r.boundary_edges();
        // L-shape: 6 boundary segments total (3 vertical, 3 horizontal).
        assert_eq!(e.vertical.len(), 3);
        assert_eq!(e.horizontal.len(), 3);
        let step = e
            .horizontal
            .iter()
            .find(|h| h.y == 10 && h.x0 == 10)
            .expect("step edge at y=10");
        assert!(!step.interior_up);
        assert_eq!(step.x1, 30);
    }

    #[test]
    fn hole_produces_inner_boundary() {
        let donut = Region::from_rect(Rect::new(0, 0, 100, 100))
            .difference(&Region::from_rect(Rect::new(40, 40, 60, 60)));
        let e = donut.boundary_edges();
        // Outer square: 4 edges; inner square hole: 4 edges.
        assert_eq!(e.len(), 8);
        // Inner-left edge of the hole has interior on its *left* (-x).
        let hole_left = e
            .vertical
            .iter()
            .find(|v| v.x == 40 && v.y0 == 40)
            .expect("hole left edge");
        assert!(!hole_left.interior_right);
        assert_eq!(hole_left.y1, 60);
    }

    #[test]
    fn perimeter_matches_edge_sum() {
        let r = Region::from_rects([
            Rect::new(0, 0, 50, 20),
            Rect::new(20, 20, 50, 60),
            Rect::new(100, 0, 120, 20),
        ]);
        let e = r.boundary_edges();
        let total: i64 = e.vertical.iter().map(|v| v.len()).sum::<i64>()
            + e.horizontal.iter().map(|h| h.len()).sum::<i64>();
        assert_eq!(total, r.perimeter());
    }

    #[test]
    fn separated_slabs_get_full_edges() {
        // Two rects separated vertically: each gets its own top and bottom.
        let r = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(0, 20, 10, 30)]);
        let e = r.boundary_edges();
        assert_eq!(e.horizontal.len(), 4);
        assert_eq!(e.vertical.len(), 4);
    }
}
