//! Points and vectors in the integer layout plane.

use crate::Coord;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A position in the layout plane, in database units.
///
/// ```
/// use dfm_geom::{Point, Vector};
/// let p = Point::new(10, 20) + Vector::new(5, -5);
/// assert_eq!(p, Point::new(15, 15));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Coord,
    /// Vertical coordinate.
    pub y: Coord,
}

/// A displacement in the layout plane, in database units.
///
/// Distinguished from [`Point`] so that positions and offsets cannot be
/// accidentally mixed (a point plus a vector is a point; a point minus a
/// point is a vector).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vector {
    /// Horizontal component.
    pub x: Coord,
    /// Vertical component.
    pub y: Coord,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// The origin, `(0, 0)`.
    pub const fn origin() -> Self {
        Point { x: 0, y: 0 }
    }

    /// Manhattan (L1) distance to another point.
    ///
    /// ```
    /// use dfm_geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan_distance(Point::new(3, -4)), 7);
    /// ```
    pub fn manhattan_distance(self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev (L∞) distance to another point.
    pub fn chebyshev_distance(self, other: Point) -> Coord {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Returns this point as a vector from the origin.
    pub fn to_vector(self) -> Vector {
        Vector { x: self.x, y: self.y }
    }
}

impl Vector {
    /// Creates a vector from its components.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Vector { x, y }
    }

    /// The zero vector.
    pub const fn zero() -> Self {
        Vector { x: 0, y: 0 }
    }

    /// L1 norm of the vector.
    pub fn manhattan_length(self) -> Coord {
        self.x.abs() + self.y.abs()
    }

    /// Cross product z-component (`self.x * other.y - self.y * other.x`).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    pub fn cross(self, other: Vector) -> i128 {
        self.x as i128 * other.y as i128 - self.y as i128 * other.x as i128
    }

    /// Dot product, widened to `i128` to avoid overflow.
    pub fn dot(self, other: Vector) -> i128 {
        self.x as i128 * other.x as i128 + self.y as i128 * other.y as i128
    }

    /// True if the vector is axis-parallel (one component zero) and nonzero.
    pub fn is_manhattan(self) -> bool {
        (self.x == 0) != (self.y == 0)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign<Vector> for Point {
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Sub<Point> for Point {
    type Output = Vector;
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vector> for Vector {
    type Output = Vector;
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vector> for Vector {
    type Output = Vector;
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl Mul<Coord> for Vector {
    type Output = Vector;
    fn mul(self, rhs: Coord) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

impl From<(Coord, Coord)> for Vector {
    fn from((x, y): (Coord, Coord)) -> Self {
        Vector::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_vector_arithmetic() {
        let p = Point::new(1, 2);
        let v = Vector::new(10, -10);
        assert_eq!(p + v, Point::new(11, -8));
        assert_eq!(p - v, Point::new(-9, 12));
        assert_eq!(Point::new(5, 5) - Point::new(2, 1), Vector::new(3, 4));
        assert_eq!(-v, Vector::new(-10, 10));
        assert_eq!(v * 3, Vector::new(30, -30));
    }

    #[test]
    fn distances() {
        let a = Point::new(0, 0);
        let b = Point::new(3, -4);
        assert_eq!(a.manhattan_distance(b), 7);
        assert_eq!(a.chebyshev_distance(b), 4);
    }

    #[test]
    fn cross_and_dot() {
        let x = Vector::new(1, 0);
        let y = Vector::new(0, 1);
        assert_eq!(x.cross(y), 1);
        assert_eq!(y.cross(x), -1);
        assert_eq!(x.dot(y), 0);
        assert_eq!(x.dot(x), 1);
    }

    #[test]
    fn is_manhattan() {
        assert!(Vector::new(5, 0).is_manhattan());
        assert!(Vector::new(0, -5).is_manhattan());
        assert!(!Vector::new(0, 0).is_manhattan());
        assert!(!Vector::new(1, 1).is_manhattan());
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Point::new(0, 100) < Point::new(1, -100));
        assert!(Point::new(1, 0) < Point::new(1, 1));
    }
}
