//! Rectilinear (Manhattan) polygons.

use crate::{Coord, Interval, IntervalSet, Point, Rect, Region, Transform};
use std::error::Error;
use std::fmt;

/// Error returned when a point list does not form a valid rectilinear
/// polygon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidatePolygonError {
    /// Fewer than four vertices were supplied.
    TooFewPoints(usize),
    /// Two consecutive vertices are identical or not axis-aligned.
    NonManhattanEdge {
        /// Index of the edge's first vertex.
        index: usize,
    },
    /// Consecutive edges are parallel (the vertex between them is
    /// redundant or the polygon doubles back on itself).
    CollinearVertex {
        /// Index of the offending vertex.
        index: usize,
    },
}

impl fmt::Display for ValidatePolygonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidatePolygonError::TooFewPoints(n) => {
                write!(f, "rectilinear polygon needs at least 4 vertices, got {n}")
            }
            ValidatePolygonError::NonManhattanEdge { index } => {
                write!(f, "edge starting at vertex {index} is not axis-parallel")
            }
            ValidatePolygonError::CollinearVertex { index } => {
                write!(f, "vertex {index} joins two parallel edges")
            }
        }
    }
}

impl Error for ValidatePolygonError {}

/// A rectilinear polygon given by its vertex loop.
///
/// Vertices may wind in either direction; the polygon is interpreted with
/// even-odd fill. Self-touching outlines (as produced by cutting a hole
/// with a zero-width slit, the GDSII idiom) decompose correctly.
///
/// ```
/// use dfm_geom::{Point, Polygon};
/// let l = Polygon::new([
///     Point::new(0, 0), Point::new(30, 0), Point::new(30, 10),
///     Point::new(10, 10), Point::new(10, 30), Point::new(0, 30),
/// ])?;
/// assert_eq!(l.area(), 500);
/// # Ok::<(), dfm_geom::ValidatePolygonError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Polygon {
    points: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from a vertex loop, validating rectilinearity.
    ///
    /// # Errors
    ///
    /// Returns [`ValidatePolygonError`] if fewer than four vertices are
    /// given, if any edge is not axis-parallel, or if consecutive edges
    /// are parallel.
    pub fn new<I: IntoIterator<Item = Point>>(points: I) -> Result<Self, ValidatePolygonError> {
        let points: Vec<Point> = points.into_iter().collect();
        if points.len() < 4 {
            return Err(ValidatePolygonError::TooFewPoints(points.len()));
        }
        let n = points.len();
        for i in 0..n {
            let a = points[i];
            let b = points[(i + 1) % n];
            if !(b - a).is_manhattan() {
                return Err(ValidatePolygonError::NonManhattanEdge { index: i });
            }
        }
        for i in 0..n {
            let prev = points[(i + n - 1) % n];
            let cur = points[i];
            let next = points[(i + 1) % n];
            let e1 = cur - prev;
            let e2 = next - cur;
            if (e1.x == 0) == (e2.x == 0) {
                return Err(ValidatePolygonError::CollinearVertex { index: i });
            }
        }
        Ok(Polygon { points })
    }

    /// Creates a rectangle polygon.
    pub fn from_rect(r: Rect) -> Self {
        Polygon {
            points: vec![
                Point::new(r.x0, r.y0),
                Point::new(r.x1, r.y0),
                Point::new(r.x1, r.y1),
                Point::new(r.x0, r.y1),
            ],
        }
    }

    /// The vertex loop.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.points.len()
    }

    /// Bounding box of the polygon.
    pub fn bbox(&self) -> Rect {
        let mut x0 = Coord::MAX;
        let mut y0 = Coord::MAX;
        let mut x1 = Coord::MIN;
        let mut y1 = Coord::MIN;
        for p in &self.points {
            x0 = x0.min(p.x);
            y0 = y0.min(p.y);
            x1 = x1.max(p.x);
            y1 = y1.max(p.y);
        }
        Rect { x0, y0, x1, y1 }
    }

    /// Unsigned area (even-odd fill; the shoelace absolute value).
    pub fn area(&self) -> i128 {
        let n = self.points.len();
        let mut acc: i128 = 0;
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[(i + 1) % n];
            acc += (a.x as i128) * (b.y as i128) - (b.x as i128) * (a.y as i128);
        }
        (acc / 2).abs()
    }

    /// Perimeter length of the vertex loop.
    pub fn perimeter(&self) -> Coord {
        let n = self.points.len();
        (0..n)
            .map(|i| self.points[i].manhattan_distance(self.points[(i + 1) % n]))
            .sum()
    }

    /// Decomposes the polygon into disjoint rectangles (even-odd fill)
    /// using a horizontal slab sweep over its vertical edges.
    pub fn to_rects(&self) -> Vec<Rect> {
        // Collect vertical edges (x, ylo, yhi).
        let n = self.points.len();
        let mut vedges: Vec<(Coord, Coord, Coord)> = Vec::new();
        let mut ys: Vec<Coord> = Vec::new();
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[(i + 1) % n];
            if a.x == b.x && a.y != b.y {
                vedges.push((a.x, a.y.min(b.y), a.y.max(b.y)));
                ys.push(a.y);
                ys.push(b.y);
            }
        }
        ys.sort_unstable();
        ys.dedup();
        let mut rects = Vec::new();
        for w in ys.windows(2) {
            let (ylo, yhi) = (w[0], w[1]);
            // Vertical edges crossing this slab, sorted by x; even-odd
            // pairing gives the covered x-intervals.
            let mut xs: Vec<Coord> = vedges
                .iter()
                .filter(|&&(_, e0, e1)| e0 <= ylo && yhi <= e1)
                .map(|&(x, _, _)| x)
                .collect();
            xs.sort_unstable();
            let ivs = IntervalSet::from_intervals(
                xs.chunks_exact(2).map(|c| Interval::new(c[0], c[1])),
            );
            for iv in ivs.iter() {
                rects.push(Rect { x0: iv.lo, y0: ylo, x1: iv.hi, y1: yhi });
            }
        }
        rects
    }

    /// Converts the polygon to a [`Region`].
    pub fn to_region(&self) -> Region {
        Region::from_rects(self.to_rects())
    }

    /// Applies a placement transform to every vertex.
    pub fn transformed(&self, t: &Transform) -> Polygon {
        Polygon {
            points: self.points.iter().map(|&p| t.apply(p)).collect(),
        }
    }

    /// True if the polygon is exactly an axis-aligned rectangle.
    pub fn as_rect(&self) -> Option<Rect> {
        if self.points.len() != 4 {
            return None;
        }
        let b = self.bbox();
        let want = [
            Point::new(b.x0, b.y0),
            Point::new(b.x1, b.y0),
            Point::new(b.x1, b.y1),
            Point::new(b.x0, b.y1),
        ];
        let all_corners = self.points.iter().all(|p| want.contains(p));
        if all_corners {
            Some(b)
        } else {
            None
        }
    }
}

impl fmt::Debug for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polygon{:?}", self.points)
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Self {
        Polygon::from_rect(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polygon {
        Polygon::new([
            Point::new(0, 0),
            Point::new(30, 0),
            Point::new(30, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .expect("valid L")
    }

    #[test]
    fn validation() {
        assert!(matches!(
            Polygon::new([Point::new(0, 0), Point::new(1, 0), Point::new(1, 1)]),
            Err(ValidatePolygonError::TooFewPoints(3))
        ));
        assert!(matches!(
            Polygon::new([
                Point::new(0, 0),
                Point::new(10, 10),
                Point::new(10, 0),
                Point::new(0, 10),
            ]),
            Err(ValidatePolygonError::NonManhattanEdge { .. })
        ));
        assert!(matches!(
            Polygon::new([
                Point::new(0, 0),
                Point::new(5, 0),
                Point::new(10, 0),
                Point::new(10, 10),
                Point::new(0, 10),
            ]),
            Err(ValidatePolygonError::NonManhattanEdge { .. } | ValidatePolygonError::CollinearVertex { .. })
        ));
    }

    #[test]
    fn l_shape_area_and_decomposition() {
        let l = l_shape();
        assert_eq!(l.area(), 500);
        assert_eq!(l.perimeter(), 120);
        let region = l.to_region();
        assert_eq!(region.area(), 500);
        assert_eq!(region.bbox(), Rect::new(0, 0, 30, 30));
    }

    #[test]
    fn winding_direction_irrelevant() {
        let mut pts: Vec<Point> = l_shape().points().to_vec();
        pts.reverse();
        let l = Polygon::new(pts).expect("reversed L is valid");
        assert_eq!(l.area(), 500);
        assert_eq!(l.to_region().area(), 500);
    }

    #[test]
    fn rect_roundtrip() {
        let r = Rect::new(5, 7, 20, 30);
        let p = Polygon::from_rect(r);
        assert_eq!(p.as_rect(), Some(r));
        assert_eq!(p.area(), r.area());
        assert_eq!(p.to_rects(), vec![r]);
    }

    #[test]
    fn u_shape_decomposes_into_three_slabs() {
        let u = Polygon::new([
            Point::new(0, 0),
            Point::new(30, 0),
            Point::new(30, 30),
            Point::new(20, 30),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .expect("valid U");
        assert_eq!(u.area(), 30 * 10 + 2 * 10 * 20);
        let region = u.to_region();
        assert_eq!(region.area(), u.area());
        assert!(!region.contains_point(Point::new(15, 20)));
        assert!(region.contains_point(Point::new(5, 20)));
    }

    #[test]
    fn transformed_polygon() {
        use crate::{Rotation, Vector};
        let l = l_shape();
        let t = Transform::new(Vector::new(100, 0), Rotation::R90, false);
        let moved = l.transformed(&t);
        assert_eq!(moved.area(), 500);
        assert_eq!(moved.bbox(), Rect::new(70, 0, 100, 30));
    }

    #[test]
    fn as_rect_rejects_l() {
        assert_eq!(l_shape().as_rect(), None);
    }
}
