//! Axis-aligned rectangles.

use crate::{Coord, Point, Vector};
use std::fmt;

/// An axis-aligned rectangle with integer corners.
///
/// A `Rect` is always stored in canonical form: `x0 <= x1` and `y0 <= y1`.
/// Rectangles are treated as *closed* regions of the plane; a rectangle with
/// `x0 == x1` or `y0 == y1` is degenerate (zero area) and is considered
/// [empty](Rect::is_empty) by the boolean engine.
///
/// ```
/// use dfm_geom::Rect;
/// let r = Rect::new(30, 40, 10, 20); // corners in any order
/// assert_eq!((r.x0, r.y0, r.x1, r.y1), (10, 20, 30, 40));
/// assert_eq!(r.area(), 400);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rect {
    /// Left edge coordinate.
    pub x0: Coord,
    /// Bottom edge coordinate.
    pub y0: Coord,
    /// Right edge coordinate.
    pub x1: Coord,
    /// Top edge coordinate.
    pub y1: Coord,
}

impl Rect {
    /// Creates a rectangle from two opposite corners given in any order.
    pub fn new(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Creates a rectangle from two corner points given in any order.
    pub fn from_points(a: Point, b: Point) -> Self {
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// Creates a `w × h` rectangle whose centre is `c`.
    ///
    /// For odd `w`/`h` the extra unit goes to the high side.
    pub fn centered_at(c: Point, w: Coord, h: Coord) -> Self {
        let hw = w / 2;
        let hh = h / 2;
        Rect::new(c.x - hw, c.y - hh, c.x - hw + w, c.y - hh + h)
    }

    /// The degenerate empty rectangle at the origin.
    pub const fn empty() -> Self {
        Rect { x0: 0, y0: 0, x1: 0, y1: 0 }
    }


    /// Width of the rectangle (`x1 - x0`).
    pub fn width(&self) -> Coord {
        self.x1 - self.x0
    }

    /// Height of the rectangle (`y1 - y0`).
    pub fn height(&self) -> Coord {
        self.y1 - self.y0
    }

    /// Area of the rectangle. Widened to `i128` to avoid overflow on
    /// full-chip extents.
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// True if the rectangle has zero area.
    pub fn is_empty(&self) -> bool {
        self.x0 >= self.x1 || self.y0 >= self.y1
    }

    /// Centre point (rounded towards negative infinity).
    pub fn center(&self) -> Point {
        Point::new(
            self.x0 + (self.x1 - self.x0) / 2,
            self.y0 + (self.y1 - self.y0) / 2,
        )
    }

    /// Bottom-left corner.
    pub fn lo(&self) -> Point {
        Point::new(self.x0, self.y0)
    }

    /// Top-right corner.
    pub fn hi(&self) -> Point {
        Point::new(self.x1, self.y1)
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        self.x0 <= p.x && p.x <= self.x1 && self.y0 <= p.y && p.y <= self.y1
    }

    /// True if `other` lies entirely inside or on the boundary of `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x0 <= other.x0 && other.x1 <= self.x1 && self.y0 <= other.y0 && other.y1 <= self.y1
    }

    /// True if the two rectangles share interior area (touching edges do
    /// not count).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// True if the two closed rectangles share at least a boundary point.
    pub fn touches(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// Intersection with another rectangle, if non-degenerate.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let r = Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        };
        if r.is_empty() {
            None
        } else {
            Some(r)
        }
    }

    /// Smallest rectangle containing both operands.
    pub fn bounding_union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// The rectangle grown by `d` on all four sides (negative `d` shrinks;
    /// the result is canonicalised, so over-shrinking yields an empty rect).
    pub fn expanded(&self, d: Coord) -> Rect {
        let r = Rect {
            x0: self.x0 - d,
            y0: self.y0 - d,
            x1: self.x1 + d,
            y1: self.y1 + d,
        };
        if r.x0 > r.x1 || r.y0 > r.y1 {
            Rect::empty()
        } else {
            r
        }
    }

    /// The rectangle grown by possibly different amounts per axis.
    pub fn expanded_xy(&self, dx: Coord, dy: Coord) -> Rect {
        let r = Rect {
            x0: self.x0 - dx,
            y0: self.y0 - dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        };
        if r.x0 > r.x1 || r.y0 > r.y1 {
            Rect::empty()
        } else {
            r
        }
    }

    /// The rectangle translated by `v`.
    pub fn translated(&self, v: Vector) -> Rect {
        Rect {
            x0: self.x0 + v.x,
            y0: self.y0 + v.y,
            x1: self.x1 + v.x,
            y1: self.y1 + v.y,
        }
    }

    /// Axis-wise gap to another rectangle: `(dx, dy)` where each component
    /// is the empty distance along that axis (0 when the projections
    /// overlap or touch).
    ///
    /// The Euclidean separation between the two closed rectangles is
    /// `sqrt(dx² + dy²)`; the Manhattan-projected separation used by most
    /// spacing rules is `max(dx, dy)` when exactly one of them is zero.
    pub fn gap(&self, other: &Rect) -> (Coord, Coord) {
        let dx = if self.x1 < other.x0 {
            other.x0 - self.x1
        } else if other.x1 < self.x0 {
            self.x0 - other.x1
        } else {
            0
        };
        let dy = if self.y1 < other.y0 {
            other.y0 - self.y1
        } else if other.y1 < self.y0 {
            self.y0 - other.y1
        } else {
            0
        };
        (dx, dy)
    }

    /// Squared Euclidean distance between the two closed rectangles
    /// (0 when they touch or overlap).
    pub fn dist2(&self, other: &Rect) -> i128 {
        let (dx, dy) = self.gap(other);
        dx as i128 * dx as i128 + dy as i128 * dy as i128
    }
}

impl Default for Rect {
    /// The [empty](Rect::empty) rectangle.
    fn default() -> Self {
        Rect::empty()
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{} .. {},{}]", self.x0, self.y0, self.x1, self.y1)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{} .. {},{}]", self.x0, self.y0, self.x1, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalisation() {
        let r = Rect::new(10, 10, 0, 0);
        assert_eq!(r, Rect::new(0, 0, 10, 10));
        assert!(!r.is_empty());
        assert!(Rect::new(5, 5, 5, 9).is_empty());
    }

    #[test]
    fn containment_and_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(2, 2, 8, 8);
        let c = Rect::new(10, 0, 20, 10);
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // share an edge only
        assert!(a.touches(&c));
        assert!(a.contains(Point::new(10, 10)));
        assert!(!a.contains(Point::new(11, 10)));
    }

    #[test]
    fn intersection_union() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
        assert_eq!(a.intersection(&Rect::new(20, 20, 30, 30)), None);
        assert_eq!(a.bounding_union(&b), Rect::new(0, 0, 15, 15));
    }

    #[test]
    fn expansion() {
        let r = Rect::new(10, 10, 20, 20);
        assert_eq!(r.expanded(5), Rect::new(5, 5, 25, 25));
        assert_eq!(r.expanded(-4), Rect::new(14, 14, 16, 16));
        assert!(r.expanded(-6).is_empty());
    }

    #[test]
    fn gaps() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(15, 0, 25, 10);
        assert_eq!(a.gap(&b), (5, 0));
        let c = Rect::new(15, 20, 25, 30);
        assert_eq!(a.gap(&c), (5, 10));
        assert_eq!(a.dist2(&c), 125);
        assert_eq!(a.gap(&Rect::new(5, 5, 6, 6)), (0, 0));
    }

    #[test]
    fn centered() {
        let r = Rect::centered_at(Point::new(100, 100), 10, 20);
        assert_eq!(r, Rect::new(95, 90, 105, 110));
        assert_eq!(r.center(), Point::new(100, 100));
    }
}
