//! GDSII-style placement transforms.

use crate::{Point, Rect, Vector};
use std::fmt;

/// A rotation by a multiple of 90 degrees, counter-clockwise.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Rotation {
    /// No rotation.
    #[default]
    R0,
    /// 90° counter-clockwise.
    R90,
    /// 180°.
    R180,
    /// 270° counter-clockwise.
    R270,
}

impl Rotation {
    /// Composition of two rotations.
    pub fn compose(self, other: Rotation) -> Rotation {
        Rotation::from_quarter_turns(self.quarter_turns() + other.quarter_turns())
    }

    /// Number of quarter turns (0–3).
    pub fn quarter_turns(self) -> u8 {
        match self {
            Rotation::R0 => 0,
            Rotation::R90 => 1,
            Rotation::R180 => 2,
            Rotation::R270 => 3,
        }
    }

    /// Rotation from a quarter-turn count (taken mod 4).
    pub fn from_quarter_turns(n: u8) -> Rotation {
        match n % 4 {
            0 => Rotation::R0,
            1 => Rotation::R90,
            2 => Rotation::R180,
            _ => Rotation::R270,
        }
    }

    /// The inverse rotation.
    pub fn inverse(self) -> Rotation {
        Rotation::from_quarter_turns(4 - self.quarter_turns())
    }

    fn apply(self, v: Vector) -> Vector {
        match self {
            Rotation::R0 => v,
            Rotation::R90 => Vector::new(-v.y, v.x),
            Rotation::R180 => Vector::new(-v.x, -v.y),
            Rotation::R270 => Vector::new(v.y, -v.x),
        }
    }
}

/// A GDSII placement transform: optional mirror about the x-axis, then a
/// counter-clockwise rotation, then a translation.
///
/// This matches the `STRANS`/`ANGLE` semantics of GDSII structure
/// references restricted to the Manhattan subgroup (the only one legal in
/// this workspace).
///
/// ```
/// use dfm_geom::{Point, Rotation, Transform, Vector};
/// let t = Transform::new(Vector::new(100, 0), Rotation::R90, false);
/// assert_eq!(t.apply(Point::new(10, 0)), Point::new(100, 10));
/// let inv = t.inverse();
/// assert_eq!(inv.apply(t.apply(Point::new(3, 4))), Point::new(3, 4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Transform {
    /// Translation applied last.
    pub offset: Vector,
    /// Counter-clockwise rotation applied after mirroring.
    pub rotation: Rotation,
    /// Mirror about the x-axis (y → −y), applied first.
    pub mirror_x: bool,
}

impl Transform {
    /// Creates a transform from its parts.
    pub fn new(offset: Vector, rotation: Rotation, mirror_x: bool) -> Self {
        Transform { offset, rotation, mirror_x }
    }

    /// The identity transform.
    pub fn identity() -> Self {
        Transform::default()
    }

    /// A pure translation.
    pub fn translate(offset: Vector) -> Self {
        Transform { offset, ..Default::default() }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Point) -> Point {
        let mut v = p.to_vector();
        if self.mirror_x {
            v = Vector::new(v.x, -v.y);
        }
        v = self.rotation.apply(v);
        Point::origin() + v + self.offset
    }

    /// Applies the transform to a rectangle (result re-canonicalised).
    pub fn apply_rect(&self, r: Rect) -> Rect {
        Rect::from_points(self.apply(r.lo()), self.apply(r.hi()))
    }

    /// Composition: `self.then(outer)` applies `self` first, then `outer`.
    pub fn then(&self, outer: &Transform) -> Transform {
        // Compose linear parts. Linear part L = R ∘ M (mirror first).
        // (L2 ∘ T1)(p) = L2(L1 p + t1) + t2 = (L2∘L1) p + L2 t1 + t2.
        let lin_offset = outer.linear_apply(self.offset);
        let (rotation, mirror_x) = compose_linear(
            (self.rotation, self.mirror_x),
            (outer.rotation, outer.mirror_x),
        );
        Transform {
            offset: lin_offset + outer.offset,
            rotation,
            mirror_x,
        }
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Transform {
        // p' = R(M p) + t  =>  p = M⁻¹(R⁻¹(p' - t)) = M(R⁻¹ p') - M(R⁻¹ t)
        // Express inverse in (mirror-then-rotate) canonical form:
        // M ∘ R⁻¹ = R ∘ M where R = conjugated rotation.
        let inv_rot = self.rotation.inverse();
        let (rotation, mirror_x) = if self.mirror_x {
            // M ∘ R(-θ) = R(θ) ∘ M
            (self.rotation, true)
        } else {
            (inv_rot, false)
        };
        let lin = Transform { offset: Vector::zero(), rotation, mirror_x };
        let offset = -lin.linear_apply(self.offset);
        Transform { offset, rotation, mirror_x }
    }

    /// Applies only the linear (mirror+rotation) part to a vector.
    pub fn linear_apply(&self, v: Vector) -> Vector {
        let v = if self.mirror_x { Vector::new(v.x, -v.y) } else { v };
        self.rotation.apply(v)
    }
}

/// Composes two linear parts given as (rotation, mirror) pairs in
/// mirror-first canonical form.
fn compose_linear(
    inner: (Rotation, bool),
    outer: (Rotation, bool),
) -> (Rotation, bool) {
    let (r1, m1) = inner;
    let (r2, m2) = outer;
    // Group law in the dihedral group D4 with canonical form R^a M^b:
    // (R^a2 M^b2)(R^a1 M^b1) = R^(a2 + s*a1) M^(b2+b1), where s = -1 if b2.
    let a1 = r1.quarter_turns() as i8;
    let a2 = r2.quarter_turns() as i8;
    let signed = if m2 { a2 - a1 } else { a2 + a1 };
    let a = signed.rem_euclid(4) as u8;
    (Rotation::from_quarter_turns(a), m1 != m2)
}

impl fmt::Debug for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Transform(t={:?}, {:?}{})",
            self.offset,
            self.rotation,
            if self.mirror_x { ", mirrored" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotations() {
        let p = Point::new(10, 0);
        let r90 = Transform::new(Vector::zero(), Rotation::R90, false);
        assert_eq!(r90.apply(p), Point::new(0, 10));
        let r180 = Transform::new(Vector::zero(), Rotation::R180, false);
        assert_eq!(r180.apply(p), Point::new(-10, 0));
        let r270 = Transform::new(Vector::zero(), Rotation::R270, false);
        assert_eq!(r270.apply(p), Point::new(0, -10));
    }

    #[test]
    fn mirror_then_rotate() {
        // GDS semantics: mirror about x first, then rotate.
        let t = Transform::new(Vector::zero(), Rotation::R90, true);
        // (10, 5) -mirror-> (10, -5) -rot90-> (5, 10)
        assert_eq!(t.apply(Point::new(10, 5)), Point::new(5, 10));
    }

    #[test]
    fn rect_transform_is_canonical() {
        let t = Transform::new(Vector::new(0, 0), Rotation::R180, false);
        let r = t.apply_rect(Rect::new(0, 0, 10, 20));
        assert_eq!(r, Rect::new(-10, -20, 0, 0));
    }

    #[test]
    fn inverse_roundtrip_all_cases() {
        let pts = [Point::new(3, 7), Point::new(-5, 11), Point::new(0, 0)];
        for mirror in [false, true] {
            for rot in [Rotation::R0, Rotation::R90, Rotation::R180, Rotation::R270] {
                let t = Transform::new(Vector::new(13, -4), rot, mirror);
                let inv = t.inverse();
                for &p in &pts {
                    assert_eq!(inv.apply(t.apply(p)), p, "t={t:?}");
                    assert_eq!(t.apply(inv.apply(p)), p, "t={t:?}");
                }
            }
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        let pts = [Point::new(1, 2), Point::new(-3, 5)];
        for m1 in [false, true] {
            for m2 in [false, true] {
                for r1 in [Rotation::R0, Rotation::R90, Rotation::R180, Rotation::R270] {
                    for r2 in [Rotation::R0, Rotation::R90, Rotation::R270] {
                        let t1 = Transform::new(Vector::new(10, 20), r1, m1);
                        let t2 = Transform::new(Vector::new(-7, 3), r2, m2);
                        let c = t1.then(&t2);
                        for &p in &pts {
                            assert_eq!(c.apply(p), t2.apply(t1.apply(p)), "m1={m1} m2={m2} r1={r1:?} r2={r2:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rotation_group_laws() {
        assert_eq!(Rotation::R90.compose(Rotation::R90), Rotation::R180);
        assert_eq!(Rotation::R270.compose(Rotation::R90), Rotation::R0);
        assert_eq!(Rotation::R90.inverse(), Rotation::R270);
        assert_eq!(Rotation::R0.inverse(), Rotation::R0);
    }
}
