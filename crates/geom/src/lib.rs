//! # dfm-geom — integer Manhattan geometry kernel for IC layout
//!
//! This crate is the geometric substrate of the `dfm-practice` workspace: a
//! from-scratch, dependency-free kernel for the rectilinear ("Manhattan")
//! geometry that dominates IC physical design. All coordinates are integers
//! in database units (1 dbu = 1 nanometre throughout the workspace), which
//! makes every operation exact — there is no floating-point robustness
//! problem anywhere in the boolean engine.
//!
//! The main types are:
//!
//! * [`Point`] / [`Vector`] — positions and displacements,
//! * [`Rect`] — axis-aligned rectangles (the workhorse),
//! * [`Polygon`] — rectilinear polygons with slab decomposition into rects,
//! * [`Region`] — a canonical set of disjoint rectangles supporting exact
//!   boolean operations (union / intersection / difference / xor),
//!   Minkowski bloat/shrink, area, and boundary-edge extraction,
//! * [`Transform`] — GDSII-style placement transforms (translate, rotate by
//!   multiples of 90°, mirror),
//! * [`GridIndex`] — a uniform-grid spatial index for neighbour queries.
//!
//! # Example
//!
//! ```
//! use dfm_geom::{Rect, Region};
//!
//! let a = Region::from_rect(Rect::new(0, 0, 100, 100));
//! let b = Region::from_rect(Rect::new(50, 50, 150, 150));
//! let u = a.union(&b);
//! assert_eq!(u.area(), 100 * 100 + 100 * 100 - 50 * 50);
//! let i = a.intersection(&b);
//! assert_eq!(i.area(), 50 * 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod edge;
mod index;
mod interval;
mod point;
mod polygon;
mod rect;
mod region;
mod tilegrid;
pub mod trace;
mod transform;

pub use edge::{BoundaryEdges, HEdge, VEdge};
pub use index::{GridIndex, Searcher};
pub use interval::{Interval, IntervalSet};
pub use point::{Point, Vector};
pub use polygon::{Polygon, ValidatePolygonError};
pub use rect::Rect;
pub use tilegrid::TileGrid;
pub use region::{BoolOp, Region};
pub use trace::boundary_loops;
pub use transform::{Rotation, Transform};

/// Coordinate type used throughout the workspace.
///
/// One unit is one database unit; the workspace convention is 1 dbu = 1 nm.
pub type Coord = i64;

/// Squared Euclidean distance helper used by corner-to-corner checks.
///
/// Returns `dx*dx + dy*dy` as an `i128` so it cannot overflow for any pair
/// of in-range coordinates.
pub fn dist2(a: Point, b: Point) -> i128 {
    let dx = (a.x - b.x) as i128;
    let dy = (a.y - b.y) as i128;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_basics() {
        assert_eq!(dist2(Point::new(0, 0), Point::new(3, 4)), 25);
        assert_eq!(dist2(Point::new(-3, 0), Point::new(0, -4)), 25);
        assert_eq!(dist2(Point::new(7, 7), Point::new(7, 7)), 0);
    }
}
