//! One-dimensional intervals and canonical interval sets.
//!
//! The [`Region`](crate::Region) boolean engine reduces every 2-D operation
//! to boolean operations on sets of 1-D intervals within horizontal slabs,
//! implemented here exactly over integer coordinates.

use crate::Coord;
use std::fmt;

/// A closed-open 1-D interval `[lo, hi)` over integer coordinates.
///
/// Empty when `lo >= hi`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: Coord,
    /// Exclusive upper bound.
    pub hi: Coord,
}

impl Interval {
    /// Creates an interval; operands may be given in either order.
    pub fn new(a: Coord, b: Coord) -> Self {
        Interval { lo: a.min(b), hi: a.max(b) }
    }

    /// Length of the interval (`hi - lo`, never negative).
    pub fn len(&self) -> Coord {
        (self.hi - self.lo).max(0)
    }

    /// True if the interval contains no coordinates.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// True if `x` lies in `[lo, hi)`.
    pub fn contains(&self, x: Coord) -> bool {
        self.lo <= x && x < self.hi
    }

    /// True if the half-open intervals share any coordinates.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// A canonical set of disjoint, non-touching, sorted intervals.
///
/// Canonical form: intervals are non-empty, sorted by `lo`, and separated
/// by at least one unit of empty space (touching intervals are merged).
///
/// ```
/// use dfm_geom::{Interval, IntervalSet};
/// let mut s = IntervalSet::new();
/// s.insert(Interval::new(0, 10));
/// s.insert(Interval::new(10, 20)); // touches: merged
/// s.insert(Interval::new(30, 40));
/// assert_eq!(s.iter().count(), 2);
/// assert_eq!(s.total_len(), 30);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct IntervalSet {
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IntervalSet { ivs: Vec::new() }
    }

    /// Builds a canonical set from arbitrary (possibly overlapping)
    /// intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut ivs: Vec<Interval> = iter.into_iter().filter(|i| !i.is_empty()).collect();
        ivs.sort_unstable();
        let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            match out.last_mut() {
                Some(last) if iv.lo <= last.hi => last.hi = last.hi.max(iv.hi),
                _ => out.push(iv),
            }
        }
        IntervalSet { ivs: out }
    }

    /// Inserts one interval, merging as needed.
    pub fn insert(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        // Fast path: append at the end.
        if self.ivs.last().is_none_or(|l| l.hi < iv.lo) {
            self.ivs.push(iv);
            return;
        }
        let mut all = std::mem::take(&mut self.ivs);
        all.push(iv);
        *self = IntervalSet::from_intervals(all);
    }

    /// True if no intervals are present.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Iterates over the canonical intervals in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, Interval> {
        self.ivs.iter()
    }

    /// Borrow the canonical intervals as a slice.
    pub fn as_slice(&self) -> &[Interval] {
        &self.ivs
    }

    /// Sum of interval lengths.
    pub fn total_len(&self) -> Coord {
        self.ivs.iter().map(|i| i.len()).sum()
    }

    /// True if `x` is covered by some interval.
    pub fn contains(&self, x: Coord) -> bool {
        // Binary search on lo.
        match self.ivs.binary_search_by(|iv| iv.lo.cmp(&x)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.ivs[i - 1].contains(x),
        }
    }

    /// Boolean combination of two canonical sets.
    ///
    /// `keep` decides, for each elementary segment, whether it belongs to
    /// the result given (inside-a, inside-b).
    fn combine(&self, other: &IntervalSet, keep: fn(bool, bool) -> bool) -> IntervalSet {
        // Merge sweep over all endpoints.
        let mut events: Vec<Coord> = Vec::with_capacity(2 * (self.ivs.len() + other.ivs.len()));
        for iv in &self.ivs {
            events.push(iv.lo);
            events.push(iv.hi);
        }
        for iv in &other.ivs {
            events.push(iv.lo);
            events.push(iv.hi);
        }
        events.sort_unstable();
        events.dedup();

        let mut out = Vec::new();
        let mut ai = 0usize;
        let mut bi = 0usize;
        let mut cur: Option<Interval> = None;
        for w in events.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let mid = lo; // segment [lo, hi): membership decided at lo
            while ai < self.ivs.len() && self.ivs[ai].hi <= mid {
                ai += 1;
            }
            while bi < other.ivs.len() && other.ivs[bi].hi <= mid {
                bi += 1;
            }
            let in_a = ai < self.ivs.len() && self.ivs[ai].lo <= mid;
            let in_b = bi < other.ivs.len() && other.ivs[bi].lo <= mid;
            if keep(in_a, in_b) {
                match cur.as_mut() {
                    Some(c) if c.hi == lo => c.hi = hi,
                    _ => {
                        if let Some(c) = cur.take() {
                            out.push(c);
                        }
                        cur = Some(Interval { lo, hi });
                    }
                }
            }
        }
        if let Some(c) = cur {
            out.push(c);
        }
        IntervalSet { ivs: out }
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        self.combine(other, |a, b| a || b)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &IntervalSet) -> IntervalSet {
        self.combine(other, |a, b| a && b)
    }

    /// Set difference (`self - other`).
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        self.combine(other, |a, b| a && !b)
    }

    /// Symmetric difference.
    pub fn xor(&self, other: &IntervalSet) -> IntervalSet {
        self.combine(other, |a, b| a != b)
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.ivs.iter()).finish()
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

impl Extend<Interval> for IntervalSet {
    fn extend<I: IntoIterator<Item = Interval>>(&mut self, iter: I) {
        let mut all = std::mem::take(&mut self.ivs);
        all.extend(iter.into_iter().filter(|i| !i.is_empty()));
        *self = IntervalSet::from_intervals(all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(Coord, Coord)]) -> IntervalSet {
        IntervalSet::from_intervals(pairs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    #[test]
    fn canonicalisation_merges_overlaps_and_touching() {
        let s = set(&[(0, 10), (5, 15), (15, 20), (30, 40)]);
        assert_eq!(s.as_slice(), &[Interval::new(0, 20), Interval::new(30, 40)]);
        assert_eq!(s.total_len(), 30);
    }

    #[test]
    fn empty_intervals_dropped() {
        let s = set(&[(5, 5), (7, 7)]);
        assert!(s.is_empty());
    }

    #[test]
    fn union() {
        let a = set(&[(0, 10), (20, 30)]);
        let b = set(&[(5, 25), (40, 50)]);
        assert_eq!(
            a.union(&b).as_slice(),
            &[Interval::new(0, 30), Interval::new(40, 50)]
        );
    }

    #[test]
    fn intersection() {
        let a = set(&[(0, 10), (20, 30)]);
        let b = set(&[(5, 25)]);
        assert_eq!(
            a.intersection(&b).as_slice(),
            &[Interval::new(5, 10), Interval::new(20, 25)]
        );
    }

    #[test]
    fn difference() {
        let a = set(&[(0, 30)]);
        let b = set(&[(10, 20)]);
        assert_eq!(
            a.difference(&b).as_slice(),
            &[Interval::new(0, 10), Interval::new(20, 30)]
        );
        assert!(b.difference(&a).is_empty());
    }

    #[test]
    fn xor() {
        let a = set(&[(0, 20)]);
        let b = set(&[(10, 30)]);
        assert_eq!(
            a.xor(&b).as_slice(),
            &[Interval::new(0, 10), Interval::new(20, 30)]
        );
    }

    #[test]
    fn contains() {
        let s = set(&[(0, 10), (20, 30)]);
        assert!(s.contains(0));
        assert!(s.contains(9));
        assert!(!s.contains(10));
        assert!(s.contains(25));
        assert!(!s.contains(-1));
        assert!(!s.contains(30));
    }

    #[test]
    fn insert_fast_path_and_slow_path() {
        let mut s = IntervalSet::new();
        s.insert(Interval::new(0, 10));
        s.insert(Interval::new(20, 30)); // fast append
        s.insert(Interval::new(5, 25)); // must merge everything
        assert_eq!(s.as_slice(), &[Interval::new(0, 30)]);
    }
}
