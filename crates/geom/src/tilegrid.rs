//! Fixed-pitch tile grids over a layout extent.
//!
//! A [`TileGrid`] partitions a rectangular extent into half-open *cores*
//! of a fixed nominal size (the last row/column is clamped to the
//! extent, so non-divisor tile sizes are fine). Cores are disjoint and
//! cover the extent exactly, which is what makes tile-owned result
//! merging deterministic: every point of the extent belongs to exactly
//! one core, so an anchor-point ownership rule assigns every violation
//! to exactly one tile.
//!
//! The *window* of a tile is its core expanded by a halo margin; it is
//! deliberately **not** clamped to the extent, so window geometry near
//! the layout border behaves identically to interior tiles.

use crate::{Coord, Point, Rect};

/// A fixed-pitch partition of an extent into half-open core rectangles.
///
/// Tiles are indexed row-major: `i = iy * nx + ix`.
///
/// ```
/// use dfm_geom::{Rect, TileGrid};
/// let g = TileGrid::new(Rect::new(0, 0, 250, 100), 100, 100);
/// assert_eq!((g.nx(), g.ny()), (3, 1));
/// assert_eq!(g.core(2), Rect::new(200, 0, 250, 100)); // clamped last column
/// assert_eq!(g.tile_of(dfm_geom::Point::new(200, 0)), Some(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TileGrid {
    extent: Rect,
    tile_w: Coord,
    tile_h: Coord,
    nx: usize,
    ny: usize,
}

impl TileGrid {
    /// Builds a grid of `tile_w` × `tile_h` cores over `extent`.
    ///
    /// An empty extent yields a grid with zero tiles.
    ///
    /// # Panics
    ///
    /// Panics if `tile_w` or `tile_h` is not positive.
    pub fn new(extent: Rect, tile_w: Coord, tile_h: Coord) -> Self {
        assert!(tile_w > 0 && tile_h > 0, "tile size must be positive");
        let (nx, ny) = if extent.is_empty() {
            (0, 0)
        } else {
            (
                (extent.width() + tile_w - 1) / tile_w,
                (extent.height() + tile_h - 1) / tile_h,
            )
        };
        TileGrid { extent, tile_w, tile_h, nx: nx as usize, ny: ny as usize }
    }

    /// The partitioned extent.
    pub fn extent(&self) -> Rect {
        self.extent
    }

    /// Nominal tile size `(w, h)`.
    pub fn tile_size(&self) -> (Coord, Coord) {
        (self.tile_w, self.tile_h)
    }

    /// Number of tile columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of tile rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of tiles.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// True if the grid has no tiles (empty extent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Core rectangle of tile `i` (half-open; the last row/column is
    /// clamped to the extent).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn core(&self, i: usize) -> Rect {
        assert!(i < self.len(), "tile index {i} out of range {}", self.len());
        let ix = (i % self.nx) as Coord;
        let iy = (i / self.nx) as Coord;
        let x0 = self.extent.x0 + ix * self.tile_w;
        let y0 = self.extent.y0 + iy * self.tile_h;
        Rect::new(
            x0,
            y0,
            (x0 + self.tile_w).min(self.extent.x1),
            (y0 + self.tile_h).min(self.extent.y1),
        )
    }

    /// Window of tile `i`: the core expanded by `halo` on all sides,
    /// **not** clamped to the extent.
    pub fn window(&self, i: usize, halo: Coord) -> Rect {
        self.core(i).expanded(halo)
    }

    /// Index of the tile whose (half-open) core contains `p`, or `None`
    /// if `p` lies outside the extent.
    pub fn tile_of(&self, p: Point) -> Option<usize> {
        if self.is_empty()
            || p.x < self.extent.x0
            || p.x >= self.extent.x1
            || p.y < self.extent.y0
            || p.y >= self.extent.y1
        {
            return None;
        }
        let ix = ((p.x - self.extent.x0) / self.tile_w) as usize;
        let iy = ((p.y - self.extent.y0) / self.tile_h) as usize;
        // Width/height not divisible by the pitch put the clamp inside
        // the last regular column, never beyond it.
        let ix = ix.min(self.nx - 1);
        let iy = iy.min(self.ny - 1);
        Some(iy * self.nx + ix)
    }

    /// Indices of all tiles whose core touches the closed rectangle `r`,
    /// in ascending (row-major) order.
    pub fn tiles_touching(&self, r: &Rect) -> Vec<usize> {
        if self.is_empty() || r.is_empty() {
            return Vec::new();
        }
        let ix0 =(((r.x0 - self.extent.x0) / self.tile_w).max(0) as usize).min(self.nx - 1);
        let ix1 = (((r.x1 - self.extent.x0) / self.tile_w).max(0) as usize).min(self.nx - 1);
        let iy0 = (((r.y0 - self.extent.y0) / self.tile_h).max(0) as usize).min(self.ny - 1);
        let iy1 = (((r.y1 - self.extent.y0) / self.tile_h).max(0) as usize).min(self.ny - 1);
        let mut out = Vec::with_capacity((ix1 - ix0 + 1) * (iy1 - iy0 + 1));
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                let i = iy * self.nx + ix;
                if self.core(i).touches(r) {
                    out.push(i);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_partition_extent() {
        let ext = Rect::new(-30, 10, 250, 215);
        let g = TileGrid::new(ext, 100, 70);
        assert_eq!((g.nx(), g.ny()), (3, 3));
        let mut area = 0i128;
        for i in 0..g.len() {
            let c = g.core(i);
            assert!(ext.contains_rect(&c));
            area += c.area();
            for j in 0..i {
                assert!(!g.core(j).overlaps(&c), "cores {j} and {i} overlap");
            }
        }
        assert_eq!(area, ext.area());
    }

    #[test]
    fn tile_of_matches_cores() {
        let g = TileGrid::new(Rect::new(0, 0, 250, 100), 100, 100);
        for &(p, want) in &[
            (Point::new(0, 0), Some(0)),
            (Point::new(99, 99), Some(0)),
            (Point::new(100, 0), Some(1)),
            (Point::new(249, 99), Some(2)),
            (Point::new(250, 0), None),
            (Point::new(-1, 50), None),
            (Point::new(50, 100), None),
        ] {
            assert_eq!(g.tile_of(p), want, "{p:?}");
        }
    }

    #[test]
    fn window_is_unclamped() {
        let g = TileGrid::new(Rect::new(0, 0, 100, 100), 100, 100);
        assert_eq!(g.window(0, 25), Rect::new(-25, -25, 125, 125));
    }

    #[test]
    fn tiles_touching_includes_seam_neighbours() {
        let g = TileGrid::new(Rect::new(0, 0, 200, 200), 100, 100);
        // A rect ending exactly on the seam still touches both sides.
        assert_eq!(g.tiles_touching(&Rect::new(40, 40, 100, 60)), vec![0, 1]);
        assert_eq!(
            g.tiles_touching(&Rect::new(90, 90, 110, 110)),
            vec![0, 1, 2, 3]
        );
        assert!(g.tiles_touching(&Rect::new(300, 300, 310, 310)).is_empty());
    }

    #[test]
    fn empty_extent_has_no_tiles() {
        let g = TileGrid::new(Rect::empty(), 100, 100);
        assert!(g.is_empty());
        assert_eq!(g.tile_of(Point::new(0, 0)), None);
    }
}
