//! Property test: tile-streamed printing reproduces the flat printed
//! geometry bit-for-bit on random masks and random (divisor and
//! non-divisor) tile sizes. This is the litho face of the tiled-engine
//! equivalence contract — the lattice-aligned simulation windows make
//! every window extraction a pure function of the nearby mask point
//! set.

use dfm_check::{check, prop_assert_eq, Config};
use dfm_geom::{Rect, Region};
use dfm_layout::{layers, FlatLayout, TiledLayout, TilingConfig};
use dfm_litho::{Condition, LithoSimulator};

#[test]
fn printed_tiled_matches_flat_on_random_masks() {
    let sim = LithoSimulator::for_feature_size(90);
    // Simulation is the expensive part: fewer cases, denser assertions.
    let cfg = Config::with_cases(10);
    check(
        "printed_tiled_matches_flat_on_random_masks",
        &cfg,
        &(
            dfm_check::vec((0i64..10, 0i64..10, 1i64..4, 1i64..4), 2..8),
            300i64..1100,
        ),
        |case| {
            let (specs, tile) = (&case.0, case.1);
            let mask = Region::from_rects(specs.iter().map(|&(x, y, w, h)| {
                Rect::new(x * 170, y * 170, x * 170 + w * 90, y * 170 + h * 90)
            }));
            let cond = Condition::nominal();
            let reference = sim.printed(&mask, cond);
            let mut flat = FlatLayout::default();
            flat.set_region(layers::METAL1, mask.clone());
            for t in [tile, tile + 37] {
                let shard_cfg = TilingConfig::builder()
                    .tile(t)
                    .halo(0)
                    .build()
                    .expect("valid tiling");
                let tiled = TiledLayout::from_flat(flat.clone(), shard_cfg);
                let printed = sim.printed_tiled(&tiled, layers::METAL1, cond);
                prop_assert_eq!(
                    printed.rects(),
                    reference.rects(),
                    "tile {} diverged from flat print",
                    t
                );
            }
            Ok(())
        },
    );
}
