//! Property-based tests on the lithography simulator's physics
//! invariants (dfm-check harness).

use dfm_check::{check, prop_assert, prop_assert_eq, Config, Gen};
use dfm_geom::{Rect, Region};
use dfm_litho::{Condition, LithoSimulator};

fn cfg() -> Config {
    Config::with_cases(24)
}

fn arb_mask() -> impl Gen<Value = Region> {
    dfm_check::vec((0i64..8, 0i64..8, 1i64..6, 1i64..6), 1..6).prop_map(|specs| {
        Region::from_rects(specs.into_iter().map(|(x, y, w, h)| {
            Rect::new(x * 200, y * 200, x * 200 + w * 80, y * 200 + h * 80)
        }))
    })
}

/// Printed area is monotone non-decreasing in dose.
#[test]
fn dose_monotonicity() {
    check("dose_monotonicity", &cfg(), &arb_mask(), |mask| {
        let sim = LithoSimulator::for_feature_size(90);
        let lo = sim.printed(mask, Condition::with_dose(0.9)).area();
        let mid = sim.printed(mask, Condition::nominal()).area();
        let hi = sim.printed(mask, Condition::with_dose(1.1)).area();
        prop_assert!(lo <= mid, "{lo} > {mid}");
        prop_assert!(mid <= hi, "{mid} > {hi}");
        Ok(())
    });
}

/// The printed image stays within the optical halo of the mask.
#[test]
fn printed_stays_within_halo() {
    check(
        "printed_stays_within_halo",
        &cfg(),
        &(arb_mask(), 0.0f64..150.0),
        |v| {
            let (mask, defocus) = v;
            let sim = LithoSimulator::for_feature_size(90);
            let cond = Condition::with_defocus(*defocus);
            let printed = sim.printed(mask, cond);
            let halo = sim.halo_nm(cond);
            prop_assert!(printed.difference(&mask.bloated(halo)).is_empty());
            Ok(())
        },
    );
}

/// Mask monotonicity: more mask never prints less.
#[test]
fn mask_monotonicity() {
    check(
        "mask_monotonicity",
        &cfg(),
        &(arb_mask(), (0i64..8, 0i64..8)),
        |v| {
            let (mask, extra) = v;
            let sim = LithoSimulator::for_feature_size(90);
            let bigger = mask.union(&Region::from_rect(Rect::new(
                extra.0 * 200,
                extra.1 * 200,
                extra.0 * 200 + 400,
                extra.1 * 200 + 400,
            )));
            let a = sim.printed(mask, Condition::nominal());
            let b = sim.printed(&bigger, Condition::nominal());
            // Intensity is additive in mask, so printed(mask) ⊆ printed(bigger).
            prop_assert!(a.difference(&b).is_empty());
            Ok(())
        },
    );
}

/// Translation equivariance (within one pixel of raster phase).
#[test]
fn translation_equivariance() {
    check(
        "translation_equivariance",
        &cfg(),
        &(arb_mask(), -3i64..4, -3i64..4),
        |v| {
            let (mask, dx, dy) = v;
            let sim = LithoSimulator::for_feature_size(90);
            let px = sim.pixel_nm;
            let shift = dfm_geom::Vector::new(dx * px, dy * px);
            let a = sim.printed(mask, Condition::nominal());
            let b = sim.printed(&mask.translated(shift), Condition::nominal());
            // Pixel-aligned shifts commute exactly with printing.
            prop_assert_eq!(a.translated(shift).area(), b.area());
            Ok(())
        },
    );
}
