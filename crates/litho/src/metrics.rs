//! Printed-image metrology: CD cutlines and edge-placement error.

use dfm_geom::{Coord, Interval, Point, Region};

/// Printed-to-drawn area ratio, the print-fidelity metric for the
/// manufacturability score (`litho.area_ratio`): 1.0 is a faithful
/// print, under-printing (necking, dropped features) falls below 1,
/// blooming rises above. An empty drawn layer ratios to 1.0 — there
/// was nothing to print and nothing was printed wrongly.
pub fn print_area_ratio(printed_nm2: f64, drawn_nm2: f64) -> f64 {
    if drawn_nm2 <= 0.0 {
        return 1.0;
    }
    printed_nm2 / drawn_nm2
}

/// The covered x-intervals of `region` along the horizontal line `y`
/// (merged and sorted).
pub fn x_intervals_at(region: &Region, y: Coord) -> Vec<Interval> {
    let mut ivs: Vec<Interval> = region
        .rects()
        .iter()
        .filter(|r| r.y0 <= y && y < r.y1)
        .map(|r| Interval::new(r.x0, r.x1))
        .collect();
    ivs.sort_unstable();
    let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
    for iv in ivs {
        match out.last_mut() {
            Some(last) if iv.lo <= last.hi => last.hi = last.hi.max(iv.hi),
            _ => out.push(iv),
        }
    }
    out
}

/// The covered y-intervals of `region` along the vertical line `x`.
pub fn y_intervals_at(region: &Region, x: Coord) -> Vec<Interval> {
    let mut ivs: Vec<Interval> = region
        .rects()
        .iter()
        .filter(|r| r.x0 <= x && x < r.x1)
        .map(|r| Interval::new(r.y0, r.y1))
        .collect();
    ivs.sort_unstable();
    let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
    for iv in ivs {
        match out.last_mut() {
            Some(last) if iv.lo <= last.hi => last.hi = last.hi.max(iv.hi),
            _ => out.push(iv),
        }
    }
    out
}

/// Measures the feature width along a **horizontal** cutline through `p`:
/// the length of the covered x-interval containing `p`. `None` when `p`
/// is not covered.
pub fn cd_horizontal(region: &Region, p: Point) -> Option<Coord> {
    x_intervals_at(region, p.y)
        .into_iter()
        .find(|iv| iv.contains(p.x))
        .map(|iv| iv.len())
}

/// Measures the feature width along a **vertical** cutline through `p`.
pub fn cd_vertical(region: &Region, p: Point) -> Option<Coord> {
    y_intervals_at(region, p.x)
        .into_iter()
        .find(|iv| iv.contains(p.y))
        .map(|iv| iv.len())
}

/// One edge-placement-error sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpeSample {
    /// Sample location on the drawn edge.
    pub at: Point,
    /// Signed EPE along the outward normal: positive = printed beyond
    /// drawn (overprint), negative = pullback. `None` when the printed
    /// image is entirely missing at the probe.
    pub epe: Option<Coord>,
}

/// Samples edge-placement error over every boundary edge of `drawn`,
/// one probe per `spacing` of edge length (at least one per edge, at the
/// midpoint), probing `probe_depth` inside the drawn edge.
pub fn edge_placement_errors(
    drawn: &Region,
    printed: &Region,
    spacing: Coord,
    probe_depth: Coord,
) -> Vec<EpeSample> {
    let mut out = Vec::new();
    let edges = drawn.boundary_edges();
    for e in &edges.vertical {
        let n = ((e.len() + spacing - 1) / spacing).max(1);
        for k in 0..n {
            let y = e.y0 + (2 * k + 1) * e.len() / (2 * n);
            let inward = if e.interior_right { probe_depth } else { -probe_depth };
            let probe_x = e.x + inward;
            let ivs = x_intervals_at(printed, y);
            let epe = ivs.iter().find(|iv| iv.contains(probe_x)).map(|iv| {
                let printed_edge = if e.interior_right { iv.lo } else { iv.hi };
                // Outward normal points away from interior.
                if e.interior_right {
                    e.x - printed_edge
                } else {
                    printed_edge - e.x
                }
            });
            out.push(EpeSample { at: Point::new(e.x, y), epe });
        }
    }
    for e in &edges.horizontal {
        let n = ((e.len() + spacing - 1) / spacing).max(1);
        for k in 0..n {
            let x = e.x0 + (2 * k + 1) * e.len() / (2 * n);
            let inward = if e.interior_up { probe_depth } else { -probe_depth };
            let probe_y = e.y + inward;
            let ivs = y_intervals_at(printed, x);
            let epe = ivs.iter().find(|iv| iv.contains(probe_y)).map(|iv| {
                let printed_edge = if e.interior_up { iv.lo } else { iv.hi };
                if e.interior_up {
                    e.y - printed_edge
                } else {
                    printed_edge - e.y
                }
            });
            out.push(EpeSample { at: Point::new(x, e.y), epe });
        }
    }
    out
}

/// Summary statistics over EPE samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpeSummary {
    /// Number of samples.
    pub samples: usize,
    /// Samples where the printed image was missing entirely.
    pub missing: usize,
    /// Root-mean-square EPE over present samples, in nm.
    pub rms: f64,
    /// Maximum |EPE| over present samples, in nm.
    pub max_abs: Coord,
    /// Mean signed EPE (bias), in nm.
    pub mean: f64,
}

/// Aggregates EPE samples into summary statistics.
pub fn summarize_epe(samples: &[EpeSample]) -> EpeSummary {
    let mut s = EpeSummary { samples: samples.len(), ..Default::default() };
    let mut sum = 0.0;
    let mut sum2 = 0.0;
    let mut n = 0usize;
    for sample in samples {
        match sample.epe {
            None => s.missing += 1,
            Some(e) => {
                sum += e as f64;
                sum2 += (e as f64) * (e as f64);
                s.max_abs = s.max_abs.max(e.abs());
                n += 1;
            }
        }
    }
    if n > 0 {
        s.mean = sum / n as f64;
        s.rms = (sum2 / n as f64).sqrt();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::Rect;

    #[test]
    fn cd_measurements() {
        let region = Region::from_rects([
            Rect::new(0, 0, 100, 50),
            Rect::new(200, 0, 260, 50),
        ]);
        assert_eq!(cd_horizontal(&region, Point::new(50, 25)), Some(100));
        assert_eq!(cd_horizontal(&region, Point::new(220, 25)), Some(60));
        assert_eq!(cd_horizontal(&region, Point::new(150, 25)), None);
        assert_eq!(cd_vertical(&region, Point::new(50, 25)), Some(50));
    }

    #[test]
    fn x_intervals_merge_split_rects() {
        // Region normalisation may split one bar into several rects; the
        // cut must still see one interval.
        let region = Region::from_rects([
            Rect::new(0, 0, 100, 100),
            Rect::new(100, 0, 200, 50),
        ]);
        let ivs = x_intervals_at(&region, 25);
        assert_eq!(ivs.len(), 1);
        assert_eq!((ivs[0].lo, ivs[0].hi), (0, 200));
    }

    #[test]
    fn epe_zero_for_identical_regions() {
        let drawn = Region::from_rect(Rect::new(0, 0, 400, 100));
        let samples = edge_placement_errors(&drawn, &drawn, 100, 5);
        assert!(!samples.is_empty());
        for s in &samples {
            assert_eq!(s.epe, Some(0), "at {:?}", s.at);
        }
        let summary = summarize_epe(&samples);
        assert_eq!(summary.rms, 0.0);
        assert_eq!(summary.missing, 0);
    }

    #[test]
    fn epe_sign_convention() {
        let drawn = Region::from_rect(Rect::new(0, 0, 400, 100));
        // Printed uniformly 10 bigger on all sides: positive EPE.
        let over = Region::from_rect(Rect::new(-10, -10, 410, 110));
        let samples = edge_placement_errors(&drawn, &over, 1000, 5);
        for s in &samples {
            assert_eq!(s.epe, Some(10), "at {:?}", s.at);
        }
        // Printed shrunk by 10: negative EPE.
        let under = Region::from_rect(Rect::new(10, 10, 390, 90));
        let samples = edge_placement_errors(&drawn, &under, 1000, 20);
        for s in &samples {
            assert_eq!(s.epe, Some(-10), "at {:?}", s.at);
        }
    }

    #[test]
    fn epe_missing_for_unprinted() {
        let drawn = Region::from_rect(Rect::new(0, 0, 400, 100));
        let samples = edge_placement_errors(&drawn, &Region::new(), 1000, 5);
        let summary = summarize_epe(&samples);
        assert_eq!(summary.missing, summary.samples);
    }

    #[test]
    fn summary_statistics() {
        let samples = vec![
            EpeSample { at: Point::new(0, 0), epe: Some(3) },
            EpeSample { at: Point::new(1, 0), epe: Some(-4) },
            EpeSample { at: Point::new(2, 0), epe: None },
        ];
        let s = summarize_epe(&samples);
        assert_eq!(s.samples, 3);
        assert_eq!(s.missing, 1);
        assert_eq!(s.max_abs, 4);
        assert!((s.mean - (-0.5)).abs() < 1e-12);
        assert!((s.rms - (12.5f64).sqrt()).abs() < 1e-12);
    }
}
