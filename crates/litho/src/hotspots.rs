//! Simulation-based printability hotspot detection.
//!
//! A *hotspot* is a location where the printed image deviates from drawn
//! intent badly enough to threaten yield: necks that pinch or break
//! (opens) and gaps that bridge (shorts). This module provides the
//! simulation-golden detector that experiment E4 compares the fast
//! pattern-matching screen against.

use crate::{Condition, LithoSimulator};
use dfm_geom::{Coord, Rect, Region};
use std::fmt;

/// The failure mechanism of a hotspot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HotspotKind {
    /// Printed image missing where drawn geometry should be (neck,
    /// line-end pullback, or complete break) — an open risk.
    Pinch,
    /// Printed image present well outside drawn geometry (gap filling
    /// in) — a short risk.
    Bridge,
}

impl fmt::Display for HotspotKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HotspotKind::Pinch => write!(f, "pinch"),
            HotspotKind::Bridge => write!(f, "bridge"),
        }
    }
}

/// One detected hotspot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hotspot {
    /// Failure mechanism.
    pub kind: HotspotKind,
    /// Bounding box of the deviating geometry.
    pub location: Rect,
    /// Deviation area in nm² (bigger = worse).
    pub severity: i64,
}

/// Detector tuning.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HotspotParams {
    /// The drawn geometry is eroded by this much before comparing against
    /// the print; only core material counts as a pinch when missing.
    /// Must stay below half the narrowest feature to be detected
    /// (typically ⅙ of minimum width).
    pub pinch_margin: Coord,
    /// The drawn geometry is dilated by this much; printed material
    /// beyond counts as a bridge. Must stay below half the narrowest gap
    /// to be detected (typically ⅙ of minimum spacing).
    pub bridge_margin: Coord,
    /// Deviations smaller than this area (nm²) are ignored (corner
    /// rounding and line-end noise).
    pub min_area: i64,
}

impl HotspotParams {
    /// Reasonable defaults for a layer with the given minimum width.
    pub fn for_min_width(w: Coord) -> Self {
        HotspotParams {
            pinch_margin: w / 6,
            bridge_margin: w / 6,
            min_area: (w * w) / 2,
        }
    }
}

/// Runs the detector: simulates `drawn` under `cond` and reports every
/// pinch and bridge deviation larger than the noise floor.
pub fn find_hotspots(
    sim: &LithoSimulator,
    drawn: &Region,
    cond: Condition,
    params: HotspotParams,
) -> Vec<Hotspot> {
    let printed = sim.printed(drawn, cond);
    classify_deviations(drawn, &printed, params)
}

/// Classifies deviations between a drawn and an already-simulated printed
/// image (lets callers reuse one simulation across detectors).
pub fn classify_deviations(
    drawn: &Region,
    printed: &Region,
    params: HotspotParams,
) -> Vec<Hotspot> {
    let mut out = Vec::new();

    // Pinches: drawn core material that failed to print.
    let core = drawn.shrunk(params.pinch_margin);
    for comp in core.difference(printed).connected_components() {
        let severity = comp.area() as i64;
        if severity >= params.min_area {
            out.push(Hotspot {
                kind: HotspotKind::Pinch,
                location: comp.bbox(),
                severity,
            });
        }
    }

    // Bridges: printed material well outside drawn.
    let envelope = drawn.bloated(params.bridge_margin);
    for comp in printed.difference(&envelope).connected_components() {
        let severity = comp.area() as i64;
        if severity >= params.min_area {
            out.push(Hotspot {
                kind: HotspotKind::Bridge,
                location: comp.bbox(),
                severity,
            });
        }
    }

    out.sort_by_key(|h| std::cmp::Reverse(h.severity));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::Point;

    fn sim() -> LithoSimulator {
        LithoSimulator::for_feature_size(90)
    }

    #[test]
    fn clean_wide_layout_has_no_hotspots() {
        let s = sim();
        let drawn = Region::from_rects([
            Rect::new(0, 0, 3000, 270),
            Rect::new(0, 540, 3000, 810),
        ]);
        let hs = find_hotspots(&s, &drawn, Condition::nominal(), HotspotParams::for_min_width(90));
        assert!(hs.is_empty(), "unexpected hotspots: {hs:?}");
    }

    #[test]
    fn narrow_neck_reports_pinch() {
        let s = sim();
        // Fat pads joined by a 40 nm neck (σ ≈ 40: the neck breaks).
        let drawn = Region::from_rects([
            Rect::new(0, 0, 600, 600),
            Rect::new(600, 280, 1400, 320),
            Rect::new(1400, 0, 2000, 600),
        ]);
        let hs = find_hotspots(&s, &drawn, Condition::nominal(), HotspotParams::for_min_width(90));
        assert!(
            hs.iter().any(|h| h.kind == HotspotKind::Pinch
                && h.location.overlaps(&Rect::new(600, 280, 1400, 320))),
            "expected a pinch on the neck, got {hs:?}"
        );
    }

    #[test]
    fn narrow_gap_reports_bridge() {
        let s = sim();
        // Two fat plates with a 35 nm slot between them.
        let drawn = Region::from_rects([
            Rect::new(0, 0, 2000, 500),
            Rect::new(0, 535, 2000, 1000),
        ]);
        let hs = find_hotspots(&s, &drawn, Condition::nominal(), HotspotParams::for_min_width(90));
        assert!(
            hs.iter().any(|h| h.kind == HotspotKind::Bridge
                && h.location.contains(Point::new(1000, 517))),
            "expected a bridge in the slot, got {hs:?}"
        );
    }

    #[test]
    fn defocus_creates_hotspots() {
        let s = sim();
        // A 75 nm line prints (thin) at best focus with σ₀ ≈ 40 nm, but
        // its peak intensity drops below threshold under heavy defocus.
        let drawn = Region::from_rect(Rect::new(0, 0, 3000, 75));
        let p = HotspotParams::for_min_width(75);
        let nominal = find_hotspots(&s, &drawn, Condition::nominal(), p);
        let defocused = find_hotspots(&s, &drawn, Condition::with_defocus(200.0), p);
        assert!(nominal.is_empty(), "unexpected nominal hotspots: {nominal:?}");
        assert!(
            defocused.iter().any(|h| h.kind == HotspotKind::Pinch),
            "expected the line to break under defocus, got {defocused:?}"
        );
    }

    #[test]
    fn severity_sorted_descending() {
        let s = sim();
        let drawn = Region::from_rects([
            Rect::new(0, 0, 600, 600),
            Rect::new(600, 290, 1200, 310), // tiny neck
            Rect::new(1200, 0, 1800, 600),
            Rect::new(0, 700, 1800, 735), // long thin wire: huge pinch
        ]);
        let hs = find_hotspots(&s, &drawn, Condition::nominal(), HotspotParams::for_min_width(90));
        for w in hs.windows(2) {
            assert!(w[0].severity >= w[1].severity);
        }
    }

    #[test]
    fn classify_with_identical_images_is_clean() {
        let drawn = Region::from_rect(Rect::new(0, 0, 1000, 200));
        let hs = classify_deviations(&drawn, &drawn, HotspotParams::for_min_width(90));
        assert!(hs.is_empty());
    }
}
