//! The optical model: PSF width from imaging parameters and defocus.

use std::fmt;

/// A simplified projection-optics model.
///
/// The point-spread function is approximated by an isotropic Gaussian
/// whose standard deviation at best focus is `blur_k · λ / NA`; defocus
/// widens it in quadrature. This captures the first-order behaviour of a
/// partially coherent imaging system well enough for the comparative DFM
/// experiments in this workspace (who wins, where the cliffs are), while
/// remaining fast and fully deterministic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpticalModel {
    /// Exposure wavelength in nm (193 for ArF).
    pub wavelength_nm: f64,
    /// Numerical aperture of the projection lens.
    pub na: f64,
    /// Gaussian blur factor: `σ₀ = blur_k · λ / NA`.
    pub blur_k: f64,
    /// Defocus-to-blur coupling: `σ_d = defocus_k · defocus`.
    pub defocus_k: f64,
    /// Weight of the negative ring in the difference-of-Gaussians PSF
    /// (0 = plain Gaussian). A small positive weight models the side
    /// lobes of partially-coherent imaging, producing real proximity
    /// physics — notably **forbidden pitches**.
    pub ring_weight: f64,
    /// The ring Gaussian's σ as a multiple of σ₀.
    pub ring_sigma_factor: f64,
}

impl OpticalModel {
    /// Dry ArF scanner (193 nm, NA 0.93) — 65 nm-node class imaging.
    pub fn argon_fluoride_dry() -> Self {
        OpticalModel {
            wavelength_nm: 193.0,
            na: 0.93,
            blur_k: 0.20,
            defocus_k: 0.25,
            ring_weight: 0.0,
            ring_sigma_factor: 2.5,
        }
    }

    /// Immersion ArF scanner (193 nm, NA 1.35) — 45/32 nm-node class.
    pub fn argon_fluoride_immersion() -> Self {
        OpticalModel {
            wavelength_nm: 193.0,
            na: 1.35,
            blur_k: 0.20,
            defocus_k: 0.25,
            ring_weight: 0.0,
            ring_sigma_factor: 2.5,
        }
    }

    /// Best-focus PSF standard deviation in nm.
    pub fn sigma0_nm(&self) -> f64 {
        self.blur_k * self.wavelength_nm / self.na
    }

    /// Effective PSF standard deviation at `defocus_nm` of defocus.
    pub fn sigma_nm(&self, defocus_nm: f64) -> f64 {
        let s0 = self.sigma0_nm();
        let sd = self.defocus_k * defocus_nm;
        (s0 * s0 + sd * sd).sqrt()
    }

    /// Rayleigh resolution estimate `0.61 λ / NA` in nm.
    pub fn rayleigh_nm(&self) -> f64 {
        0.61 * self.wavelength_nm / self.na
    }

    /// Returns this model with a difference-of-Gaussians ring added
    /// (side-lobe physics; see [`OpticalModel::ring_weight`]).
    pub fn with_ring(mut self, weight: f64, sigma_factor: f64) -> Self {
        assert!((0.0..0.5).contains(&weight), "ring weight must be in [0, 0.5)");
        assert!(sigma_factor > 1.0, "ring must be wider than the core");
        self.ring_weight = weight;
        self.ring_sigma_factor = sigma_factor;
        self
    }
}

impl fmt::Display for OpticalModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "λ={}nm NA={} (σ₀={:.1}nm)",
            self.wavelength_nm,
            self.na,
            self.sigma0_nm()
        )
    }
}

/// One exposure condition: dose (relative to nominal) and defocus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Condition {
    /// Relative dose; 1.0 is nominal, >1 prints bright features larger.
    pub dose: f64,
    /// Defocus in nm (absolute value matters; sign is symmetric in this
    /// model).
    pub defocus_nm: f64,
}

impl Condition {
    /// Nominal exposure: dose 1.0, best focus.
    pub fn nominal() -> Self {
        Condition { dose: 1.0, defocus_nm: 0.0 }
    }

    /// A condition with the given dose at best focus.
    pub fn with_dose(dose: f64) -> Self {
        Condition { dose, defocus_nm: 0.0 }
    }

    /// A condition with nominal dose at the given defocus.
    pub fn with_defocus(defocus_nm: f64) -> Self {
        Condition { dose: 1.0, defocus_nm }
    }

    /// The standard process-corner set used for PV-bands: nominal, dose
    /// ±`dose_pct`, and ±`defocus_nm` defocus (cross combinations).
    pub fn corners(dose_pct: f64, defocus_nm: f64) -> Vec<Condition> {
        let d = dose_pct;
        vec![
            Condition::nominal(),
            Condition { dose: 1.0 + d, defocus_nm: 0.0 },
            Condition { dose: 1.0 - d, defocus_nm: 0.0 },
            Condition { dose: 1.0, defocus_nm },
            Condition { dose: 1.0 + d, defocus_nm },
            Condition { dose: 1.0 - d, defocus_nm },
        ]
    }
}

impl Default for Condition {
    fn default() -> Self {
        Condition::nominal()
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dose={:.3} defocus={:.0}nm", self.dose, self.defocus_nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_grows_with_defocus() {
        let m = OpticalModel::argon_fluoride_immersion();
        let s0 = m.sigma_nm(0.0);
        let s100 = m.sigma_nm(100.0);
        assert!(s100 > s0);
        assert!((m.sigma_nm(0.0) - m.sigma0_nm()).abs() < 1e-12);
        // Quadrature: never more than the sum.
        assert!(s100 < s0 + m.defocus_k * 100.0 + 1e-9);
    }

    #[test]
    fn immersion_beats_dry() {
        let dry = OpticalModel::argon_fluoride_dry();
        let wet = OpticalModel::argon_fluoride_immersion();
        assert!(wet.sigma0_nm() < dry.sigma0_nm());
        assert!(wet.rayleigh_nm() < dry.rayleigh_nm());
    }

    #[test]
    fn corner_set_contains_nominal() {
        let corners = Condition::corners(0.05, 80.0);
        assert_eq!(corners.len(), 6);
        assert_eq!(corners[0], Condition::nominal());
    }
}
