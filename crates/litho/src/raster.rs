//! Pixel rasters: mask rasterisation and Gaussian convolution.

use dfm_geom::{Coord, Rect, Region};

/// A rectangular grid of intensity samples over a layout window.
///
/// Pixel `(ix, iy)` covers the square
/// `[origin.x + ix·p, origin.x + (ix+1)·p) × [origin.y + iy·p, …)`
/// where `p` is [`pixel_nm`](Raster::pixel_nm). Rasterisation is
/// area-weighted, so features that partially cover a pixel contribute
/// fractionally — sub-pixel feature edges survive into the aerial image.
///
/// Each pixel's value is `covered_area / pixel_area` with the covered
/// area accumulated exactly (integer overlap products, all well below
/// 2⁵³) and divided once — so the value is a function of the covered
/// *point set* only, independent of how the region happens to be
/// decomposed into rectangles. Two rasters over the same pixel lattice
/// agree bit-for-bit wherever they see the same geometry, which is what
/// lets windowed simulations tile seamlessly.
#[derive(Clone, Debug)]
pub struct Raster {
    origin_x: Coord,
    origin_y: Coord,
    // Window extent: pixels are ceil-sized, so the last row/column may
    // cover layout area past these; emitted geometry must clamp to them.
    limit_x: Coord,
    limit_y: Coord,
    pixel: Coord,
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

/// Rows per parallel band in raster passes. Bit-identical output does
/// not depend on this (each pixel lives in exactly one band and is
/// accumulated in the same order regardless of banding), so it is a
/// pure granularity knob.
const BAND_ROWS: usize = 32;

impl Raster {
    /// Rasterises a region within `window` at `pixel_nm` resolution.
    ///
    /// # Panics
    ///
    /// Panics if `pixel_nm <= 0` or the window is empty.
    pub fn rasterize(region: &Region, window: Rect, pixel_nm: Coord) -> Self {
        assert!(pixel_nm > 0, "pixel size must be positive");
        assert!(!window.is_empty(), "raster window must be non-empty");
        let nx = (window.width() + pixel_nm - 1) / pixel_nm;
        let ny = (window.height() + pixel_nm - 1) / pixel_nm;
        let (nx, ny) = (nx as usize, ny as usize);
        let mut r = Raster {
            origin_x: window.x0,
            origin_y: window.y0,
            limit_x: window.x1,
            limit_y: window.y1,
            pixel: pixel_nm,
            nx,
            ny,
            data: vec![0.0; nx * ny],
        };
        let px_area = (pixel_nm * pixel_nm) as f64;
        let clipped = region.clipped(window);
        let rects = clipped.rects();
        // Row-band parallel fill: each band owns a contiguous span of
        // rows and walks the rects in input order. Raw integer overlap
        // products accumulate exactly in f64 (every partial sum is an
        // integer ≤ pixel_area · rect_count ≪ 2⁵³), and the single
        // division per pixel happens after the rect loop — so the final
        // value is independent of rect order, rect decomposition, and
        // thread count alike.
        dfm_par::par_chunks_mut(&mut r.data, BAND_ROWS * nx, |_, offset, band| {
            let band_y0 = offset / nx;
            let band_y1 = band_y0 + band.len() / nx;
            for rect in rects {
                // Pixel index range the rect touches, clipped to the band.
                let ix0 = ((rect.x0 - window.x0) / pixel_nm).max(0) as usize;
                let iy0 = (((rect.y0 - window.y0) / pixel_nm).max(0) as usize).max(band_y0);
                let ix1 =
                    (((rect.x1 - window.x0) + pixel_nm - 1) / pixel_nm).min(nx as i64) as usize;
                let iy1 = ((((rect.y1 - window.y0) + pixel_nm - 1) / pixel_nm).min(ny as i64)
                    as usize)
                    .min(band_y1);
                for iy in iy0..iy1 {
                    let py0 = window.y0 + iy as i64 * pixel_nm;
                    let py1 = py0 + pixel_nm;
                    let oy = (rect.y1.min(py1) - rect.y0.max(py0)).max(0);
                    for ix in ix0..ix1 {
                        let qx0 = window.x0 + ix as i64 * pixel_nm;
                        let qx1 = qx0 + pixel_nm;
                        let ox = (rect.x1.min(qx1) - rect.x0.max(qx0)).max(0);
                        band[(iy - band_y0) * nx + ix] += (ox * oy) as f64;
                    }
                }
            }
            for v in band {
                *v /= px_area;
            }
        });
        r
    }

    /// Pixel size in nm.
    pub fn pixel_nm(&self) -> Coord {
        self.pixel
    }

    /// Grid width in pixels.
    pub fn width_px(&self) -> usize {
        self.nx
    }

    /// Grid height in pixels.
    pub fn height_px(&self) -> usize {
        self.ny
    }

    /// Sample at pixel indices, 0.0 outside the grid.
    pub fn get(&self, ix: isize, iy: isize) -> f64 {
        if ix < 0 || iy < 0 || ix as usize >= self.nx || iy as usize >= self.ny {
            0.0
        } else {
            self.data[iy as usize * self.nx + ix as usize]
        }
    }

    /// Sample at a layout coordinate, 0.0 outside the raster window.
    pub fn sample_at(&self, x: Coord, y: Coord) -> f64 {
        let ix = (x - self.origin_x).div_euclid(self.pixel);
        let iy = (y - self.origin_y).div_euclid(self.pixel);
        self.get(ix as isize, iy as isize)
    }

    /// Convolves in place with an isotropic Gaussian of standard
    /// deviation `sigma_nm`, using two separable 1-D passes.
    pub fn gaussian_blur(&mut self, sigma_nm: f64) {
        if sigma_nm <= 0.0 {
            return;
        }
        let sigma_px = sigma_nm / self.pixel as f64;
        let radius = (3.0 * sigma_px).ceil() as isize;
        if radius == 0 {
            return;
        }
        // Build the normalised kernel.
        let mut kernel = Vec::with_capacity((2 * radius + 1) as usize);
        let mut sum = 0.0;
        for i in -radius..=radius {
            let v = (-(i as f64) * (i as f64) / (2.0 * sigma_px * sigma_px)).exp();
            kernel.push(v);
            sum += v;
        }
        for v in &mut kernel {
            *v /= sum;
        }

        let (nx, ny) = (self.nx, self.ny);
        let kernel = &kernel[..];
        // Each output pixel is a fixed-order kernel dot product over the
        // source grid, so row-band parallelism is bit-identical at any
        // thread count. Horizontal pass reads `self.data`, writes `tmp`.
        let mut tmp = vec![0.0f64; nx * ny];
        {
            let src = &self.data;
            dfm_par::par_chunks_mut(&mut tmp, BAND_ROWS * nx, |_, offset, band| {
                let band_y0 = offset / nx;
                for (row_i, row) in band.chunks_mut(nx).enumerate() {
                    let iy = band_y0 + row_i;
                    for (ix, out) in row.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for (k, kv) in kernel.iter().enumerate() {
                            let sx = ix as isize + (k as isize - radius);
                            if sx < 0 || sx as usize >= nx {
                                continue;
                            }
                            acc += kv * src[iy * nx + sx as usize];
                        }
                        *out = acc;
                    }
                }
            });
        }
        // Vertical pass reads `tmp`, writes `self.data`.
        let src = &tmp;
        dfm_par::par_chunks_mut(&mut self.data, BAND_ROWS * nx, |_, offset, band| {
            let band_y0 = offset / nx;
            for (row_i, row) in band.chunks_mut(nx).enumerate() {
                let iy = band_y0 + row_i;
                for (ix, out) in row.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (k, kv) in kernel.iter().enumerate() {
                        let sy = iy as isize + (k as isize - radius);
                        if sy < 0 || sy as usize >= ny {
                            continue;
                        }
                        acc += kv * src[sy as usize * nx + ix];
                    }
                    *out = acc;
                }
            }
        });
    }


    /// Reference implementation: direct (non-separable) 2-D Gaussian
    /// convolution. Mathematically identical to
    /// [`gaussian_blur`](Raster::gaussian_blur) but O(k²) per pixel
    /// instead of O(k); kept for the separability ablation bench and as
    /// an oracle in tests.
    pub fn gaussian_blur_full2d(&mut self, sigma_nm: f64) {
        if sigma_nm <= 0.0 {
            return;
        }
        let sigma_px = sigma_nm / self.pixel as f64;
        let radius = (3.0 * sigma_px).ceil() as isize;
        if radius == 0 {
            return;
        }
        let mut kernel = Vec::with_capacity(((2 * radius + 1) * (2 * radius + 1)) as usize);
        let mut sum = 0.0;
        for j in -radius..=radius {
            for i in -radius..=radius {
                let v = (-((i * i + j * j) as f64) / (2.0 * sigma_px * sigma_px)).exp();
                kernel.push(v);
                sum += v;
            }
        }
        for v in &mut kernel {
            *v /= sum;
        }
        let (nx, ny) = (self.nx, self.ny);
        let k = (2 * radius + 1) as usize;
        let mut out = vec![0.0f64; nx * ny];
        for y in 0..ny as isize {
            for x in 0..nx as isize {
                let mut acc = 0.0;
                for (idx, kv) in kernel.iter().enumerate() {
                    let dj = (idx / k) as isize - radius;
                    let di = (idx % k) as isize - radius;
                    acc += kv * self.get(x + di, y + dj);
                }
                out[y as usize * nx + x as usize] = acc;
            }
        }
        self.data = out;
    }

    /// Subtracts `weight` times `other`'s samples (grids must match).
    /// Used to assemble difference-of-Gaussians kernels.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ in size.
    pub fn subtract_scaled(&mut self, other: &Raster, weight: f64) {
        assert_eq!(self.nx, other.nx, "raster widths must match");
        assert_eq!(self.ny, other.ny, "raster heights must match");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= weight * b;
        }
    }

    /// Divides every sample by `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn rescale(&mut self, scale: f64) {
        assert!(scale != 0.0, "scale must be nonzero");
        for a in &mut self.data {
            *a /= scale;
        }
    }

    /// Extracts the region of pixels with `value >= threshold`, in layout
    /// coordinates (each qualifying pixel contributes its square, clamped
    /// to the raster window — the ceil-sized last row/column must not
    /// emit area the window never covered).
    pub fn threshold_region(&self, threshold: f64) -> Region {
        let mut rects = Vec::new();
        for iy in 0..self.ny {
            // Merge horizontal runs.
            let mut run_start: Option<usize> = None;
            for ix in 0..=self.nx {
                let on = ix < self.nx && self.data[iy * self.nx + ix] >= threshold;
                match (on, run_start) {
                    (true, None) => run_start = Some(ix),
                    (false, Some(s)) => {
                        rects.push(Rect {
                            x0: self.origin_x + s as i64 * self.pixel,
                            y0: self.origin_y + iy as i64 * self.pixel,
                            x1: (self.origin_x + ix as i64 * self.pixel).min(self.limit_x),
                            y1: (self.origin_y + (iy as i64 + 1) * self.pixel).min(self.limit_y),
                        });
                        run_start = None;
                    }
                    _ => {}
                }
            }
        }
        Region::from_rects(rects)
    }

    /// Maximum sample value (0.0 for an empty raster).
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rasterise_exact_pixel_alignment() {
        let region = Region::from_rect(Rect::new(0, 0, 20, 10));
        let r = Raster::rasterize(&region, Rect::new(0, 0, 40, 20), 10);
        assert_eq!(r.width_px(), 4);
        assert_eq!(r.height_px(), 2);
        assert_eq!(r.get(0, 0), 1.0);
        assert_eq!(r.get(1, 0), 1.0);
        assert_eq!(r.get(2, 0), 0.0);
        assert_eq!(r.get(0, 1), 0.0);
    }

    #[test]
    fn rasterise_partial_pixels() {
        let region = Region::from_rect(Rect::new(5, 0, 15, 10));
        let r = Raster::rasterize(&region, Rect::new(0, 0, 20, 10), 10);
        assert!((r.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((r.get(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn blur_conserves_mass_in_interior() {
        let region = Region::from_rect(Rect::new(200, 200, 300, 300));
        let mut r = Raster::rasterize(&region, Rect::new(0, 0, 500, 500), 10);
        let before: f64 = (0..r.height_px() as isize)
            .flat_map(|y| (0..r.width_px() as isize).map(move |x| (x, y)))
            .map(|(x, y)| r.get(x, y))
            .sum();
        r.gaussian_blur(30.0);
        let after: f64 = (0..r.height_px() as isize)
            .flat_map(|y| (0..r.width_px() as isize).map(move |x| (x, y)))
            .map(|(x, y)| r.get(x, y))
            .sum();
        assert!((before - after).abs() / before < 1e-6, "mass not conserved: {before} vs {after}");
    }

    #[test]
    fn blur_step_edge_is_half_at_edge() {
        // A half-plane's blurred value at the edge is 0.5.
        let region = Region::from_rect(Rect::new(0, 0, 500, 1000));
        let mut r = Raster::rasterize(&region, Rect::new(0, 0, 1000, 1000), 10);
        r.gaussian_blur(40.0);
        let at_edge = r.sample_at(500, 500);
        // Pixel centres offset by half a pixel; allow a loose band.
        assert!((0.35..0.65).contains(&at_edge), "edge value {at_edge}");
        assert!(r.sample_at(250, 500) > 0.95);
        assert!(r.sample_at(750, 500) < 0.05);
    }

    #[test]
    fn threshold_roundtrip_without_blur() {
        let region = Region::from_rect(Rect::new(0, 0, 100, 50));
        let r = Raster::rasterize(&region, Rect::new(0, 0, 200, 100), 10);
        let back = r.threshold_region(0.5);
        assert_eq!(back.area(), region.area());
        assert_eq!(back.bbox(), region.bbox());
    }

    #[test]
    fn threshold_clamps_to_non_pixel_multiple_window() {
        // 95×95 window at pixel 10: the grid is ceil-sized to 10×10
        // pixels, but emitted geometry must stop at the window edge.
        let window = Rect::new(0, 0, 95, 95);
        let region = Region::from_rect(window);
        let r = Raster::rasterize(&region, window, 10);
        assert_eq!(r.width_px(), 10);
        assert_eq!(r.height_px(), 10);
        // Interior pixels are fully covered, the last row/column squares
        // half covered (0.5), and the corner square quarter covered
        // (0.25) — threshold below 0.25 keeps them all.
        let back = r.threshold_region(0.2);
        assert_eq!(back.bbox(), window, "region must not extend past the window");
        assert_eq!(back.area(), window.area());
    }

    #[test]
    fn rasterize_identical_across_thread_counts() {
        let region = Region::from_rects([
            Rect::new(12, 7, 263, 181),
            Rect::new(301, 66, 388, 329),
            Rect::new(0, 350, 500, 400),
        ]);
        let window = Rect::new(0, 0, 505, 405);
        let mk = || {
            let mut r = Raster::rasterize(&region, window, 10);
            r.gaussian_blur(35.0);
            r
        };
        let seq = dfm_par::with_threads(1, mk);
        let par = dfm_par::with_threads(8, mk);
        for y in 0..seq.height_px() as isize {
            for x in 0..seq.width_px() as isize {
                assert_eq!(
                    seq.get(x, y).to_bits(),
                    par.get(x, y).to_bits(),
                    "pixel ({x},{y}) differs across thread counts"
                );
            }
        }
    }

    #[test]
    fn full2d_matches_separable() {
        let region = Region::from_rects([
            Rect::new(100, 100, 260, 180),
            Rect::new(300, 60, 380, 320),
        ]);
        let window = Rect::new(0, 0, 500, 400);
        let mut a = Raster::rasterize(&region, window, 10);
        let mut b = a.clone();
        a.gaussian_blur(35.0);
        b.gaussian_blur_full2d(35.0);
        for y in 0..a.height_px() as isize {
            for x in 0..a.width_px() as isize {
                let (va, vb) = (a.get(x, y), b.get(x, y));
                assert!((va - vb).abs() < 1e-9, "({x},{y}): {va} vs {vb}");
            }
        }
    }

    #[test]
    fn sample_outside_is_zero() {
        let region = Region::from_rect(Rect::new(0, 0, 10, 10));
        let r = Raster::rasterize(&region, Rect::new(0, 0, 10, 10), 10);
        assert_eq!(r.sample_at(-5, 5), 0.0);
        assert_eq!(r.sample_at(5, 100), 0.0);
    }

    #[test]
    #[should_panic(expected = "pixel size")]
    fn zero_pixel_panics() {
        let _ = Raster::rasterize(&Region::new(), Rect::new(0, 0, 10, 10), 0);
    }
}
