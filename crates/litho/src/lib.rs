//! # dfm-litho — lithography simulation, process windows, and hotspots
//!
//! A compact aerial-image simulator standing in for the calibrated
//! Hopkins/TCC production models the paper's authors used (see the
//! substitution table in `DESIGN.md`). The pipeline is the same as any
//! printability checker:
//!
//! 1. **Rasterise** the drawn mask geometry onto a pixel grid
//!    ([`Raster`]),
//! 2. **Blur** with the optical point-spread function — a separable
//!    Gaussian whose width is set by `λ/NA` and widened by defocus
//!    ([`OpticalModel`]),
//! 3. **Threshold** with a constant-threshold resist model at the given
//!    dose ([`LithoSimulator::printed_in_window`]),
//! 4. **Extract** the printed geometry back into exact integer
//!    [`Region`](dfm_geom::Region)s, and measure: CDs along cutlines,
//!    edge-placement error, Bossung curves / process-window area
//!    ([`process_window`]), PV-bands, and pinch/bridge **hotspots**
//!    ([`hotspots`]).
//!
//! The Gaussian-kernel approximation reproduces the *mechanisms* that
//! matter for DFM experiments: proximity bias (dense vs isolated lines
//! print differently), line-end pullback, corner rounding, pinching of
//! sub-resolution necks and bridging of sub-resolution gaps, all of which
//! worsen through focus — which is exactly what the pattern-matching and
//! OPC experiments need.
//!
//! ```
//! use dfm_geom::{Point, Rect, Region};
//! use dfm_litho::{Condition, LithoSimulator, OpticalModel};
//!
//! let sim = LithoSimulator::for_feature_size(90);
//! let mask = Region::from_rect(Rect::new(0, 0, 2000, 90)); // a wire
//! let printed = sim.printed(&mask, Condition::nominal());
//! assert!(!printed.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod hotspots;
pub mod metrics;
mod optics;
pub mod process_window;
mod raster;
mod sim;

pub use optics::{Condition, OpticalModel};
pub use raster::Raster;
pub use sim::{merge_printed_pieces, LithoSimulator};
