//! Bossung curves, process-window analysis, and PV-bands.

use crate::metrics::{cd_horizontal, cd_vertical};
use crate::{Condition, LithoSimulator};
use dfm_geom::{Coord, Point, Region};

/// Orientation of a CD cutline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CutAxis {
    /// Measure extent along x (for vertical lines).
    Horizontal,
    /// Measure extent along y (for horizontal lines).
    Vertical,
}

/// Where and how a CD is measured.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CutSpec {
    /// Point the cutline passes through (should be inside the feature).
    pub at: Point,
    /// Measurement axis.
    pub axis: CutAxis,
}

impl CutSpec {
    /// Measures the CD of `region` at this cut.
    pub fn measure(&self, region: &Region) -> Option<Coord> {
        match self.axis {
            CutAxis::Horizontal => cd_horizontal(region, self.at),
            CutAxis::Vertical => cd_vertical(region, self.at),
        }
    }
}

/// One point of a Bossung family: CD at a (dose, defocus) condition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BossungPoint {
    /// Exposure condition.
    pub condition: Condition,
    /// Measured CD, `None` if the feature vanished.
    pub cd: Option<Coord>,
}

/// Simulates the full dose × defocus matrix and measures the CD at `cut`
/// for each condition. This is the data behind a Bossung plot.
pub fn bossung(
    sim: &LithoSimulator,
    mask: &Region,
    cut: CutSpec,
    doses: &[f64],
    defoci: &[f64],
) -> Vec<BossungPoint> {
    let mut out = Vec::with_capacity(doses.len() * defoci.len());
    // One aerial image per defocus; dose only moves the threshold.
    let window = mask.bbox();
    for &defocus in defoci {
        let raster = sim.aerial_image(mask, window, Condition::with_defocus(defocus));
        for &dose in doses {
            let threshold = sim.resist_threshold / dose.max(1e-12);
            let printed = raster.threshold_region(threshold).clipped(window);
            out.push(BossungPoint {
                condition: Condition { dose, defocus_nm: defocus },
                cd: cut.measure(&printed),
            });
        }
    }
    out
}

/// Fraction of conditions whose CD is within `tol_frac` of `target`
/// (a vanished feature counts as out of spec). This is the discrete
/// process-window area in (dose × focus) space.
pub fn process_window_fraction(points: &[BossungPoint], target: Coord, tol_frac: f64) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let tol = (target as f64 * tol_frac).abs();
    let ok = points
        .iter()
        .filter(|p| {
            p.cd
                .map(|cd| ((cd - target) as f64).abs() <= tol)
                .unwrap_or(false)
        })
        .count();
    ok as f64 / points.len() as f64
}

/// Depth of focus at nominal dose: the widest contiguous defocus range
/// (in the sampled grid) keeping CD within `tol_frac` of `target`.
/// Returns the range width in nm.
pub fn depth_of_focus(points: &[BossungPoint], target: Coord, tol_frac: f64) -> f64 {
    let tol = (target as f64 * tol_frac).abs();
    let mut in_spec: Vec<(f64, bool)> = points
        .iter()
        .filter(|p| (p.condition.dose - 1.0).abs() < 1e-9)
        .map(|p| {
            let ok = p
                .cd
                .map(|cd| ((cd - target) as f64).abs() <= tol)
                .unwrap_or(false);
            (p.condition.defocus_nm, ok)
        })
        .collect();
    in_spec.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut best = 0.0f64;
    let mut run_start: Option<f64> = None;
    let mut last;
    for (f, ok) in in_spec {
        if ok {
            if run_start.is_none() {
                run_start = Some(f);
            }
            last = f;
            if let Some(s) = run_start {
                best = best.max(last - s);
            }
        } else {
            run_start = None;
        }
    }
    best
}

/// The process-variability band of `mask` over `conditions`: the region
/// printed under *some* but not *all* conditions. Thin PV-bands mean a
/// robust layout; wide bands mark variability-prone geometry.
pub fn pv_band(sim: &LithoSimulator, mask: &Region, conditions: &[Condition]) -> Region {
    let mut any: Option<Region> = None;
    let mut all: Option<Region> = None;
    for &cond in conditions {
        let printed = sim.printed(mask, cond);
        any = Some(match any {
            None => printed.clone(),
            Some(u) => u.union(&printed),
        });
        all = Some(match all {
            None => printed,
            Some(i) => i.intersection(&printed),
        });
    }
    match (any, all) {
        (Some(u), Some(i)) => u.difference(&i),
        _ => Region::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::Rect;

    fn sim() -> LithoSimulator {
        LithoSimulator::for_feature_size(90)
    }

    fn line_mask() -> Region {
        Region::from_rect(Rect::new(0, 0, 2000, 120))
    }

    fn cut() -> CutSpec {
        CutSpec { at: Point::new(1000, 60), axis: CutAxis::Vertical }
    }

    #[test]
    fn bossung_matrix_is_complete() {
        let points = bossung(
            &sim(),
            &line_mask(),
            cut(),
            &[0.95, 1.0, 1.05],
            &[0.0, 60.0, 120.0],
        );
        assert_eq!(points.len(), 9);
        // Nominal point prints near target.
        let nominal = points
            .iter()
            .find(|p| p.condition == Condition::nominal())
            .expect("nominal present");
        let cd = nominal.cd.expect("prints at nominal");
        assert!((90..=150).contains(&cd), "cd {cd}");
    }

    #[test]
    fn dose_monotonicity_in_bossung() {
        let points = bossung(&sim(), &line_mask(), cut(), &[0.9, 1.0, 1.1], &[0.0]);
        let cds: Vec<i64> = points.iter().map(|p| p.cd.unwrap_or(0)).collect();
        assert!(cds[0] <= cds[1] && cds[1] <= cds[2], "{cds:?}");
    }

    #[test]
    fn window_fraction_and_dof() {
        let points = bossung(
            &sim(),
            &line_mask(),
            cut(),
            &[0.9, 1.0, 1.1],
            &[0.0, 50.0, 100.0, 150.0, 200.0],
        );
        let target = points
            .iter()
            .find(|p| p.condition == Condition::nominal())
            .and_then(|p| p.cd)
            .expect("nominal prints");
        let frac = process_window_fraction(&points, target, 0.10);
        assert!(frac > 0.0 && frac <= 1.0);
        // Extreme defocus must fall out of spec for a near-minimum line.
        assert!(frac < 1.0, "fraction {frac}");
        let dof = depth_of_focus(&points, target, 0.10);
        assert!(dof >= 0.0);
    }

    #[test]
    fn pv_band_grows_with_variation() {
        let s = sim();
        let mask = line_mask();
        let tight = pv_band(&s, &mask, &Condition::corners(0.02, 40.0));
        let loose = pv_band(&s, &mask, &Condition::corners(0.10, 150.0));
        assert!(loose.area() > tight.area());
        // The band hugs the feature boundary: it must not cover the
        // feature centre.
        assert!(!loose.contains_point(Point::new(1000, 60)));
    }

    #[test]
    fn empty_points_fraction_zero() {
        assert_eq!(process_window_fraction(&[], 100, 0.1), 0.0);
    }
}
