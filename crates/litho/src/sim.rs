//! The lithography simulator: rasterise → blur → threshold → extract.

use crate::{Condition, OpticalModel, Raster};
use dfm_geom::{Coord, Rect, Region};
use dfm_layout::{Layer, LayoutView, TiledLayout};

/// End-to-end aerial-image simulator with a constant-threshold resist.
///
/// The resist prints wherever `dose · intensity ≥ threshold`. With the
/// default threshold of 0.5 and nominal dose, long straight edges print
/// exactly on the drawn edge (a blurred step function crosses ½ at the
/// step), so all proximity effects appear as *deviations* from drawn —
/// which is the quantity OPC corrects.
#[derive(Clone, Debug, PartialEq)]
pub struct LithoSimulator {
    /// Optics (PSF) model.
    pub optics: OpticalModel,
    /// Constant resist threshold (relative to clear-field intensity 1.0).
    pub resist_threshold: f64,
    /// Simulation pixel in nm.
    pub pixel_nm: Coord,
}

impl LithoSimulator {
    /// Creates a simulator from explicit parts.
    pub fn new(optics: OpticalModel, resist_threshold: f64, pixel_nm: Coord) -> Self {
        LithoSimulator { optics, resist_threshold, pixel_nm }
    }

    /// A simulator tuned so that features of `min_feature_nm` are near the
    /// printability cliff — the regime every advanced node lives in. The
    /// PSF σ₀ is set to 0.45·`min_feature_nm` and the pixel to ~σ/4.
    pub fn for_feature_size(min_feature_nm: Coord) -> Self {
        let sigma0 = 0.45 * min_feature_nm as f64;
        // Keep physical λ/NA, adjust blur_k to hit the target σ₀.
        let mut optics = OpticalModel::argon_fluoride_immersion();
        optics.blur_k = sigma0 / (optics.wavelength_nm / optics.na);
        LithoSimulator {
            optics,
            resist_threshold: 0.5,
            pixel_nm: (min_feature_nm / 9).max(2),
        }
    }

    /// The PSF halo: geometry within this distance of a window influences
    /// the image inside it.
    pub fn halo_nm(&self, cond: Condition) -> Coord {
        let sigma = self.optics.sigma_nm(cond.defocus_nm);
        let reach = if self.optics.ring_weight > 0.0 {
            sigma * self.optics.ring_sigma_factor
        } else {
            sigma
        };
        (4.0 * reach).ceil() as Coord + 2 * self.pixel_nm
    }

    /// Simulates the aerial image of `mask` within `window` (geometry in
    /// the halo around the window is included automatically).
    ///
    /// With a ringed optical model ([`OpticalModel::ring_weight`] > 0)
    /// the PSF is a normalised difference of Gaussians: long straight
    /// edges still cross 0.5 exactly on the drawn edge, but side lobes
    /// create genuine pitch-dependent proximity (forbidden pitches).
    pub fn aerial_image(&self, mask: &Region, window: Rect, cond: Condition) -> Raster {
        self.simulate(mask, window.expanded(self.halo_nm(cond)), cond)
    }

    /// Rasterise-and-blur over an exact, pre-expanded simulation window.
    fn simulate(&self, mask: &Region, sim_window: Rect, cond: Condition) -> Raster {
        let mut raster = Raster::rasterize(mask, sim_window, self.pixel_nm);
        let sigma = self.optics.sigma_nm(cond.defocus_nm);
        let w = self.optics.ring_weight;
        if w > 0.0 {
            let mut ring = raster.clone();
            raster.gaussian_blur(sigma);
            ring.gaussian_blur(sigma * self.optics.ring_sigma_factor);
            raster.subtract_scaled(&ring, w);
            raster.rescale(1.0 - w);
        } else {
            raster.gaussian_blur(sigma);
        }
        raster
    }

    /// `window` expanded by the PSF halo and snapped *outward* onto the
    /// global pixel lattice anchored at the layout origin. Every printed
    /// extraction simulates over such a window, so any two windows place
    /// their pixels on the same lattice: a pixel near (or inside) both
    /// windows has its full blur-kernel support inside both rasters and
    /// evaluates to bit-identical intensity in each. That invariant is
    /// what makes windowed printing composable — see
    /// [`printed_in_window`](LithoSimulator::printed_in_window).
    fn lattice_sim_window(&self, window: Rect, cond: Condition) -> Rect {
        let p = self.pixel_nm;
        let w = window.expanded(self.halo_nm(cond));
        Rect::new(
            w.x0.div_euclid(p) * p,
            w.y0.div_euclid(p) * p,
            -((-w.x1).div_euclid(p)) * p,
            -((-w.y1).div_euclid(p)) * p,
        )
    }

    /// The printed geometry inside `window` under `cond`, clipped to the
    /// window.
    ///
    /// The simulation runs on the halo-expanded window snapped outward to
    /// the global pixel lattice, so the result is a pure function of the
    /// mask's covered point set near the window: for any two windows
    /// `W₁`, `W₂` the extractions agree exactly on `W₁ ∩ W₂`, and a
    /// partition of a window reassembles its printed geometry
    /// bit-for-bit. (The halo already clears the blur-kernel support of
    /// every pixel touching the window, so lattice snapping only ever
    /// *adds* margin.)
    pub fn printed_in_window(&self, mask: &Region, window: Rect, cond: Condition) -> Region {
        let raster = self.simulate(mask, self.lattice_sim_window(window, cond), cond);
        // dose · I ≥ th  ⇔  I ≥ th / dose
        let threshold = self.resist_threshold / cond.dose.max(1e-12);
        raster.threshold_region(threshold).clipped(window)
    }

    /// The printed geometry of the whole mask under `cond`, simulated in
    /// tiles so arbitrarily large layouts stay within memory bounds.
    pub fn printed(&self, mask: &Region, cond: Condition) -> Region {
        let bbox = mask.bbox();
        if bbox.is_empty() {
            return Region::new();
        }
        let halo = self.halo_nm(cond);
        let full = bbox.expanded(halo);
        let tile: Coord = (self.pixel_nm * 384).max(2 * halo);
        let mut pieces: Vec<Rect> = Vec::new();
        let mut y = full.y0;
        while y < full.y1 {
            let y1 = (y + tile).min(full.y1);
            let mut x = full.x0;
            while x < full.x1 {
                let x1 = (x + tile).min(full.x1);
                let window = Rect::new(x, y, x1, y1);
                // Skip tiles with no geometry in reach.
                if !mask.clipped(window.expanded(halo)).is_empty() {
                    pieces.extend(
                        self.printed_in_window(mask, window, cond)
                            .into_rects(),
                    );
                }
                x = x1;
            }
            y = y1;
        }
        Region::from_rects(pieces)
    }

    /// The printed geometry of one layer of any [`LayoutView`] (whole
    /// chip or a single tile view) under `cond`.
    pub fn printed_layer(
        &self,
        view: &impl LayoutView,
        layer: Layer,
        cond: Condition,
    ) -> Region {
        self.printed(&view.region(layer), cond)
    }

    /// Tile-streamed printing of one layer of a [`TiledLayout`]: each
    /// tile simulates its own window (materialising only O(tile + halo)
    /// geometry) and the merged result is bit-identical to
    /// [`printed`](LithoSimulator::printed) on the flat layer.
    ///
    /// Per tile the print window is the ownership core, extended
    /// outward by the PSF halo on sides that lie on the layout-extent
    /// boundary — so the windows partition the same halo-expanded
    /// extent the flat path prints into, and geometry that prints
    /// slightly outside the drawn extent is not lost. The tile views
    /// carry `2·halo + 2·pixel` of mask margin, which clears the
    /// blur-kernel support of every pixel touching the print window;
    /// the lattice-aligned simulation then guarantees each window
    /// reproduces the flat intensities exactly.
    pub fn printed_tiled(&self, layout: &TiledLayout, layer: Layer, cond: Condition) -> Region {
        if layout.bbox().is_empty() {
            return Region::new();
        }
        let n = layout.tile_count();
        let stream_window = (dfm_par::thread_count() * 2).max(1);
        let pieces: Vec<Vec<Rect>> = dfm_par::par_reduce_streaming(
            n,
            stream_window,
            |i| self.printed_tile_piece(layout, layer, cond, i),
            Vec::with_capacity(n),
            |mut acc, rects| {
                acc.push(rects);
                acc
            },
        );
        merge_printed_pieces(pieces)
    }

    /// One tile's contribution to [`printed_tiled`](LithoSimulator::printed_tiled):
    /// the printed rects of the tile's own print window. A pure
    /// function of `(simulator, layout, layer, condition, tile index)`
    /// — computable in any order, on any thread or process, and merged
    /// with [`merge_printed_pieces`].
    pub fn printed_tile_piece(
        &self,
        layout: &TiledLayout,
        layer: Layer,
        cond: Condition,
        tile: usize,
    ) -> Vec<Rect> {
        let extent = layout.bbox();
        if extent.is_empty() {
            return Vec::new();
        }
        let halo = self.halo_nm(cond);
        let view_halo = 2 * halo + 2 * self.pixel_nm;
        let view = layout.view_layers(tile, view_halo, &[layer]);
        let core = view.core();
        let window = Rect::new(
            if core.x0 == extent.x0 { core.x0 - halo } else { core.x0 },
            if core.y0 == extent.y0 { core.y0 - halo } else { core.y0 },
            if core.x1 == extent.x1 { core.x1 + halo } else { core.x1 },
            if core.y1 == extent.y1 { core.y1 + halo } else { core.y1 },
        );
        let Some(mask) = view.region_ref(layer) else {
            return Vec::new();
        };
        if mask.clipped(window.expanded(halo)).is_empty() {
            return Vec::new();
        }
        self.printed_in_window(mask, window, cond).into_rects()
    }
}

/// Merges per-tile printed pieces (given in tile order) into the
/// canonical printed region — the merge half of
/// [`LithoSimulator::printed_tiled`]. Because the print windows
/// partition the halo-expanded extent, canonicalisation through
/// [`Region::from_rects`] reproduces the flat printed region exactly.
pub fn merge_printed_pieces(pieces: impl IntoIterator<Item = Vec<Rect>>) -> Region {
    Region::from_rects(pieces.into_iter().flatten())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::Point;

    fn sim() -> LithoSimulator {
        LithoSimulator::for_feature_size(90)
    }

    #[test]
    fn wide_feature_prints_near_drawn() {
        let sim = sim();
        let mask = Region::from_rect(Rect::new(0, 0, 2000, 400));
        let printed = sim.printed(&mask, Condition::nominal());
        // Area within a few percent of drawn for a feature ≫ σ.
        let ratio = printed.area() as f64 / mask.area() as f64;
        assert!((0.93..1.07).contains(&ratio), "area ratio {ratio}");
        assert!(printed.contains_point(Point::new(1000, 200)));
    }

    #[test]
    fn min_width_line_prints_at_nominal() {
        let sim = sim();
        let mask = Region::from_rect(Rect::new(0, 0, 2000, 90));
        let printed = sim.printed(&mask, Condition::nominal());
        assert!(printed.contains_point(Point::new(1000, 45)));
    }

    #[test]
    fn sub_resolution_line_pinches() {
        let sim = sim();
        // Well below the cliff: a 30 nm line with σ ≈ 40 nm.
        let mask = Region::from_rect(Rect::new(0, 0, 2000, 30));
        let printed = sim.printed(&mask, Condition::nominal());
        assert!(
            printed.area() < mask.area() / 4,
            "expected heavy pinching, got {} of {}",
            printed.area(),
            mask.area()
        );
    }

    #[test]
    fn sub_resolution_gap_bridges() {
        let sim = sim();
        // Two wide pads separated by a 30 nm slot: the slot fills in.
        let mask = Region::from_rects([
            Rect::new(0, 0, 2000, 400),
            Rect::new(0, 430, 2000, 830),
        ]);
        let printed = sim.printed(&mask, Condition::nominal());
        assert!(
            printed.contains_point(Point::new(1000, 415)),
            "gap should bridge"
        );
    }

    #[test]
    fn higher_dose_prints_larger() {
        let sim = sim();
        let mask = Region::from_rect(Rect::new(0, 0, 2000, 120));
        let lo = sim.printed(&mask, Condition::with_dose(0.9));
        let nom = sim.printed(&mask, Condition::nominal());
        let hi = sim.printed(&mask, Condition::with_dose(1.1));
        assert!(lo.area() < nom.area());
        assert!(nom.area() < hi.area());
    }

    #[test]
    fn defocus_shrinks_narrow_lines() {
        let sim = sim();
        let mask = Region::from_rect(Rect::new(0, 0, 2000, 100));
        let focused = sim.printed(&mask, Condition::nominal());
        let defocused = sim.printed(&mask, Condition::with_defocus(150.0));
        assert!(defocused.area() < focused.area());
    }

    #[test]
    fn corner_rounding_cuts_outside_corner() {
        let sim = sim();
        // L-shape: the convex corner region prints rounded (missing).
        let mask = Region::from_rects([
            Rect::new(0, 0, 1000, 200),
            Rect::new(0, 0, 200, 1000),
        ]);
        let printed = sim.printed(&mask, Condition::nominal());
        // Far interior prints.
        assert!(printed.contains_point(Point::new(500, 100)));
        // The very corner tip of the drawn L's convex outer corner at
        // (1000, 200)-ish erodes: the drawn point just inside that corner.
        let drawn_corner = Point::new(990, 190);
        let interior = Point::new(900, 100);
        assert!(printed.contains_point(interior));
        // Corner pullback: corner point may or may not survive exactly,
        // but printed area must be below drawn area (rounding loses area
        // at two convex corners faster than the concave corner gains).
        assert!(printed.area() < mask.area() + mask.area() / 20);
        let _ = drawn_corner;
    }

    #[test]
    fn tiled_equals_single_window() {
        let sim = LithoSimulator::for_feature_size(90);
        let mask = Region::from_rects([
            Rect::new(0, 0, 1500, 90),
            Rect::new(0, 270, 1500, 360),
            Rect::new(600, -400, 690, 500),
        ]);
        let cond = Condition::nominal();
        let tiled = sim.printed(&mask, cond);
        let window = mask.bbox().expanded(sim.halo_nm(cond));
        let single = sim.printed_in_window(&mask, window, cond);
        // Lattice-aligned simulation makes internal tiling exact: the
        // reassembled geometry is bit-identical, not merely equal-area.
        assert_eq!(tiled.rects(), single.rects());
    }

    #[test]
    fn window_partition_reassembles_exactly() {
        // Split one window into four unequal quadrants: the union of the
        // per-quadrant extractions must equal the whole-window result
        // rect-for-rect (the seam crosses partially-covered pixels).
        let sim = sim();
        let mask = Region::from_rects([
            Rect::new(0, 0, 1200, 95),
            Rect::new(0, 250, 1200, 345),
            Rect::new(500, -300, 595, 600),
        ]);
        let cond = Condition::nominal();
        let window = mask.bbox().expanded(sim.halo_nm(cond));
        let whole = sim.printed_in_window(&mask, window, cond);
        let (sx, sy) = (window.x0 + 7 * window.width() / 16, window.y0 + window.height() / 3);
        let quads = [
            Rect::new(window.x0, window.y0, sx, sy),
            Rect::new(sx, window.y0, window.x1, sy),
            Rect::new(window.x0, sy, sx, window.y1),
            Rect::new(sx, sy, window.x1, window.y1),
        ];
        let mut pieces = Vec::new();
        for q in quads {
            pieces.extend(sim.printed_in_window(&mask, q, cond).into_rects());
        }
        let reassembled = Region::from_rects(pieces);
        assert_eq!(reassembled.rects(), whole.rects());
    }

    #[test]
    fn printed_tiled_is_bit_identical_to_flat() {
        let sim = sim();
        let mask = Region::from_rects([
            Rect::new(0, 0, 1500, 90),
            Rect::new(0, 270, 1500, 360),
            Rect::new(600, -400, 690, 500),
            Rect::new(1100, -350, 1460, -80),
        ]);
        let mut flat = dfm_layout::FlatLayout::default();
        flat.set_region(dfm_layout::layers::METAL1, mask.clone());
        for cond in [Condition::nominal(), Condition::with_dose(1.1)] {
            let reference = sim.printed(&mask, cond);
            assert_eq!(
                sim.printed_layer(&flat, dfm_layout::layers::METAL1, cond).rects(),
                reference.rects()
            );
            // Non-divisor tile sizes included: seams cross pixels.
            for tile in [700, 433] {
                let cfg = dfm_layout::TilingConfig::builder()
                    .tile(tile)
                    .halo(0)
                    .build()
                    .expect("config");
                let tiled = TiledLayout::from_flat(flat.clone(), cfg);
                for threads in [1, 2, 8] {
                    let printed = dfm_par::with_threads(threads, || {
                        sim.printed_tiled(&tiled, dfm_layout::layers::METAL1, cond)
                    });
                    assert_eq!(
                        printed.rects(),
                        reference.rects(),
                        "tile {tile} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn printed_tiled_hotspot_set_matches_flat() {
        use crate::hotspots::{classify_deviations, find_hotspots, HotspotParams};
        let sim = sim();
        // A breaking neck and a bridging slot, placed so tile seams at
        // size 600 cut through both deviations.
        let mask = Region::from_rects([
            Rect::new(0, 0, 500, 600),
            Rect::new(500, 280, 1300, 320),
            Rect::new(1300, 0, 1800, 600),
            Rect::new(0, 800, 1800, 1300),
            Rect::new(0, 1335, 1800, 1800),
        ]);
        let cond = Condition::nominal();
        let params = HotspotParams::for_min_width(90);
        let reference = find_hotspots(&sim, &mask, cond, params);
        assert!(!reference.is_empty(), "fixture should produce hotspots");
        let mut flat = dfm_layout::FlatLayout::default();
        flat.set_region(dfm_layout::layers::METAL1, mask.clone());
        for tile in [600, 377] {
            let cfg = dfm_layout::TilingConfig::builder()
                .tile(tile)
                .halo(0)
                .build()
                .expect("config");
            let tiled = TiledLayout::from_flat(flat.clone(), cfg);
            let printed = sim.printed_tiled(&tiled, dfm_layout::layers::METAL1, cond);
            let hotspots = classify_deviations(&mask, &printed, params);
            assert_eq!(hotspots, reference, "tile {tile}");
        }
    }
}

#[cfg(test)]
mod ring_tests {
    use super::*;
    use crate::metrics::cd_vertical;
    use dfm_geom::Point;

    fn cd_at_pitch(sim: &LithoSimulator, w: i64, pitch: i64) -> Option<i64> {
        let mask = Region::from_rects((0..7).map(|i| Rect::new(0, i * pitch, 4000, i * pitch + w)));
        let printed = sim.printed(&mask, Condition::nominal());
        cd_vertical(&printed, Point::new(2000, 3 * pitch + w / 2))
    }

    #[test]
    fn ring_model_exhibits_forbidden_pitch() {
        let w = 90i64;
        let mut plain = LithoSimulator::for_feature_size(90);
        plain.pixel_nm = 5;
        let ringed = LithoSimulator {
            optics: plain.optics.with_ring(0.3, 2.0),
            ..plain.clone()
        };
        // Sample densely through the crossover between constructive
        // core coupling (tight pitch) and destructive ring coupling.
        let pitches: Vec<i64> = vec![140, 150, 200, 280, 360, 440, 500];
        let plain_cds: Vec<i64> = pitches
            .iter()
            .map(|&p| cd_at_pitch(&plain, w, p).unwrap_or(0))
            .collect();
        let ring_cds: Vec<i64> = pitches
            .iter()
            .map(|&p| cd_at_pitch(&ringed, w, p).unwrap_or(0))
            .collect();
        // Plain Gaussian: CD varies monotonically (no interior dip).
        let plain_dip = (1..plain_cds.len() - 1)
            .any(|i| plain_cds[i] + 2 < plain_cds[i - 1] && plain_cds[i] + 2 < plain_cds[i + 1]);
        assert!(!plain_dip, "plain model dips: {plain_cds:?}");
        // Ringed: some interior pitch prints measurably worse than both
        // neighbours — the forbidden pitch.
        let ring_dip = (1..ring_cds.len() - 1)
            .any(|i| ring_cds[i] + 2 < ring_cds[i - 1] && ring_cds[i] + 2 < ring_cds[i + 1]);
        assert!(ring_dip, "no forbidden pitch in {ring_cds:?}");
        // Edge calibration survives the ring: an isolated wide feature
        // still prints at size.
        let wide = Region::from_rect(Rect::new(0, 0, 4000, 600));
        let printed = ringed.printed(&wide, Condition::nominal());
        let cd = cd_vertical(&printed, Point::new(2000, 300)).expect("prints");
        assert!((cd - 600).abs() <= 3 * ringed.pixel_nm, "wide CD {cd}");
    }
}
