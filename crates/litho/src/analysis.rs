//! Image-quality analysis: NILS and MEEF.
//!
//! Two classic lithography robustness metrics:
//!
//! * **NILS** (normalised image log slope): `w · |dI/dx| / I` at the
//!   feature edge — the higher, the more dose latitude the edge has.
//! * **MEEF** (mask error enhancement factor): `ΔCD_wafer / ΔCD_mask` —
//!   how much a mask-making error is amplified on the wafer. MEEF ≈ 1 in
//!   the linear regime and blows up near the resolution limit, which is
//!   one of the panel's cost arguments (mask spec tightening).

use crate::process_window::CutSpec;
use crate::{Condition, LithoSimulator};
use dfm_geom::{Coord, Point, Region};

/// Measures the normalised image log slope at a feature's edge.
///
/// `edge` is a point on the drawn feature edge and `inward` a unit-ish
/// vector pointing into the feature; the slope is sampled one pixel
/// either side of the edge. Returns `None` when the image carries no
/// gradient there (feature vanished).
pub fn nils(
    sim: &LithoSimulator,
    mask: &Region,
    edge: Point,
    inward: dfm_geom::Vector,
    feature_width: Coord,
    cond: Condition,
) -> Option<f64> {
    let window = dfm_geom::Rect::centered_at(edge, 40 * sim.pixel_nm, 40 * sim.pixel_nm);
    let raster = sim.aerial_image(mask, window, cond);
    let step = sim.pixel_nm;
    let p_in = edge + inward * (2 * step);
    let p_out = edge - inward * (2 * step);
    let i_in = raster.sample_at(p_in.x, p_in.y);
    let i_out = raster.sample_at(p_out.x, p_out.y);
    let i_edge = raster.sample_at(edge.x, edge.y);
    if i_edge <= 1e-6 || (i_in - i_out).abs() < 1e-9 {
        return None;
    }
    let slope = (i_in - i_out).abs() / (4 * step) as f64;
    Some(feature_width as f64 * slope / i_edge)
}

/// Measures the mask error enhancement factor at a CD cut.
///
/// The mask is biased by ±`delta` per edge (a mask CD error of
/// `2·delta`) and the printed CD change is divided by the mask CD
/// change. Returns `None` if any variant fails to print at the cut.
pub fn meef(
    sim: &LithoSimulator,
    mask: &Region,
    cut: CutSpec,
    delta: Coord,
    cond: Condition,
) -> Option<f64> {
    let plus = mask.bloated(delta);
    let minus = mask.shrunk(delta);
    let cd_plus = cut.measure(&sim.printed(&plus, cond))?;
    let cd_minus = cut.measure(&sim.printed(&minus, cond))?;
    Some((cd_plus - cd_minus) as f64 / (4 * delta) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process_window::CutAxis;
    use dfm_geom::{Rect, Vector};

    fn sim() -> LithoSimulator {
        LithoSimulator::for_feature_size(90)
    }

    #[test]
    fn nils_positive_on_printing_edge() {
        let mask = Region::from_rect(Rect::new(0, 0, 3000, 200));
        let v = nils(
            &sim(),
            &mask,
            Point::new(1500, 0),
            Vector::new(0, 1),
            200,
            Condition::nominal(),
        )
        .expect("edge has slope");
        assert!(v > 0.5, "NILS {v}");
    }

    #[test]
    fn nils_drops_with_defocus() {
        let mask = Region::from_rect(Rect::new(0, 0, 3000, 120));
        let focus = nils(
            &sim(),
            &mask,
            Point::new(1500, 0),
            Vector::new(0, 1),
            120,
            Condition::nominal(),
        )
        .expect("prints at focus");
        let blur = nils(
            &sim(),
            &mask,
            Point::new(1500, 0),
            Vector::new(0, 1),
            120,
            Condition::with_defocus(150.0),
        )
        .expect("still has slope");
        assert!(blur < focus, "NILS {focus} -> {blur}");
    }

    #[test]
    fn dense_line_has_lower_nils_than_wide() {
        let s = sim();
        let narrow = Region::from_rect(Rect::new(0, 0, 3000, 90));
        let wide = Region::from_rect(Rect::new(0, 0, 3000, 400));
        let n_narrow = nils(&s, &narrow, Point::new(1500, 0), Vector::new(0, 1), 90, Condition::nominal())
            .expect("narrow prints");
        let n_wide = nils(&s, &wide, Point::new(1500, 0), Vector::new(0, 1), 400, Condition::nominal())
            .expect("wide prints");
        // Note both measure *their own* width; normalise per nm to compare
        // raw slopes instead.
        assert!(n_narrow / 90.0 <= n_wide / 400.0 + 1e-3, "{n_narrow} vs {n_wide}");
    }

    #[test]
    fn meef_near_one_for_large_features() {
        let s = sim();
        let mask = Region::from_rect(Rect::new(0, 0, 3000, 400));
        let cut = CutSpec { at: Point::new(1500, 200), axis: CutAxis::Vertical };
        let m = meef(&s, &mask, cut, 8, Condition::nominal()).expect("prints");
        assert!((0.5..1.6).contains(&m), "MEEF {m}");
    }

    #[test]
    fn meef_amplifies_near_resolution_limit() {
        let s = sim();
        let big = Region::from_rect(Rect::new(0, 0, 3000, 400));
        let small = Region::from_rect(Rect::new(0, 0, 3000, 80));
        let cut_big = CutSpec { at: Point::new(1500, 200), axis: CutAxis::Vertical };
        let cut_small = CutSpec { at: Point::new(1500, 40), axis: CutAxis::Vertical };
        let m_big = meef(&s, &big, cut_big, 8, Condition::nominal()).expect("big prints");
        let m_small = meef(&s, &small, cut_small, 8, Condition::nominal()).expect("small prints");
        assert!(
            m_small > m_big,
            "MEEF should grow near the limit: {m_big} vs {m_small}"
        );
    }
}
