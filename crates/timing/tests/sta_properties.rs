//! Property-based tests for the STA engine (dfm-check harness).

use dfm_check::{check, prop_assert, prop_assert_eq, Config};
use dfm_timing::{extract, sta, DelayModel, Netlist};

fn cfg() -> Config {
    Config::with_cases(32)
}

/// Worst slack shifts exactly with the clock period.
#[test]
fn slack_linear_in_clock() {
    check(
        "slack_linear_in_clock",
        &cfg(),
        &(2usize..8, 2usize..8, 0u64..100, 100.0f64..1000.0, 1.0f64..500.0),
        |v| {
            let (levels, width, seed, clock, extra) = *v;
            let n = Netlist::random(levels, width, seed);
            let model = DelayModel::default();
            let lengths = extract::drawn(&n);
            let a = sta::run(&n, &lengths, &model, clock);
            let b = sta::run(&n, &lengths, &model, clock + extra);
            prop_assert!((b.worst_slack - a.worst_slack - extra).abs() < 1e-9);
            Ok(())
        },
    );
}

/// Longer gates everywhere never improve the worst slack, and never
/// increase leakage.
#[test]
fn uniform_slowdown_is_monotone() {
    check(
        "uniform_slowdown_is_monotone",
        &cfg(),
        &(2usize..8, 2usize..8, 0u64..100, 0.01f64..0.3),
        |v| {
            let (levels, width, seed, margin) = *v;
            let n = Netlist::random(levels, width, seed);
            let model = DelayModel::default();
            let nominal = sta::run(&n, &extract::drawn(&n), &model, 500.0);
            let slow = sta::run(&n, &extract::corner(&n, margin), &model, 500.0);
            prop_assert!(slow.worst_slack <= nominal.worst_slack + 1e-9);
            prop_assert!(slow.leakage_na <= nominal.leakage_na + 1e-9);
            Ok(())
        },
    );
}

/// Arrival times are monotone along every fan-in edge (the DAG
/// propagation invariant).
#[test]
fn arrivals_monotone_along_edges() {
    check(
        "arrivals_monotone_along_edges",
        &cfg(),
        &(2usize..8, 2usize..8, 0u64..100),
        |v| {
            let (levels, width, seed) = *v;
            let n = Netlist::random(levels, width, seed);
            let model = DelayModel::default();
            let r = sta::run(&n, &extract::drawn(&n), &model, 500.0);
            for g in 0..n.len() {
                for &i in n.fanins(dfm_timing::GateId(g)) {
                    prop_assert!(r.arrival[i.0] <= r.arrival[g] + 1e-9);
                }
            }
            // The critical path ends at the worst output.
            let (worst_out, worst_slack) = r.output_slack[0];
            prop_assert_eq!(r.critical_path.last().copied(), Some(worst_out));
            prop_assert!((500.0 - r.arrival[worst_out.0] - worst_slack).abs() < 1e-9);
            Ok(())
        },
    );
}

/// The Spearman statistic is bounded and exactly 1 on identical
/// slack vectors.
#[test]
fn spearman_bounds() {
    check(
        "spearman_bounds",
        &cfg(),
        &dfm_check::vec(-100.0f64..100.0, 2..30),
        |values| {
            let rho = dfm_timing::spearman_rank_correlation(values, values);
            prop_assert!((rho - 1.0).abs() < 1e-9);
            let mut reversed = values.clone();
            reversed.reverse();
            let r2 = dfm_timing::spearman_rank_correlation(values, &reversed);
            prop_assert!((-1.0..=1.0).contains(&r2));
            Ok(())
        },
    );
}

/// The ECO never worsens the worst slack and never exceeds the drive
/// cap.
#[test]
fn eco_is_safe() {
    check(
        "eco_is_safe",
        &cfg(),
        &(3usize..7, 3usize..7, 0u64..50),
        |v| {
            let (levels, width, seed) = *v;
            let mut n = Netlist::random(levels, width, seed);
            let model = DelayModel::default();
            let lengths = extract::drawn(&n);
            let before = sta::run(&n, &lengths, &model, 400.0).worst_slack;
            let report = dfm_timing::eco::upsize(&mut n, &lengths, &model, 400.0, 6);
            let after = sta::run(&n, &lengths, &model, 400.0).worst_slack;
            prop_assert!(after >= before - 1e-9, "{before} -> {after}");
            prop_assert!(
                (after - report.slack_trace.last().copied().unwrap_or(before)).abs() < 1e-9
            );
            prop_assert!(n.gates().iter().all(|g| g.drive <= 4.0 + 1e-9));
            Ok(())
        },
    );
}
