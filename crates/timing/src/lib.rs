//! # dfm-timing — variability-aware static timing analysis
//!
//! The timing substrate for experiment E7 (Yang, Capodieci & Sylvester's
//! "advanced timing analysis based on post-OPC extraction of critical
//! dimensions", DAC 2005): does feeding *as-printed* gate lengths into
//! STA change sign-off compared to corner-based analysis?
//!
//! * [`Netlist`] — a placed combinational DAG with deterministic random
//!   generation,
//! * [`DelayModel`] — gate delay with CD (gate-length) dependence, Elmore
//!   wire delay from placement distance, and exponential leakage,
//! * [`sta`] — topological arrival/required/slack analysis with critical
//!   path extraction,
//! * [`extract`] — gate-length vectors: drawn, guard-band corner,
//!   Monte-Carlo, and **post-litho extraction** (simulating the synthetic
//!   poly layer and measuring each gate's printed CD),
//! * [`spearman_rank_correlation`] — the path-reordering statistic.
//!
//! ```
//! use dfm_timing::{extract, sta, DelayModel, Netlist};
//!
//! let netlist = Netlist::random(6, 8, 42);
//! let model = DelayModel::default();
//! let lengths = extract::drawn(&netlist);
//! let result = sta::run(&netlist, &lengths, &model, 500.0);
//! assert!(result.worst_slack < 500.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dfm_geom::Point;
use dfm_rand::Rng;

/// Index of a gate within a [`Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GateId(pub usize);

/// Logic gate flavours.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// Primary input (zero delay source).
    Input,
    /// Primary output (capture point).
    Output,
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// Buffer.
    Buf,
}

impl GateKind {
    /// Intrinsic delay multiplier relative to an inverter.
    fn intrinsic_factor(self) -> f64 {
        match self {
            GateKind::Input | GateKind::Output => 0.0,
            GateKind::Inv => 1.0,
            GateKind::Buf => 1.8,
            GateKind::Nand2 => 1.4,
            GateKind::Nor2 => 1.6,
        }
    }
}

/// One placed gate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gate {
    /// Gate flavour.
    pub kind: GateKind,
    /// Placement location (nm).
    pub location: Point,
    /// Drawn gate length (nm).
    pub drawn_l: i64,
    /// Drive strength multiplier (1.0 = unit drive); larger drive is
    /// faster into load but presents more input capacitance and leaks
    /// proportionally.
    pub drive: f64,
}

/// A placed combinational netlist (a DAG from inputs to outputs).
#[derive(Clone, Debug)]
pub struct Netlist {
    gates: Vec<Gate>,
    /// Fanin gate ids per gate.
    fanins: Vec<Vec<GateId>>,
    /// Fanout gate ids per gate (derived).
    fanouts: Vec<Vec<GateId>>,
}

impl Netlist {
    /// Generates a deterministic random netlist: `width` primary inputs,
    /// `levels` logic levels of random 1–2-input gates, `width` primary
    /// outputs. Gates are placed on a grid (one column per level) so wire
    /// lengths are physical.
    pub fn random(levels: usize, width: usize, seed: u64) -> Netlist {
        assert!(levels >= 1 && width >= 1, "need at least a 1x1 netlist");
        let mut rng = Rng::seed_from_u64(seed);
        let pitch_x: i64 = 2_000;
        let pitch_y: i64 = 1_200;
        let lnom: i64 = 60;

        let mut gates = Vec::new();
        let mut fanins: Vec<Vec<GateId>> = Vec::new();
        let mut prev_level: Vec<GateId> = Vec::new();

        for w in 0..width {
            gates.push(Gate {
                kind: GateKind::Input,
                location: Point::new(0, w as i64 * pitch_y),
                drawn_l: lnom,
                drive: 1.0,
            });
            fanins.push(Vec::new());
            prev_level.push(GateId(gates.len() - 1));
        }
        for level in 1..=levels {
            let mut this_level = Vec::new();
            for w in 0..width {
                let kind = match rng.range(0..4u32) {
                    0 => GateKind::Inv,
                    1 => GateKind::Nand2,
                    2 => GateKind::Nor2,
                    _ => GateKind::Buf,
                };
                let n_in = match kind {
                    GateKind::Nand2 | GateKind::Nor2 => 2,
                    _ => 1,
                };
                let mut ins = Vec::new();
                for _ in 0..n_in {
                    ins.push(prev_level[rng.range(0..prev_level.len())]);
                }
                gates.push(Gate {
                    kind,
                    location: Point::new(level as i64 * pitch_x, w as i64 * pitch_y),
                    drawn_l: lnom,
                    drive: 1.0,
                });
                fanins.push(ins);
                this_level.push(GateId(gates.len() - 1));
            }
            prev_level = this_level;
        }
        for w in 0..width {
            let src = prev_level[w % prev_level.len()];
            gates.push(Gate {
                kind: GateKind::Output,
                location: Point::new((levels as i64 + 1) * pitch_x, w as i64 * pitch_y),
                drawn_l: lnom,
                drive: 1.0,
            });
            fanins.push(vec![src]);
        }

        let mut fanouts: Vec<Vec<GateId>> = vec![Vec::new(); gates.len()];
        for (g, ins) in fanins.iter().enumerate() {
            for &i in ins {
                fanouts[i.0].push(GateId(g));
            }
        }
        Netlist { gates, fanins, fanouts }
    }

    /// The gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates (including inputs/outputs).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True for an empty netlist.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Mutable access to one gate (for ECO passes).
    pub fn gate_mut(&mut self, g: GateId) -> &mut Gate {
        &mut self.gates[g.0]
    }

    /// Fanins of a gate.
    pub fn fanins(&self, g: GateId) -> &[GateId] {
        &self.fanins[g.0]
    }

    /// Fanouts of a gate.
    pub fn fanouts(&self, g: GateId) -> &[GateId] {
        &self.fanouts[g.0]
    }

    /// Ids of the primary outputs.
    pub fn outputs(&self) -> Vec<GateId> {
        (0..self.gates.len())
            .filter(|&i| self.gates[i].kind == GateKind::Output)
            .map(GateId)
            .collect()
    }

    /// A topological order (inputs first). The generator builds gates in
    /// level order, so identity order is valid; asserted in debug builds.
    pub fn topological_order(&self) -> Vec<GateId> {
        debug_assert!(self
            .fanins
            .iter()
            .enumerate()
            .all(|(g, ins)| ins.iter().all(|i| i.0 < g)));
        (0..self.gates.len()).map(GateId).collect()
    }
}

/// Electrical model: CD-dependent gate delay, Elmore wires, leakage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayModel {
    /// Inverter FO1 intrinsic delay at nominal L, in ps.
    pub d0_ps: f64,
    /// Delay per fF of load, ps/fF.
    pub load_ps_per_ff: f64,
    /// Gate input capacitance, fF.
    pub input_cap_ff: f64,
    /// Wire capacitance per nm, fF/nm.
    pub wire_cap_ff_per_nm: f64,
    /// Wire resistance per nm, Ω/nm.
    pub wire_res_ohm_per_nm: f64,
    /// Nominal drawn gate length, nm.
    pub lnom: f64,
    /// Delay ∝ (L/Lnom)^alpha.
    pub alpha: f64,
    /// Leakage per gate at nominal L, nA.
    pub leak0_na: f64,
    /// Leakage e-folding length, nm (leakage = leak0·exp((Lnom−L)/s)).
    pub leak_s_nm: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel {
            d0_ps: 10.0,
            load_ps_per_ff: 6.0,
            input_cap_ff: 1.5,
            wire_cap_ff_per_nm: 0.0002,
            wire_res_ohm_per_nm: 0.02,
            lnom: 60.0,
            alpha: 1.3,
            leak0_na: 10.0,
            leak_s_nm: 12.0,
        }
    }
}

impl DelayModel {
    /// Delay of `gate` driving its fanout, given its effective gate
    /// length `l_nm` and total load capacitance `load_ff`, in ps.
    pub fn gate_delay(&self, kind: GateKind, l_nm: f64, load_ff: f64) -> f64 {
        self.gate_delay_driven(kind, l_nm, load_ff, 1.0)
    }

    /// Drive-aware delay: a gate of drive `k` drives external load `k`
    /// times harder but keeps its intrinsic delay.
    pub fn gate_delay_driven(&self, kind: GateKind, l_nm: f64, load_ff: f64, drive: f64) -> f64 {
        let f = kind.intrinsic_factor();
        if f == 0.0 {
            return 0.0;
        }
        let cd_factor = (l_nm / self.lnom).powf(self.alpha);
        f * cd_factor * (self.d0_ps + self.load_ps_per_ff * load_ff / drive.max(1e-6))
    }

    /// Elmore delay of a point-to-point wire of `len_nm`, terminated by
    /// `load_ff`, in ps (R·C/2 + R·C_load; fF·Ω = 10⁻³ ps).
    pub fn wire_delay(&self, len_nm: f64, load_ff: f64) -> f64 {
        let r = self.wire_res_ohm_per_nm * len_nm;
        let c = self.wire_cap_ff_per_nm * len_nm;
        (r * (c / 2.0 + load_ff)) * 1e-3
    }

    /// Leakage of one gate at effective length `l_nm`, in nA.
    pub fn gate_leakage(&self, kind: GateKind, l_nm: f64) -> f64 {
        if kind.intrinsic_factor() == 0.0 {
            return 0.0;
        }
        self.leak0_na * ((self.lnom - l_nm) / self.leak_s_nm).exp()
    }
}

/// Static timing analysis.
pub mod sta {
    use super::{DelayModel, GateId, Netlist};

    /// The result of one STA run.
    #[derive(Clone, Debug)]
    pub struct StaResult {
        /// Arrival time at each gate's output, ps.
        pub arrival: Vec<f64>,
        /// Slack at each primary output, ps (clock − arrival).
        pub output_slack: Vec<(GateId, f64)>,
        /// Worst (minimum) output slack, ps.
        pub worst_slack: f64,
        /// The critical path, inputs→output.
        pub critical_path: Vec<GateId>,
        /// Total leakage, nA.
        pub leakage_na: f64,
    }

    /// Runs STA with per-gate effective lengths `l_nm` (parallel to
    /// `netlist.gates()`), against `clock_ps`.
    ///
    /// # Panics
    ///
    /// Panics if `l_nm.len() != netlist.len()`.
    pub fn run(
        netlist: &Netlist,
        l_nm: &[f64],
        model: &DelayModel,
        clock_ps: f64,
    ) -> StaResult {
        assert_eq!(l_nm.len(), netlist.len(), "one length per gate");
        let n = netlist.len();
        let mut arrival = vec![0.0f64; n];
        let mut from: Vec<Option<GateId>> = vec![None; n];
        let mut leakage = 0.0;

        for gid in netlist.topological_order() {
            let g = gid.0;
            let gate = netlist.gates()[g];
            leakage += gate.drive * model.gate_leakage(gate.kind, l_nm[g]);
            // Load on this gate: fanout input caps (scaled by fanout
            // drive) + fanout wire caps.
            let mut load = 0.0;
            for &o in netlist.fanouts(gid) {
                let sink = netlist.gates()[o.0];
                let dist = gate.location.manhattan_distance(sink.location) as f64;
                load += model.input_cap_ff * sink.drive + model.wire_cap_ff_per_nm * dist;
            }
            // Arrival at this gate's output = max over fanins of
            // (fanin arrival + wire to here) + own gate delay.
            let mut best = 0.0f64;
            for &i in netlist.fanins(gid) {
                let dist = netlist.gates()[i.0]
                    .location
                    .manhattan_distance(gate.location) as f64;
                let t = arrival[i.0] + model.wire_delay(dist, model.input_cap_ff);
                if t >= best {
                    best = t;
                    from[g] = Some(i);
                }
            }
            arrival[g] = best + model.gate_delay_driven(gate.kind, l_nm[g], load, gate.drive);
        }

        let mut output_slack: Vec<(GateId, f64)> = netlist
            .outputs()
            .into_iter()
            .map(|o| (o, clock_ps - arrival[o.0]))
            .collect();
        output_slack.sort_by(|a, b| a.1.total_cmp(&b.1));
        let worst_slack = output_slack
            .first()
            .map(|&(_, s)| s)
            .unwrap_or(clock_ps);

        // Trace the critical path back from the worst output.
        let mut critical_path = Vec::new();
        if let Some(&(worst_out, _)) = output_slack.first() {
            let mut cur = Some(worst_out);
            while let Some(g) = cur {
                critical_path.push(g);
                cur = from[g.0];
            }
            critical_path.reverse();
        }

        StaResult {
            arrival,
            output_slack,
            worst_slack,
            critical_path,
            leakage_na: leakage,
        }
    }

    /// Convenience: the slack vector ordered by output id (for rank
    /// comparisons between runs).
    pub fn slack_by_output(result: &StaResult) -> Vec<f64> {
        let mut v = result.output_slack.clone();
        v.sort_by_key(|&(o, _)| o);
        v.into_iter().map(|(_, s)| s).collect()
    }

}


/// Timing ECO: greedy gate upsizing on the critical path.
///
/// A classic post-route engineering-change-order loop: while the worst
/// slack improves, upsize the slowest logic gate on the critical path
/// (drive ×1.5, capped at ×4). Upsizing speeds the gate into its load
/// but raises its input capacitance (loading its drivers) and leakage —
/// the power/timing trade the panel's designer members lived in.
pub mod eco {
    use super::{sta, DelayModel, GateId, GateKind, Netlist};

    /// The record of one ECO run.
    #[derive(Clone, Debug)]
    pub struct EcoReport {
        /// Worst slack after each accepted upsize, starting with the
        /// baseline (length = accepted upsizes + 1).
        pub slack_trace: Vec<f64>,
        /// The gates upsized, in order.
        pub upsized: Vec<GateId>,
        /// Leakage before and after, nA.
        pub leakage_before_na: f64,
        /// Leakage after, nA.
        pub leakage_after_na: f64,
    }

    impl EcoReport {
        /// Total worst-slack improvement, ps.
        pub fn improvement_ps(&self) -> f64 {
            match (self.slack_trace.first(), self.slack_trace.last()) {
                (Some(a), Some(b)) => b - a,
                _ => 0.0,
            }
        }
    }

    /// Runs the greedy upsizing loop, mutating the netlist's drives.
    pub fn upsize(
        netlist: &mut Netlist,
        l_nm: &[f64],
        model: &DelayModel,
        clock_ps: f64,
        max_steps: usize,
    ) -> EcoReport {
        let baseline = sta::run(netlist, l_nm, model, clock_ps);
        let mut slack_trace = vec![baseline.worst_slack];
        let mut upsized = Vec::new();
        let leakage_before_na = baseline.leakage_na;
        let mut leakage_after_na = baseline.leakage_na;

        'steps: for _ in 0..max_steps {
            let result = sta::run(netlist, l_nm, model, clock_ps);
            // Candidates: logic gates on the critical path with sizing
            // headroom, most promising (largest stage delay) first. A
            // stage may be wire-dominated — upsizing would not help and
            // can hurt by loading the driver — so each candidate is
            // trial-evaluated and reverted unless the worst slack
            // actually improves.
            let mut candidates: Vec<(GateId, f64)> = result
                .critical_path
                .windows(2)
                .filter_map(|w| {
                    let g = w[1];
                    let gate = netlist.gates()[g.0];
                    if matches!(gate.kind, GateKind::Input | GateKind::Output)
                        || gate.drive >= 4.0
                    {
                        return None;
                    }
                    Some((g, result.arrival[g.0] - result.arrival[w[0].0]))
                })
                .collect();
            candidates.sort_by(|a, b| b.1.total_cmp(&a.1));

            for (g, _) in candidates {
                let old_drive = netlist.gates()[g.0].drive;
                netlist.gate_mut(g).drive = (old_drive * 1.5).min(4.0);
                let trial = sta::run(netlist, l_nm, model, clock_ps);
                if trial.worst_slack > slack_trace.last().copied().unwrap_or(f64::MIN) + 1e-9 {
                    slack_trace.push(trial.worst_slack);
                    upsized.push(g);
                    leakage_after_na = trial.leakage_na;
                    continue 'steps;
                }
                netlist.gate_mut(g).drive = old_drive;
            }
            break; // no candidate improved the worst slack
        }
        EcoReport { slack_trace, upsized, leakage_before_na, leakage_after_na }
    }
}

/// Gate-length extraction strategies.
pub mod extract {
    use super::{GateKind, Netlist};
    use dfm_geom::{Point, Rect, Region};
    use dfm_litho::{metrics, Condition, LithoSimulator};
    use dfm_rand::{Rng, Seed};

    /// Drawn (nominal) lengths.
    pub fn drawn(netlist: &Netlist) -> Vec<f64> {
        netlist.gates().iter().map(|g| g.drawn_l as f64).collect()
    }

    /// Guard-band corner: every gate at `(1 + margin)` times drawn
    /// (slow corner for positive margin).
    pub fn corner(netlist: &Netlist, margin: f64) -> Vec<f64> {
        netlist
            .gates()
            .iter()
            .map(|g| g.drawn_l as f64 * (1.0 + margin))
            .collect()
    }

    /// Independent Gaussian CD variation with relative sigma.
    ///
    /// Gates are drawn in parallel over fixed 64-gate chunks, each
    /// chunk on its own stream derived as `Seed(seed).derive(chunk)` —
    /// so the draw for every gate depends only on `seed` and the gate's
    /// position, never on the thread count.
    pub fn monte_carlo(netlist: &Netlist, rel_sigma: f64, seed: u64) -> Vec<f64> {
        const GATE_CHUNK: usize = 64;
        let chunks = dfm_par::par_chunks(netlist.gates(), GATE_CHUNK, |ci, gates| {
            let mut rng = Rng::from_seed(Seed(seed).derive(ci as u64));
            gates
                .iter()
                .map(|g| (g.drawn_l as f64 * (1.0 + rel_sigma * rng.standard_normal())).max(1.0))
                .collect::<Vec<f64>>()
        });
        chunks.into_iter().flatten().collect()
    }

    /// Builds the synthetic poly layer of a netlist: one vertical poly
    /// gate stripe per logic gate at its placement, plus proximity dummy
    /// context derived from the gate's level parity (making some gates
    /// dense and some isolated — the source of systematic CD spread).
    pub fn poly_layer(netlist: &Netlist) -> Region {
        let mut rects = Vec::new();
        let height = 400i64;
        for (i, g) in netlist.gates().iter().enumerate() {
            if matches!(g.kind, GateKind::Input | GateKind::Output) {
                continue;
            }
            let c = g.location;
            let l = g.drawn_l;
            rects.push(Rect::new(c.x - l / 2, c.y, c.x + l / 2, c.y + height));
            // Alternate environments: even gates get dense neighbours at
            // a 2L pitch (close enough for optical coupling).
            if i % 2 == 0 {
                for k in [-2i64, -1, 1, 2] {
                    let nx = c.x + k * 2 * l;
                    rects.push(Rect::new(nx - l / 2, c.y, nx + l / 2, c.y + height));
                }
            }
        }
        Region::from_rects(rects)
    }

    /// Post-litho extraction: simulates the synthetic poly layer around
    /// each gate (a fine-pixel window per gate, so sub-nm CD bias is
    /// resolved) and measures the as-printed CD at mid-height. Gates
    /// whose image vanished are floored at 40% of drawn (a broken, fast
    /// and leaky device).
    pub fn post_litho(
        netlist: &Netlist,
        sim: &LithoSimulator,
        cond: Condition,
    ) -> Vec<f64> {
        let poly = poly_layer(netlist);
        // Per-gate fine simulation: override the pixel to 2 nm so CD
        // bias of a few nm survives quantisation. Each gate's window is
        // simulated independently, so the per-gate map runs in parallel
        // (`DFM_THREADS`) with results in gate order.
        let fine = LithoSimulator { pixel_nm: 2, ..sim.clone() };
        dfm_par::par_map(netlist.gates(), |_, g| {
            if matches!(g.kind, GateKind::Input | GateKind::Output) {
                return g.drawn_l as f64;
            }
            let probe = Point::new(g.location.x, g.location.y + 200);
            let window = Rect::centered_at(probe, 12 * g.drawn_l, 6 * g.drawn_l);
            let printed = fine.printed_in_window(&poly, window, cond);
            match metrics::cd_horizontal(&printed, probe) {
                Some(cd) => cd as f64,
                None => g.drawn_l as f64 * 0.4,
            }
        })
    }
}

/// Spearman rank correlation between two equally-long samples
/// (1 = same ordering, −1 = reversed). Ties broken by index.
pub fn spearman_rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "samples must have equal length");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]).then(i.cmp(&j)));
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let ra = rank(a);
    let rb = rank(b);
    let d2: f64 = ra
        .iter()
        .zip(&rb)
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    1.0 - 6.0 * d2 / (n as f64 * ((n * n - 1) as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlist_generation_is_deterministic_dag() {
        let a = Netlist::random(5, 6, 3);
        let b = Netlist::random(5, 6, 3);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 6 + 5 * 6 + 6);
        // DAG property: all fanins precede.
        for (g, _) in a.gates().iter().enumerate() {
            for &i in a.fanins(GateId(g)) {
                assert!(i.0 < g);
            }
        }
        assert_eq!(a.outputs().len(), 6);
    }

    #[test]
    fn sta_produces_positive_arrivals_and_path() {
        let n = Netlist::random(6, 8, 42);
        let model = DelayModel::default();
        let r = sta::run(&n, &extract::drawn(&n), &model, 500.0);
        assert!(r.worst_slack < 500.0);
        assert!(r.critical_path.len() >= 3);
        // Path starts at an input, ends at an output.
        assert_eq!(n.gates()[r.critical_path[0].0].kind, GateKind::Input);
        assert_eq!(
            n.gates()[r.critical_path.last().expect("non-empty").0].kind,
            GateKind::Output
        );
        // Arrivals are monotone along the critical path.
        for w in r.critical_path.windows(2) {
            assert!(r.arrival[w[0].0] <= r.arrival[w[1].0]);
        }
    }

    #[test]
    fn longer_gates_are_slower_and_less_leaky() {
        let n = Netlist::random(5, 6, 7);
        let model = DelayModel::default();
        let nominal = sta::run(&n, &extract::drawn(&n), &model, 1000.0);
        let slow = sta::run(&n, &extract::corner(&n, 0.10), &model, 1000.0);
        let fast = sta::run(&n, &extract::corner(&n, -0.10), &model, 1000.0);
        assert!(slow.worst_slack < nominal.worst_slack);
        assert!(fast.worst_slack > nominal.worst_slack);
        assert!(slow.leakage_na < nominal.leakage_na);
        assert!(fast.leakage_na > nominal.leakage_na);
    }

    #[test]
    fn monte_carlo_varies_but_is_seeded() {
        let n = Netlist::random(4, 5, 1);
        let a = extract::monte_carlo(&n, 0.05, 9);
        let b = extract::monte_carlo(&n, 0.05, 9);
        let c = extract::monte_carlo(&n, 0.05, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let drawn = extract::drawn(&n);
        assert!(a.iter().zip(&drawn).any(|(x, y)| (x - y).abs() > 0.1));
    }

    #[test]
    fn post_litho_extraction_differs_from_drawn() {
        let n = Netlist::random(4, 4, 11);
        // σ₀ ≈ 34 nm puts 60 nm gates near the printability cliff, the
        // regime where post-OPC extraction matters (Yang et al. 2005).
        let sim = dfm_litho::LithoSimulator::for_feature_size(75);
        let lengths = extract::post_litho(&n, &sim, dfm_litho::Condition::nominal());
        let drawn = extract::drawn(&n);
        assert_eq!(lengths.len(), drawn.len());
        // Litho bias shifts at least some gates.
        assert!(lengths
            .iter()
            .zip(&drawn)
            .any(|(a, b)| (a - b).abs() >= 1.0));
        // All lengths physical.
        assert!(lengths.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn dense_and_iso_gates_print_differently() {
        let n = Netlist::random(4, 6, 13);
        let sim = dfm_litho::LithoSimulator::for_feature_size(75);
        let lengths = extract::post_litho(&n, &sim, dfm_litho::Condition::nominal());
        // Even-indexed logic gates have dense context, odd are isolated:
        // their systematic CDs must differ on average.
        let mut dense = Vec::new();
        let mut iso = Vec::new();
        for (i, g) in n.gates().iter().enumerate() {
            if matches!(g.kind, GateKind::Input | GateKind::Output) {
                continue;
            }
            if i % 2 == 0 {
                dense.push(lengths[i]);
            } else {
                iso.push(lengths[i]);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            (mean(&dense) - mean(&iso)).abs() > 0.5,
            "dense {} vs iso {}",
            mean(&dense),
            mean(&iso)
        );
    }

    #[test]
    fn eco_upsizing_improves_worst_slack() {
        let mut n = Netlist::random(10, 8, 17);
        let model = DelayModel::default();
        let lengths = extract::drawn(&n);
        let report = eco::upsize(&mut n, &lengths, &model, 500.0, 12);
        assert!(
            report.improvement_ps() > 0.0,
            "ECO gained nothing: {:?}",
            report.slack_trace
        );
        assert!(!report.upsized.is_empty());
        // Slack trace is strictly improving.
        for w in report.slack_trace.windows(2) {
            assert!(w[1] > w[0]);
        }
        // The speed came at a leakage price.
        assert!(report.leakage_after_na > report.leakage_before_na);
    }

    #[test]
    fn eco_respects_drive_cap() {
        let mut n = Netlist::random(6, 4, 23);
        let model = DelayModel::default();
        let lengths = extract::drawn(&n);
        let _ = eco::upsize(&mut n, &lengths, &model, 500.0, 100);
        assert!(n.gates().iter().all(|g| g.drive <= 4.0 + 1e-9));
    }

    #[test]
    fn drive_speeds_gate_into_load() {
        let m = DelayModel::default();
        let slow = m.gate_delay_driven(GateKind::Inv, 60.0, 10.0, 1.0);
        let fast = m.gate_delay_driven(GateKind::Inv, 60.0, 10.0, 2.0);
        assert!(fast < slow);
    }

    #[test]
    fn spearman_basics() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((spearman_rank_correlation(&a, &a) - 1.0).abs() < 1e-12);
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman_rank_correlation(&a, &rev) + 1.0).abs() < 1e-12);
        let other = [1.0, 3.0, 2.0, 4.0];
        let rho = spearman_rank_correlation(&a, &other);
        assert!(rho > 0.0 && rho < 1.0);
    }

    #[test]
    fn delay_model_units_sane() {
        let m = DelayModel::default();
        // FO1 inverter delay near d0 + load term.
        let d = m.gate_delay(GateKind::Inv, 60.0, 1.5);
        assert!((15.0..25.0).contains(&d), "delay {d}");
        // A 100 µm wire has non-trivial but bounded delay.
        let w = m.wire_delay(100_000.0, 1.5);
        assert!(w > 1.0 && w < 100.0, "wire delay {w}");
    }
}
