//! Dummy metal fill for CMP density uniformity (experiment E9).

use crate::{AppliedResult, DfmTechnique};
use dfm_drc::{density_map, density_ppm};
use dfm_geom::{Coord, Rect, Region};
use dfm_layout::{layers, FlatLayout, Layer, Technology};

/// Inserts dummy fill squares into under-dense density windows.
///
/// Fill shapes are placed on a fixed grid inside the empty space of each
/// failing window, keeping `keepout` clearance from functional metal
/// (fill-to-metal spacing) and from each other (grid pitch). Fill is
/// written to the layer's fill datatype (`FILL_M1`/`FILL_M2`) so
/// downstream tools can distinguish it, and counted together with the
/// functional metal for density.
#[derive(Clone, Copy, Debug)]
pub struct MetalFill {
    /// Fill square edge length.
    pub fill_size: Coord,
    /// Grid pitch between fill squares.
    pub fill_pitch: Coord,
    /// Clearance between fill and functional metal.
    pub keepout: Coord,
    /// The metal layers to equalise.
    pub metal_layers: [Layer; 2],
}

impl MetalFill {
    /// Default configuration for a technology: fill squares of 4× the
    /// minimum width at 2× spacing, one minimum-space-plus-margin away
    /// from real metal.
    pub fn from_context(ctx: &crate::EvaluationContext) -> Self {
        let w = ctx.tech.rules(layers::METAL1).min_width;
        MetalFill {
            fill_size: 4 * w,
            fill_pitch: 6 * w,
            keepout: 2 * ctx.tech.rules(layers::METAL1).min_space,
            metal_layers: [layers::METAL1, layers::METAL2],
        }
    }

    fn fill_layer_of(metal: Layer) -> Layer {
        if metal == layers::METAL2 {
            layers::FILL_M2
        } else {
            layers::FILL_M1
        }
    }
}

impl DfmTechnique for MetalFill {
    fn name(&self) -> &str {
        "metal-fill"
    }

    fn apply(&self, flat: &FlatLayout, tech: &Technology) -> AppliedResult {
        let mut out = flat.clone();
        let mut notes = Vec::new();
        let mut edits = 0usize;
        let extent = flat.bbox();
        if extent.is_empty() {
            return AppliedResult::unchanged(out);
        }
        for metal in self.metal_layers {
            let region = flat.region(metal);
            if region.is_empty() {
                // A layer that is not used at all needs no fill.
                continue;
            }
            let window = tech.density_window;
            let dmap = density_map(&region, extent, window);
            // Same half-to-even ppm quantisation as the DRC Density
            // rule, so fill and DRC agree on which windows fail.
            let floor_ppm = density_ppm(tech.min_density);
            let underdense: Vec<Rect> = dmap
                .iter()
                .filter(|&&(_, d)| density_ppm(d) < floor_ppm)
                .map(|&(w, _)| w)
                .collect();
            if underdense.is_empty() {
                continue;
            }
            let keepout_region = region.bloated(self.keepout);
            let mut fills: Vec<Rect> = Vec::new();
            let target_zone = Region::from_rects(underdense.iter().copied());
            let zone_bbox = target_zone.bbox();
            // Fill candidates on a global grid (windows overlap; a global
            // grid avoids double placement).
            let mut y = zone_bbox.y0 - zone_bbox.y0.rem_euclid(self.fill_pitch);
            while y < zone_bbox.y1 {
                let mut x = zone_bbox.x0 - zone_bbox.x0.rem_euclid(self.fill_pitch);
                while x < zone_bbox.x1 {
                    let f = Rect::new(x, y, x + self.fill_size, y + self.fill_size);
                    let fr = Region::from_rect(f);
                    if fr.difference(&target_zone).is_empty()
                        && fr.intersection(&keepout_region).is_empty()
                    {
                        fills.push(f);
                    }
                    x += self.fill_pitch;
                }
                y += self.fill_pitch;
            }
            if fills.is_empty() {
                continue;
            }
            edits += fills.len();
            let fill_region = Region::from_rects(fills);
            notes.push(format!(
                "{metal}: {} fill shapes, +{} nm²",
                fill_region.rect_count(),
                fill_region.area()
            ));
            out.set_region(Self::fill_layer_of(metal), fill_region);
        }
        if edits == 0 {
            return AppliedResult::unchanged(out);
        }
        AppliedResult { layout: out, notes, edits }
    }
}

/// Density statistics helper shared with experiment E9: the minimum and
/// maximum window density of `metal ∪ fill`.
pub fn density_extremes(
    flat: &FlatLayout,
    metal: Layer,
    fill: Layer,
    window: Coord,
) -> (f64, f64) {
    let combined = flat.region(metal).union(&flat.region(fill));
    let dmap = density_map(&combined, flat.bbox(), window);
    let min = dmap.iter().map(|&(_, d)| d).fold(1.0f64, f64::min);
    let max = dmap.iter().map(|&(_, d)| d).fold(0.0f64, f64::max);
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_layout::{Cell, Library};

    /// A layout with one dense corner and lots of empty space.
    fn lopsided_flat(tech: &Technology) -> FlatLayout {
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        let w = tech.rules(layers::METAL1).min_width;
        // Dense block in the lower-left corner.
        for i in 0..40 {
            c.add_rect(
                layers::METAL1,
                Rect::new(0, i * 3 * w, 20_000, i * 3 * w + 2 * w),
            );
        }
        // A marker far away so the extent is large and mostly empty.
        c.add_rect(layers::METAL1, Rect::new(59_000, 59_000, 60_000, 59_090));
        let id = lib.add_cell(c).expect("add");
        lib.flatten(id).expect("flatten")
    }

    #[test]
    fn fill_raises_minimum_density() {
        let tech = Technology::n65();
        let flat = lopsided_flat(&tech);
        let ctx = crate::EvaluationContext::for_technology(tech.clone());
        let filler = MetalFill::from_context(&ctx);
        let r = filler.apply(&flat, &tech);
        assert!(r.edits > 0, "{:?}", r.notes);
        let (min_before, _) =
            density_extremes(&flat, layers::METAL1, layers::FILL_M1, tech.density_window);
        let (min_after, max_after) =
            density_extremes(&r.layout, layers::METAL1, layers::FILL_M1, tech.density_window);
        assert!(min_after > min_before, "min density {min_before} -> {min_after}");
        assert!(max_after <= 1.0);
    }

    #[test]
    fn fill_keeps_clear_of_metal() {
        let tech = Technology::n65();
        let flat = lopsided_flat(&tech);
        let ctx = crate::EvaluationContext::for_technology(tech.clone());
        let filler = MetalFill::from_context(&ctx);
        let r = filler.apply(&flat, &tech);
        let fill = r.layout.region(layers::FILL_M1);
        let metal = r.layout.region(layers::METAL1);
        // Fill at keepout distance: bloating metal by keepout−1 must not
        // touch fill.
        let danger = metal.bloated(filler.keepout - 1);
        assert!(fill.intersection(&danger).is_empty());
    }

    #[test]
    fn fill_is_on_fill_datatype_not_metal() {
        let tech = Technology::n65();
        let flat = lopsided_flat(&tech);
        let ctx = crate::EvaluationContext::for_technology(tech.clone());
        let r = MetalFill::from_context(&ctx).apply(&flat, &tech);
        // Functional metal unchanged.
        assert_eq!(
            r.layout.region(layers::METAL1).area(),
            flat.region(layers::METAL1).area()
        );
        assert!(r.layout.region(layers::FILL_M1).area() > 0);
    }

    #[test]
    fn uniform_dense_layout_needs_no_fill() {
        let tech = Technology::n65();
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        let w = tech.rules(layers::METAL1).min_width;
        // Uniform 50% density everywhere.
        for i in 0..200 {
            c.add_rect(layers::METAL1, Rect::new(0, i * 2 * w, 40_000, i * 2 * w + w));
        }
        let id = lib.add_cell(c).expect("add");
        let flat = lib.flatten(id).expect("flatten");
        let ctx = crate::EvaluationContext::for_technology(tech.clone());
        let r = MetalFill::from_context(&ctx).apply(&flat, &tech);
        assert_eq!(r.edits, 0);
    }
}
