//! The hit-or-hype evaluator (experiment E8).

use crate::DfmTechnique;
use dfm_layout::{layers, FlatLayout, Technology};
use dfm_yield::{critical_area, model, via_model, DefectModel};
use std::fmt;
use std::time::Instant;

/// Everything the evaluator needs to price a technique.
#[derive(Clone, Debug)]
pub struct EvaluationContext {
    /// Ground rules.
    pub tech: Technology,
    /// Random-defect model.
    pub defects: DefectModel,
    /// Per-cut via failure probability.
    pub via_fail_prob: f64,
    /// Negative-binomial clustering parameter (`None` = Poisson).
    pub cluster_alpha: Option<f64>,
    /// Distance below which via cuts count as redundant partners.
    pub via_pair_distance: i64,
}

impl EvaluationContext {
    /// Defaults for a technology: defects at half the minimum width with
    /// a production-like density, 0.1 ppm via failures, Poisson yield.
    pub fn for_technology(tech: Technology) -> Self {
        let x0 = tech.rules(layers::METAL1).min_width / 2;
        EvaluationContext {
            via_pair_distance: tech.via_space * 2,
            tech,
            defects: DefectModel::new(x0, 2000.0),
            via_fail_prob: 1e-7,
            cluster_alpha: None,
        }
    }

    /// Predicted functional yield of a layout: metal critical-area yield
    /// (shorts + opens on M1/M2) times via-connection yield.
    pub fn predicted_yield(&self, flat: &FlatLayout) -> YieldBreakdown {
        let mut metal_ca = 0.0;
        for metal in [layers::METAL1, layers::METAL2] {
            // Fill shapes count for shorts against functional metal, so
            // include the fill datatype in the short analysis.
            let fill = if metal == layers::METAL2 {
                layers::FILL_M2
            } else {
                layers::FILL_M1
            };
            let combined = flat.region(metal).union(&flat.region(fill));
            let ca = critical_area::analyze(&combined, &self.defects);
            metal_ca += ca.total_ca_nm2();
        }
        let metal_yield = match self.cluster_alpha {
            None => model::poisson_yield(metal_ca, self.defects.d0_per_cm2),
            Some(alpha) => {
                model::negative_binomial_yield(metal_ca, self.defects.d0_per_cm2, alpha)
            }
        };
        let stats = via_model::classify(&flat.region(layers::VIA1), self.via_pair_distance);
        let via_yield = via_model::via_yield(stats, self.via_fail_prob);
        YieldBreakdown {
            metal_ca_nm2: metal_ca,
            metal_yield,
            via_stats: stats,
            via_yield,
        }
    }
}

/// The components of a yield prediction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct YieldBreakdown {
    /// Total metal critical area, nm².
    pub metal_ca_nm2: f64,
    /// Metal random-defect yield.
    pub metal_yield: f64,
    /// Via redundancy census.
    pub via_stats: via_model::ViaStats,
    /// Via-connection yield.
    pub via_yield: f64,
}

impl YieldBreakdown {
    /// Combined yield.
    pub fn total(&self) -> f64 {
        self.metal_yield * self.via_yield
    }
}

/// The panel's answer for one technique.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitOrHype {
    /// Measurable yield gain at acceptable cost.
    Hit,
    /// Real but small benefit, or benefit with a heavy price.
    Marginal,
    /// No measurable benefit.
    Hype,
}

impl fmt::Display for HitOrHype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HitOrHype::Hit => write!(f, "HIT"),
            HitOrHype::Marginal => write!(f, "MARGINAL"),
            HitOrHype::Hype => write!(f, "HYPE"),
        }
    }
}

/// The full evaluation record of one technique on one design.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Technique name.
    pub technique: String,
    /// Yield before.
    pub yield_before: f64,
    /// Yield after.
    pub yield_after: f64,
    /// Drawn area before (all layers), nm².
    pub area_before: i128,
    /// Drawn area after, nm².
    pub area_after: i128,
    /// Shape count before (mask-complexity proxy).
    pub shapes_before: usize,
    /// Shape count after.
    pub shapes_after: usize,
    /// Edits the technique reported.
    pub edits: usize,
    /// Wall-clock runtime of the technique, milliseconds.
    pub runtime_ms: f64,
    /// Technique notes.
    pub notes: Vec<String>,
}

impl Verdict {
    /// Absolute yield gain in percentage points.
    pub fn yield_gain_pp(&self) -> f64 {
        (self.yield_after - self.yield_before) * 100.0
    }

    /// Area cost in percent.
    pub fn area_cost_percent(&self) -> f64 {
        if self.area_before == 0 {
            return 0.0;
        }
        (self.area_after - self.area_before) as f64 / self.area_before as f64 * 100.0
    }

    /// Return on investment: yield points gained per percent of area
    /// added (∞-safe: area-free gains return the plain gain × 10).
    pub fn roi(&self) -> f64 {
        let gain = self.yield_gain_pp();
        let cost = self.area_cost_percent();
        if cost.abs() < 1e-6 {
            gain * 10.0
        } else {
            gain / cost
        }
    }

    /// The panel verdict: a **hit** needs ≥ 0.1 yield points at positive
    /// ROI; ≥ 0.01 points is **marginal**; anything less is **hype**.
    pub fn hit_or_hype(&self) -> HitOrHype {
        let gain = self.yield_gain_pp();
        if gain >= 0.1 && self.roi() > 0.0 {
            HitOrHype::Hit
        } else if gain >= 0.01 {
            HitOrHype::Marginal
        } else {
            HitOrHype::Hype
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} yield {:.4} -> {:.4} (+{:.3}pp)  area {:+.2}%  edits {:<6} {:>8.1} ms  {}",
            self.technique,
            self.yield_before,
            self.yield_after,
            self.yield_gain_pp(),
            self.area_cost_percent(),
            self.edits,
            self.runtime_ms,
            self.hit_or_hype()
        )
    }
}

fn total_area(flat: &FlatLayout) -> i128 {
    flat.total_area()
}

fn total_shapes(flat: &FlatLayout) -> usize {
    flat.rect_count()
}

/// Applies `technique` to `flat` and measures benefit and cost.
pub fn evaluate(
    technique: &dyn DfmTechnique,
    flat: &FlatLayout,
    ctx: &EvaluationContext,
) -> Verdict {
    let before = ctx.predicted_yield(flat);
    let start = Instant::now();
    let applied = technique.apply(flat, &ctx.tech);
    let runtime_ms = start.elapsed().as_secs_f64() * 1e3;
    let after = ctx.predicted_yield(&applied.layout);
    Verdict {
        technique: technique.name().to_string(),
        yield_before: before.total(),
        yield_after: after.total(),
        area_before: total_area(flat),
        area_after: total_area(&applied.layout),
        shapes_before: total_shapes(flat),
        shapes_after: total_shapes(&applied.layout),
        edits: applied.edits,
        runtime_ms,
        notes: applied.notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RedundantViaInsertion, WireWidening};
    use dfm_layout::generate;

    fn setup() -> (EvaluationContext, FlatLayout) {
        let tech = Technology::n65();
        let lib = generate::routed_block(&tech, generate::RoutedBlockParams::default(), 31);
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let mut ctx = EvaluationContext::for_technology(tech);
        // A harsher environment so yield deltas are visible on a small
        // test block.
        ctx.defects = DefectModel::new(ctx.defects.x0, 50_000.0);
        ctx.via_fail_prob = 1e-4;
        (ctx, flat)
    }

    #[test]
    fn yield_breakdown_is_sane() {
        let (ctx, flat) = setup();
        let y = ctx.predicted_yield(&flat);
        assert!(y.total() > 0.0 && y.total() < 1.0);
        assert!(y.metal_ca_nm2 > 0.0);
        assert!(y.via_stats.connections() > 0);
    }

    #[test]
    fn redundant_via_is_a_hit_at_high_fail_rates() {
        let (ctx, flat) = setup();
        let rvi = RedundantViaInsertion::for_technology(&ctx.tech);
        let verdict = evaluate(&rvi, &flat, &ctx);
        assert!(verdict.yield_after > verdict.yield_before, "{verdict}");
        assert!(verdict.edits > 0);
        assert_ne!(verdict.hit_or_hype(), HitOrHype::Hype);
    }

    #[test]
    fn widening_trades_area_for_yield() {
        let (ctx, flat) = setup();
        let w = WireWidening::from_context(&ctx);
        let verdict = evaluate(&w, &flat, &ctx);
        assert!(verdict.area_after > verdict.area_before);
        // Open CA falls; short CA may rise a little — net must not be
        // catastrophic.
        assert!(verdict.yield_after > verdict.yield_before - 0.05, "{verdict}");
    }

    #[test]
    fn verdict_arithmetic() {
        let v = Verdict {
            technique: "x".into(),
            yield_before: 0.90,
            yield_after: 0.95,
            area_before: 100,
            area_after: 102,
            shapes_before: 10,
            shapes_after: 12,
            edits: 5,
            runtime_ms: 1.0,
            notes: vec![],
        };
        assert!((v.yield_gain_pp() - 5.0).abs() < 1e-9);
        assert!((v.area_cost_percent() - 2.0).abs() < 1e-9);
        assert!((v.roi() - 2.5).abs() < 1e-9);
        assert_eq!(v.hit_or_hype(), HitOrHype::Hit);

        let hype = Verdict { yield_after: 0.90, ..v.clone() };
        assert_eq!(hype.hit_or_hype(), HitOrHype::Hype);
    }

    #[test]
    fn verdict_display_contains_verdict() {
        let (ctx, flat) = setup();
        let rvi = RedundantViaInsertion::for_technology(&ctx.tech);
        let verdict = evaluate(&rvi, &flat, &ctx);
        let text = verdict.to_string();
        assert!(text.contains("redundant-via"));
        assert!(text.contains("yield"));
    }
}
