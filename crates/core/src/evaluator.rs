//! The hit-or-hype evaluator (experiment E8).

use crate::DfmTechnique;
use dfm_layout::{layers, FlatLayout, LayoutView, Technology};
use dfm_yield::{critical_area, model, via_model, DefectModel};
use std::fmt;
use std::time::Instant;

/// Everything the evaluator needs to price a technique.
#[derive(Clone, Debug)]
pub struct EvaluationContext {
    /// Ground rules.
    pub tech: Technology,
    /// Random-defect model.
    pub defects: DefectModel,
    /// Per-cut via failure probability.
    pub via_fail_prob: f64,
    /// Negative-binomial clustering parameter (`None` = Poisson).
    pub cluster_alpha: Option<f64>,
    /// Distance below which via cuts count as redundant partners.
    pub via_pair_distance: i64,
}

impl EvaluationContext {
    /// Starts a builder seeded with the defaults for a technology (see
    /// [`EvaluationContextBuilder`]).
    pub fn builder(tech: Technology) -> EvaluationContextBuilder {
        EvaluationContextBuilder::new(tech)
    }

    /// Defaults for a technology: defects at half the minimum width with
    /// a production-like density, 0.1 ppm via failures, Poisson yield.
    /// Equivalent to `EvaluationContext::builder(tech).build()`.
    pub fn for_technology(tech: Technology) -> Self {
        EvaluationContextBuilder::new(tech).build()
    }

    /// Predicted functional yield of a layout: metal critical-area yield
    /// (shorts + opens on M1/M2) times via-connection yield. Accepts any
    /// [`LayoutView`] — the whole chip or a single tile view.
    pub fn predicted_yield(&self, layout: &impl LayoutView) -> YieldBreakdown {
        let mut metal_ca = 0.0;
        for metal in [layers::METAL1, layers::METAL2] {
            // Fill shapes count for shorts against functional metal, so
            // include the fill datatype in the short analysis.
            let fill = if metal == layers::METAL2 {
                layers::FILL_M2
            } else {
                layers::FILL_M1
            };
            let combined = layout.region(metal).union(&layout.region(fill));
            let ca = critical_area::analyze(&combined, &self.defects);
            metal_ca += ca.total_ca_nm2();
        }
        let metal_yield = match self.cluster_alpha {
            None => model::poisson_yield(metal_ca, self.defects.d0_per_cm2),
            Some(alpha) => {
                model::negative_binomial_yield(metal_ca, self.defects.d0_per_cm2, alpha)
            }
        };
        let stats = via_model::classify(&layout.region(layers::VIA1), self.via_pair_distance);
        let via_yield = via_model::via_yield(stats, self.via_fail_prob);
        YieldBreakdown {
            metal_ca_nm2: metal_ca,
            metal_yield,
            via_stats: stats,
            via_yield,
        }
    }
}

/// Builder for [`EvaluationContext`]: starts from the technology
/// defaults and overrides piecemeal.
///
/// ```
/// use dfm_core::EvaluationContext;
/// use dfm_layout::Technology;
/// let ctx = EvaluationContext::builder(Technology::n65())
///     .via_fail_prob(1e-5)
///     .cluster_alpha(2.0)
///     .build();
/// assert_eq!(ctx.cluster_alpha, Some(2.0));
/// ```
#[derive(Clone, Debug)]
pub struct EvaluationContextBuilder {
    ctx: EvaluationContext,
}

impl EvaluationContextBuilder {
    fn new(tech: Technology) -> Self {
        let x0 = tech.rules(layers::METAL1).min_width / 2;
        EvaluationContextBuilder {
            ctx: EvaluationContext {
                via_pair_distance: tech.via_space * 2,
                tech,
                defects: DefectModel::new(x0, 2000.0),
                via_fail_prob: 1e-7,
                cluster_alpha: None,
            },
        }
    }

    /// Replaces the random-defect model.
    pub fn defects(mut self, defects: DefectModel) -> Self {
        self.ctx.defects = defects;
        self
    }

    /// Sets the per-cut via failure probability.
    pub fn via_fail_prob(mut self, p: f64) -> Self {
        self.ctx.via_fail_prob = p;
        self
    }

    /// Switches the metal yield model to negative-binomial clustering.
    pub fn cluster_alpha(mut self, alpha: f64) -> Self {
        self.ctx.cluster_alpha = Some(alpha);
        self
    }

    /// Sets the distance below which via cuts count as redundant
    /// partners.
    pub fn via_pair_distance(mut self, d: i64) -> Self {
        self.ctx.via_pair_distance = d;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> EvaluationContext {
        self.ctx
    }
}

/// The components of a yield prediction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct YieldBreakdown {
    /// Total metal critical area, nm².
    pub metal_ca_nm2: f64,
    /// Metal random-defect yield.
    pub metal_yield: f64,
    /// Via redundancy census.
    pub via_stats: via_model::ViaStats,
    /// Via-connection yield.
    pub via_yield: f64,
}

impl YieldBreakdown {
    /// Combined yield.
    pub fn total(&self) -> f64 {
        self.metal_yield * self.via_yield
    }
}

/// The panel's answer for one technique.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitOrHype {
    /// Measurable yield gain at acceptable cost.
    Hit,
    /// Real but small benefit, or benefit with a heavy price.
    Marginal,
    /// No measurable benefit.
    Hype,
}

impl fmt::Display for HitOrHype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HitOrHype::Hit => write!(f, "HIT"),
            HitOrHype::Marginal => write!(f, "MARGINAL"),
            HitOrHype::Hype => write!(f, "HYPE"),
        }
    }
}

/// The full evaluation record of one technique on one design.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Technique name.
    pub technique: String,
    /// Yield before.
    pub yield_before: f64,
    /// Yield after.
    pub yield_after: f64,
    /// Drawn area before (all layers), nm².
    pub area_before: i128,
    /// Drawn area after, nm².
    pub area_after: i128,
    /// Shape count before (mask-complexity proxy).
    pub shapes_before: usize,
    /// Shape count after.
    pub shapes_after: usize,
    /// Edits the technique reported.
    pub edits: usize,
    /// Wall-clock runtime of the technique, milliseconds.
    pub runtime_ms: f64,
    /// Technique notes.
    pub notes: Vec<String>,
}

impl Verdict {
    /// Absolute yield gain in percentage points.
    pub fn yield_gain_pp(&self) -> f64 {
        (self.yield_after - self.yield_before) * 100.0
    }

    /// Area cost in percent.
    pub fn area_cost_percent(&self) -> f64 {
        if self.area_before == 0 {
            return 0.0;
        }
        (self.area_after - self.area_before) as f64 / self.area_before as f64 * 100.0
    }

    /// Return on investment: yield points gained per percent of area
    /// added (∞-safe: area-free gains return the plain gain × 10).
    pub fn roi(&self) -> f64 {
        let gain = self.yield_gain_pp();
        let cost = self.area_cost_percent();
        if cost.abs() < 1e-6 {
            gain * 10.0
        } else {
            gain / cost
        }
    }

    /// The panel verdict: a **hit** needs ≥ 0.1 yield points at positive
    /// ROI; ≥ 0.01 points is **marginal**; anything less is **hype**.
    pub fn hit_or_hype(&self) -> HitOrHype {
        let gain = self.yield_gain_pp();
        if gain >= 0.1 && self.roi() > 0.0 {
            HitOrHype::Hit
        } else if gain >= 0.01 {
            HitOrHype::Marginal
        } else {
            HitOrHype::Hype
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} yield {:.4} -> {:.4} (+{:.3}pp)  area {:+.2}%  edits {:<6} {:>8.1} ms  {}",
            self.technique,
            self.yield_before,
            self.yield_after,
            self.yield_gain_pp(),
            self.area_cost_percent(),
            self.edits,
            self.runtime_ms,
            self.hit_or_hype()
        )
    }
}

fn total_area(flat: &FlatLayout) -> i128 {
    flat.total_area()
}

fn total_shapes(flat: &FlatLayout) -> usize {
    flat.rect_count()
}

/// Applies `technique` to `flat` and measures benefit and cost.
pub fn evaluate(
    technique: &dyn DfmTechnique,
    flat: &FlatLayout,
    ctx: &EvaluationContext,
) -> Verdict {
    let before = ctx.predicted_yield(flat);
    let start = Instant::now();
    let applied = technique.apply(flat, &ctx.tech);
    let runtime_ms = start.elapsed().as_secs_f64() * 1e3;
    let after = ctx.predicted_yield(&applied.layout);
    Verdict {
        technique: technique.name().to_string(),
        yield_before: before.total(),
        yield_after: after.total(),
        area_before: total_area(flat),
        area_after: total_area(&applied.layout),
        shapes_before: total_shapes(flat),
        shapes_after: total_shapes(&applied.layout),
        edits: applied.edits,
        runtime_ms,
        notes: applied.notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RedundantViaInsertion, WireWidening};
    use dfm_layout::generate;

    fn setup() -> (EvaluationContext, FlatLayout) {
        let tech = Technology::n65();
        let lib = generate::routed_block(&tech, generate::RoutedBlockParams::default(), 31);
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let mut ctx = EvaluationContext::for_technology(tech);
        // A harsher environment so yield deltas are visible on a small
        // test block.
        ctx.defects = DefectModel::new(ctx.defects.x0, 50_000.0);
        ctx.via_fail_prob = 1e-4;
        (ctx, flat)
    }

    #[test]
    fn yield_breakdown_is_sane() {
        let (ctx, flat) = setup();
        let y = ctx.predicted_yield(&flat);
        assert!(y.total() > 0.0 && y.total() < 1.0);
        assert!(y.metal_ca_nm2 > 0.0);
        assert!(y.via_stats.connections() > 0);
    }

    #[test]
    fn builder_matches_for_technology_and_overrides() {
        let tech = Technology::n65();
        let a = EvaluationContext::for_technology(tech.clone());
        let b = EvaluationContext::builder(tech.clone()).build();
        assert_eq!(a.defects, b.defects);
        assert_eq!(a.via_fail_prob, b.via_fail_prob);
        assert_eq!(a.cluster_alpha, b.cluster_alpha);
        assert_eq!(a.via_pair_distance, b.via_pair_distance);
        let c = EvaluationContext::builder(tech)
            .defects(DefectModel::new(40, 9000.0))
            .via_fail_prob(1e-5)
            .cluster_alpha(2.0)
            .via_pair_distance(77)
            .build();
        assert_eq!(c.defects, DefectModel::new(40, 9000.0));
        assert_eq!(c.via_fail_prob, 1e-5);
        assert_eq!(c.cluster_alpha, Some(2.0));
        assert_eq!(c.via_pair_distance, 77);
    }

    #[test]
    fn predicted_yield_accepts_tile_views() {
        // A whole-layout tile view sees the same geometry as the flat
        // layout, so the breakdown must be identical.
        let (ctx, flat) = setup();
        let cfg = dfm_layout::TilingConfig::builder()
            .tile(10_000_000)
            .halo(0)
            .build()
            .expect("config");
        let tiled = dfm_layout::TiledLayout::from_flat(flat.clone(), cfg);
        assert_eq!(tiled.tile_count(), 1);
        let view = tiled.view(0, 0);
        let whole = ctx.predicted_yield(&view);
        let reference = ctx.predicted_yield(&flat);
        assert_eq!(whole.metal_ca_nm2.to_bits(), reference.metal_ca_nm2.to_bits());
        assert_eq!(whole.via_stats, reference.via_stats);
    }

    #[test]
    fn redundant_via_is_a_hit_at_high_fail_rates() {
        let (ctx, flat) = setup();
        let rvi = RedundantViaInsertion::for_technology(&ctx.tech);
        let verdict = evaluate(&rvi, &flat, &ctx);
        assert!(verdict.yield_after > verdict.yield_before, "{verdict}");
        assert!(verdict.edits > 0);
        assert_ne!(verdict.hit_or_hype(), HitOrHype::Hype);
    }

    #[test]
    fn widening_trades_area_for_yield() {
        let (ctx, flat) = setup();
        let w = WireWidening::from_context(&ctx);
        let verdict = evaluate(&w, &flat, &ctx);
        assert!(verdict.area_after > verdict.area_before);
        // Open CA falls; short CA may rise a little — net must not be
        // catastrophic.
        assert!(verdict.yield_after > verdict.yield_before - 0.05, "{verdict}");
    }

    #[test]
    fn verdict_arithmetic() {
        let v = Verdict {
            technique: "x".into(),
            yield_before: 0.90,
            yield_after: 0.95,
            area_before: 100,
            area_after: 102,
            shapes_before: 10,
            shapes_after: 12,
            edits: 5,
            runtime_ms: 1.0,
            notes: vec![],
        };
        assert!((v.yield_gain_pp() - 5.0).abs() < 1e-9);
        assert!((v.area_cost_percent() - 2.0).abs() < 1e-9);
        assert!((v.roi() - 2.5).abs() < 1e-9);
        assert_eq!(v.hit_or_hype(), HitOrHype::Hit);

        let hype = Verdict { yield_after: 0.90, ..v.clone() };
        assert_eq!(hype.hit_or_hype(), HitOrHype::Hype);
    }

    #[test]
    fn verdict_display_contains_verdict() {
        let (ctx, flat) = setup();
        let rvi = RedundantViaInsertion::for_technology(&ctx.tech);
        let verdict = evaluate(&rvi, &flat, &ctx);
        let text = verdict.to_string();
        assert!(text.contains("redundant-via"));
        assert!(text.contains("yield"));
    }
}
