//! Wire widening: trade spacing headroom for open-circuit robustness
//! (experiment E1).

use crate::{AppliedResult, DfmTechnique};
use dfm_geom::Coord;
use dfm_layout::{layers, FlatLayout, Layer, Technology};

/// Widens every wire symmetrically by `delta` per side wherever doing so
/// keeps the layer's minimum spacing intact.
///
/// Implementation is purely morphological and therefore exact:
///
/// 1. `narrow_gap_space` = the space inside gaps narrower than
///    `min_space + 2·delta` (computed by a morphological closing) — this
///    space must not receive any growth,
/// 2. `widened = layer ∪ (bloat(layer, delta) ∖ layer ∖ narrow_gap_space)`.
///
/// Growth is suppressed on *both* sides of a tight gap (conservative —
/// integer morphology cannot separate `min_space + 2·delta` from one
/// less, so the exactly-equal case also stays untouched; gaps strictly
/// wider widen down to at least `min_space + 1`). Because the transform
/// is purely additive, vias stay covered.
#[derive(Clone, Copy, Debug)]
pub struct WireWidening {
    /// Per-side growth in dbu.
    pub delta: Coord,
    /// Layers to widen.
    pub metal_layers: [Layer; 2],
}

impl WireWidening {
    /// Default: widen M1/M2 by a quarter of the minimum width.
    pub fn from_context(ctx: &crate::EvaluationContext) -> Self {
        WireWidening {
            delta: ctx.tech.rules(layers::METAL1).min_width / 4,
            metal_layers: [layers::METAL1, layers::METAL2],
        }
    }
}

impl DfmTechnique for WireWidening {
    fn name(&self) -> &str {
        "wire-widening"
    }

    fn apply(&self, flat: &FlatLayout, tech: &Technology) -> AppliedResult {
        let mut out = flat.clone();
        let mut notes = Vec::new();
        let mut edits = 0usize;
        for layer in self.metal_layers {
            let region = flat.region(layer);
            if region.is_empty() {
                continue;
            }
            let min_space = tech.rules(layer).min_space;
            let h = (min_space + 2 * self.delta + 1) / 2;
            let narrow_gap_space = region.closed(h).difference(&region);
            // Suppress growth inside narrow gaps *and* within `delta` of
            // them: without the margin, growth lobes wrapping around wire
            // ends would face each other across the protected gap.
            let forbidden = narrow_gap_space.bloated(self.delta);
            let mut growth = region
                .bloated(self.delta)
                .difference(&region)
                .difference(&forbidden);
            if growth.is_empty() {
                continue;
            }
            // The morphological pre-filter handles straight runs exactly,
            // but partial suppression leaves stair-step corners that can
            // face nearby geometry at sub-minimum spacing, and trimming
            // those can in turn slice growth into sub-minimum-width
            // fingers. Trim growth around every residual spacing *and*
            // width violation until clean (growth area strictly
            // decreases, so this terminates).
            let min_width = tech.rules(layer).min_width;
            let mut widened = region.union(&growth);
            for _ in 0..8 {
                let mut viols = dfm_drc::spacing_violations(&widened, min_space);
                viols.extend(dfm_drc::width_violations(&widened, min_width));
                let near_growth: Vec<dfm_geom::Rect> = viols
                    .iter()
                    .map(|&(b, _)| b)
                    .filter(|b| !growth.clipped(b.expanded(1)).is_empty())
                    .collect();
                if near_growth.is_empty() {
                    break;
                }
                let trim = dfm_geom::Region::from_rects(
                    near_growth.iter().map(|b| b.expanded(min_space)),
                );
                growth = growth.difference(&trim);
                widened = region.union(&growth);
            }
            if growth.is_empty() {
                continue;
            }
            edits += growth.rect_count();
            notes.push(format!(
                "{layer}: +{} nm² ({:.2}% area growth)",
                growth.area(),
                100.0 * growth.area() as f64 / region.area().max(1) as f64
            ));
            out.set_region(layer, widened);
        }
        if edits == 0 {
            return AppliedResult::unchanged(out);
        }
        AppliedResult { layout: out, notes, edits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::{Rect, Region};
    use dfm_layout::{Cell, Library};

    fn flat_with_m1(rects: &[Rect]) -> FlatLayout {
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        for &r in rects {
            c.add_rect(layers::METAL1, r);
        }
        let id = lib.add_cell(c).expect("add");
        lib.flatten(id).expect("flatten")
    }

    fn widener(delta: i64) -> WireWidening {
        WireWidening { delta, metal_layers: [layers::METAL1, layers::METAL2] }
    }

    #[test]
    fn isolated_wire_widens_fully() {
        let tech = Technology::n65();
        let flat = flat_with_m1(&[Rect::new(0, 0, 4000, 90)]);
        let r = widener(20).apply(&flat, &tech);
        let widened = r.layout.region(layers::METAL1);
        assert_eq!(widened, Region::from_rect(Rect::new(-20, -20, 4020, 110)));
    }

    #[test]
    fn tight_pair_does_not_widen_into_gap() {
        let tech = Technology::n65(); // min space 90
        // Gap of exactly 90: no headroom at all.
        let flat = flat_with_m1(&[
            Rect::new(0, 0, 4000, 90),
            Rect::new(0, 180, 4000, 270),
        ]);
        let r = widener(20).apply(&flat, &tech);
        let widened = r.layout.region(layers::METAL1);
        // Outer edges grew, the 90 gap is untouched.
        let viols = dfm_drc::spacing_violations(&widened, tech.rules(layers::METAL1).min_space);
        assert!(viols.is_empty(), "{viols:?}");
        assert!(widened.bbox().y0 < 0);
        assert!(widened.bbox().y1 > 270);
        // Gap interior still empty.
        assert!(!widened.contains_point(dfm_geom::Point::new(2000, 135)));
    }

    #[test]
    fn roomy_pair_widens_down_to_min_space() {
        let tech = Technology::n65();
        // Gap of 131 > 90 + 2*20: widening by 20 leaves 91 ≥ min space.
        let flat = flat_with_m1(&[
            Rect::new(0, 0, 4000, 90),
            Rect::new(0, 221, 4000, 311),
        ]);
        let r = widener(20).apply(&flat, &tech);
        let widened = r.layout.region(layers::METAL1);
        let viols = dfm_drc::spacing_violations(&widened, tech.rules(layers::METAL1).min_space);
        assert!(viols.is_empty(), "{viols:?}");
        // Both inner edges moved by 20: gap is now 91.
        assert!(widened.contains_point(dfm_geom::Point::new(2000, 105)));
        assert!(widened.contains_point(dfm_geom::Point::new(2000, 205)));
        assert!(!widened.contains_point(dfm_geom::Point::new(2000, 155)));
    }

    #[test]
    fn widening_reduces_open_critical_area() {
        let tech = Technology::n65();
        let lib = dfm_layout::generate::routed_block(
            &tech,
            dfm_layout::generate::RoutedBlockParams::default(),
            21,
        );
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let defects = dfm_yield::DefectModel::new(tech.rules(layers::METAL1).min_width / 2, 1.0);
        let before = dfm_yield::critical_area::analyze(&flat.region(layers::METAL1), &defects);
        let w = WireWidening {
            delta: tech.rules(layers::METAL1).min_width / 4,
            metal_layers: [layers::METAL1, layers::METAL2],
        };
        let r = w.apply(&flat, &tech);
        let after =
            dfm_yield::critical_area::analyze(&r.layout.region(layers::METAL1), &defects);
        assert!(
            after.open_ca_nm2 < before.open_ca_nm2,
            "open CA {} -> {}",
            before.open_ca_nm2,
            after.open_ca_nm2
        );
    }

    #[test]
    fn widened_routed_block_stays_drc_clean() {
        let tech = Technology::n65();
        let lib = dfm_layout::generate::routed_block(
            &tech,
            dfm_layout::generate::RoutedBlockParams::dense(),
            22,
        );
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let w = WireWidening {
            delta: tech.rules(layers::METAL1).min_width / 4,
            metal_layers: [layers::METAL1, layers::METAL2],
        };
        let r = w.apply(&flat, &tech);
        for layer in [layers::METAL1, layers::METAL2] {
            let viols = dfm_drc::spacing_violations(
                &r.layout.region(layer),
                tech.rules(layer).min_space,
            );
            assert!(viols.is_empty(), "{layer}: {} violations", viols.len());
        }
    }

    #[test]
    fn additive_transform_preserves_via_coverage() {
        let tech = Technology::n65();
        let lib = dfm_layout::generate::routed_block(
            &tech,
            dfm_layout::generate::RoutedBlockParams::default(),
            23,
        );
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let w = WireWidening {
            delta: 20,
            metal_layers: [layers::METAL1, layers::METAL2],
        };
        let r = w.apply(&flat, &tech);
        let before_m1 = flat.region(layers::METAL1);
        let after_m1 = r.layout.region(layers::METAL1);
        assert!(before_m1.difference(&after_m1).is_empty(), "widening must be additive");
    }
}

