//! Redundant-via insertion (experiment E2).

use crate::{AppliedResult, DfmTechnique};
use dfm_geom::{GridIndex, Rect, Region, Searcher, Vector};
use dfm_layout::{layers, FlatLayout, Technology};
use dfm_yield::via_model;

/// Doubles single vias where a second cut fits.
///
/// For every single (non-redundant) via the inserter tries the four
/// axis directions at the minimum via spacing. A candidate is accepted
/// in one of two modes:
///
/// 1. **free** — the candidate's landing pad already lies inside both
///    connected metals, or
/// 2. **pad-extension** — landing pads are added to both metal layers,
///    provided the new pads keep clear (by the metal spacing rule) of
///    every *other* metal component.
///
/// The via spacing rule against all existing and newly-added cuts is
/// enforced in both modes.
#[derive(Clone, Copy, Debug)]
pub struct RedundantViaInsertion {
    /// Distance below which two cuts count as one redundant connection.
    pub pair_distance: i64,
    /// Allow mode 2 (metal pad extensions).
    pub allow_pad_extension: bool,
}

impl RedundantViaInsertion {
    /// Default configuration for a technology.
    pub fn for_technology(tech: &Technology) -> Self {
        RedundantViaInsertion {
            pair_distance: tech.via_space * 2,
            allow_pad_extension: true,
        }
    }
}

impl DfmTechnique for RedundantViaInsertion {
    fn name(&self) -> &str {
        "redundant-via"
    }

    fn apply(&self, flat: &FlatLayout, tech: &Technology) -> AppliedResult {
        let vias = flat.region(layers::VIA1);
        let m1 = flat.region(layers::METAL1);
        let m2 = flat.region(layers::METAL2);
        if vias.is_empty() {
            return AppliedResult::unchanged(flat.clone());
        }

        let metal_space = tech.rules(layers::METAL1).min_space;
        let step = tech.via_size + tech.via_space;

        // Pre-compute metal components for the pad-extension clearance
        // check: a new pad may only approach the component it lands on.
        let m1_comps = m1.connected_components();
        let m2_comps = m2.connected_components();
        let comp_index = |comps: &[Region]| {
            let mut ix: GridIndex<usize> = GridIndex::new(4 * step.max(64));
            for (ci, c) in comps.iter().enumerate() {
                for r in c.rects() {
                    ix.insert(*r, ci);
                }
            }
            ix
        };
        let m1_ix = comp_index(&m1_comps);
        let m2_ix = comp_index(&m2_comps);
        // Reusable searchers: these indexes are immutable for the rest
        // of the pass (cut/pad indexes grow, so they use cold queries).
        let mut m1_s = m1_ix.searcher();
        let mut m2_s = m2_ix.searcher();
        let owner = |s: &mut Searcher<'_, usize>, probe: Rect| -> Option<usize> {
            s.query(probe).first().map(|&&ci| ci)
        };

        // Existing + added cuts, indexed for spacing checks.
        let mut cut_index: GridIndex<()> = GridIndex::new(4 * step.max(64));
        for r in vias.rects() {
            cut_index.insert(*r, ());
        }
        // Added pads, indexed so extensions keep spacing to each other.
        let mut pad_index: GridIndex<()> = GridIndex::new(4 * step.max(64));

        let mut new_cuts: Vec<Rect> = Vec::new();
        let mut new_m1: Vec<Rect> = Vec::new();
        let mut new_m2: Vec<Rect> = Vec::new();
        let mut free = 0usize;
        let mut extended = 0usize;

        // Work through the singles only.
        let stats_before = via_model::classify(&vias, self.pair_distance);
        let _ = stats_before;
        let singles: Vec<Rect> = singles_of(&vias, self.pair_distance);

        'via: for v in singles {
            let c = v.center();
            let own1 = owner(&mut m1_s, v);
            let own2 = owner(&mut m2_s, v);
            for dir in [
                Vector::new(step, 0),
                Vector::new(-step, 0),
                Vector::new(0, step),
                Vector::new(0, -step),
            ] {
                let nc = c + dir;
                let cut = tech.via_rect_at(nc);
                let pad = tech.via_pad_at(nc);
                // The new cut must stay out of every *other* connection's
                // pairing range (so groups never merge), which also
                // guarantees the via spacing rule.
                let clear = cut_index
                    .query_with_rects(cut.expanded(self.pair_distance))
                    .iter()
                    .all(|(r, _)| {
                        if *r == v {
                            return true; // its own partner
                        }
                        let (dx, dy) = r.gap(&cut);
                        dx.max(dy) > self.pair_distance
                    });
                if !clear {
                    continue;
                }
                let pad_region = Region::from_rect(pad);
                let free_fit = pad_region.difference(&m1).is_empty()
                    && pad_region.difference(&m2).is_empty();
                if free_fit {
                    new_cuts.push(cut);
                    cut_index.insert(cut, ());
                    free += 1;
                    continue 'via;
                }
                if !self.allow_pad_extension {
                    continue;
                }
                // Pad extension: a strap joining the original via's pad
                // to the new cut's pad (a detached pad would form a
                // sub-minimum notch against the original pad's tabs).
                // The strap must keep metal spacing to every component
                // other than the via's own, and to every pad added so
                // far.
                if own1.is_none() || own2.is_none() {
                    continue;
                }
                let strap = tech.via_pad_at(c).bounding_union(&pad);
                let danger = strap.expanded(metal_space);
                let m1_ok = m1_s
                    .query(danger)
                    .iter()
                    .all(|&&ci| Some(ci) == own1);
                let m2_ok = m2_s
                    .query(danger)
                    .iter()
                    .all(|&&ci| Some(ci) == own2);
                let pads_ok = pad_index.query(danger).is_empty();
                if m1_ok && m2_ok && pads_ok {
                    new_cuts.push(cut);
                    cut_index.insert(cut, ());
                    pad_index.insert(strap, ());
                    new_m1.push(strap);
                    new_m2.push(strap);
                    extended += 1;
                    continue 'via;
                }
            }
        }

        if new_cuts.is_empty() {
            return AppliedResult::unchanged(flat.clone());
        }
        let mut out = flat.clone();
        out.set_region(
            layers::VIA1,
            vias.union(&Region::from_rects(new_cuts.clone())),
        );
        if !new_m1.is_empty() {
            out.set_region(layers::METAL1, m1.union(&Region::from_rects(new_m1)));
            out.set_region(layers::METAL2, m2.union(&Region::from_rects(new_m2)));
        }
        AppliedResult {
            layout: out,
            notes: vec![format!(
                "doubled {} vias ({} free, {} with pad extension)",
                free + extended,
                free,
                extended
            )],
            edits: new_cuts.len(),
        }
    }
}

/// The via cuts that have no partner within `pair_distance`.
fn singles_of(vias: &Region, pair_distance: i64) -> Vec<Rect> {
    let rects = vias.rects();
    let mut ix: GridIndex<usize> = GridIndex::new(4 * pair_distance.max(64));
    for (i, r) in rects.iter().enumerate() {
        ix.insert(*r, i);
    }
    let mut searcher = ix.searcher();
    rects
        .iter()
        .enumerate()
        .filter(|(i, r)| {
            !searcher.query_with_rects(r.expanded(pair_distance)).iter().any(|(o, &j)| {
                if j == *i {
                    return false;
                }
                let (dx, dy) = r.gap(o);
                dx.max(dy) <= pair_distance
            })
        })
        .map(|(_, r)| *r)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_layout::{generate, Cell, Library};

    fn routed_flat(seed: u64) -> (Technology, FlatLayout) {
        let tech = Technology::n65();
        let lib = generate::routed_block(&tech, generate::RoutedBlockParams::default(), seed);
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        (tech, flat)
    }

    #[test]
    fn doubles_vias_on_routed_block() {
        let (tech, flat) = routed_flat(5);
        let before = via_model::classify(&flat.region(layers::VIA1), tech.via_space * 2);
        let rvi = RedundantViaInsertion::for_technology(&tech);
        let result = rvi.apply(&flat, &tech);
        let after = via_model::classify(&result.layout.region(layers::VIA1), tech.via_space * 2);
        assert!(result.edits > 0, "{:?}", result.notes);
        assert!(after.redundant > before.redundant);
        assert!(after.redundancy_rate() > before.redundancy_rate());
        // Connections are conserved: every original connection remains.
        assert_eq!(after.connections(), before.connections());
    }

    #[test]
    fn inserted_vias_keep_spacing_rule() {
        let (tech, flat) = routed_flat(6);
        let rvi = RedundantViaInsertion::for_technology(&tech);
        let result = rvi.apply(&flat, &tech);
        let vias = result.layout.region(layers::VIA1);
        let viols = dfm_drc::spacing_violations(&vias, tech.via_space);
        assert!(viols.is_empty(), "via spacing violations: {viols:?}");
    }

    #[test]
    fn inserted_vias_are_enclosed() {
        let (tech, flat) = routed_flat(7);
        let rvi = RedundantViaInsertion::for_technology(&tech);
        let result = rvi.apply(&flat, &tech);
        let vias = result.layout.region(layers::VIA1);
        let m1 = result.layout.region(layers::METAL1);
        let m2 = result.layout.region(layers::METAL2);
        let v1 = dfm_drc::check::enclosure_violations(&vias, &m1, tech.via_enclosure);
        let v2 = dfm_drc::check::enclosure_violations(&vias, &m2, tech.via_enclosure);
        assert!(v1.is_empty(), "M1 enclosure violations: {v1:?}");
        assert!(v2.is_empty(), "M2 enclosure violations: {v2:?}");
    }

    #[test]
    fn pad_extension_respects_metal_spacing() {
        let (tech, flat) = routed_flat(8);
        let rvi = RedundantViaInsertion::for_technology(&tech);
        let result = rvi.apply(&flat, &tech);
        for layer in [layers::METAL1, layers::METAL2] {
            let region = result.layout.region(layer);
            let viols = dfm_drc::spacing_violations(&region, tech.rules(layer).min_space);
            assert!(viols.is_empty(), "{layer} spacing violations: {}", viols.len());
        }
    }

    #[test]
    fn no_vias_is_a_noop() {
        let tech = Technology::n65();
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        c.add_rect(layers::METAL1, dfm_geom::Rect::new(0, 0, 1000, 90));
        let id = lib.add_cell(c).expect("add");
        let flat = lib.flatten(id).expect("flatten");
        let rvi = RedundantViaInsertion::for_technology(&tech);
        let r = rvi.apply(&flat, &tech);
        assert_eq!(r.edits, 0);
    }

    #[test]
    fn deterministic() {
        let (tech, flat) = routed_flat(9);
        let rvi = RedundantViaInsertion::for_technology(&tech);
        let a = rvi.apply(&flat, &tech);
        let b = rvi.apply(&flat, &tech);
        assert_eq!(
            a.layout.region(layers::VIA1).area(),
            b.layout.region(layers::VIA1).area()
        );
        assert_eq!(a.edits, b.edits);
    }
}
