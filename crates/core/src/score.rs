//! The composite DFM scorecard.
//!
//! The companion 2012 publication proposed scoring layouts on a 0–1
//! manufacturability scale so design teams can compare variants without
//! reading raw violation lists (the "0.66 → 0.78" improvement motif).
//! This module aggregates the workspace's analyses into one card:
//! hard-rule cleanliness, recommended-rule compliance, density
//! uniformity, critical-area yield, and via redundancy.

use crate::EvaluationContext;
use dfm_drc::{recommended::RecommendedDeck, DrcEngine, RuleDeck};
use dfm_layout::{layers, FlatLayout};
use dfm_yield::{critical_area, model, via_model};
use std::fmt;

/// Component scores, each in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DfmScorecard {
    /// Hard-rule cleanliness: `1/(1 + violations)`.
    pub drc_cleanliness: f64,
    /// Recommended-rule compliance (weighted mean over the deck).
    pub recommended_compliance: f64,
    /// Density uniformity: `1 − mean(max − min window density)` over the
    /// metal layers.
    pub density_uniformity: f64,
    /// Random-defect robustness: the predicted metal yield under the
    /// context's defect model.
    pub defect_robustness: f64,
    /// Fraction of via connections with redundancy.
    pub via_redundancy: f64,
}

impl DfmScorecard {
    /// The weighted composite (cleanliness 0.3, compliance 0.2,
    /// uniformity 0.1, robustness 0.3, redundancy 0.1).
    pub fn composite(&self) -> f64 {
        0.30 * self.drc_cleanliness
            + 0.20 * self.recommended_compliance
            + 0.10 * self.density_uniformity
            + 0.30 * self.defect_robustness
            + 0.10 * self.via_redundancy
    }
}

impl fmt::Display for DfmScorecard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DFM scorecard: {:.3}", self.composite())?;
        writeln!(f, "  hard-rule cleanliness   {:.3}", self.drc_cleanliness)?;
        writeln!(f, "  recommended compliance  {:.3}", self.recommended_compliance)?;
        writeln!(f, "  density uniformity      {:.3}", self.density_uniformity)?;
        writeln!(f, "  defect robustness       {:.3}", self.defect_robustness)?;
        write!(f, "  via redundancy          {:.3}", self.via_redundancy)
    }
}

/// Scores a layout under the evaluation context.
pub fn scorecard(flat: &FlatLayout, ctx: &EvaluationContext) -> DfmScorecard {
    let tech = &ctx.tech;

    // Hard rules (density windows excluded here — scored separately).
    let deck: RuleDeck = RuleDeck::for_technology(tech)
        .rules()
        .iter()
        .filter(|r| !matches!(r, dfm_drc::Rule::Density { .. }))
        .cloned()
        .collect();
    let violations = DrcEngine::new(&deck).run(flat).violation_count();
    let drc_cleanliness = 1.0 / (1.0 + violations as f64);

    let recommended_compliance = RecommendedDeck::for_technology(tech)
        .compliance(flat)
        .composite();

    // Density uniformity over the metal layers (fill counts).
    let mut spread_sum = 0.0;
    let mut spread_n = 0usize;
    for (metal, fill) in [
        (layers::METAL1, layers::FILL_M1),
        (layers::METAL2, layers::FILL_M2),
    ] {
        if flat.region(metal).is_empty() {
            continue;
        }
        let (min, max) =
            crate::fill_density_extremes(flat, metal, fill, tech.density_window);
        spread_sum += (max - min).clamp(0.0, 1.0);
        spread_n += 1;
    }
    let density_uniformity = if spread_n == 0 {
        1.0
    } else {
        1.0 - spread_sum / spread_n as f64
    };

    // Defect robustness: metal CA yield under the context's model.
    let mut ca = 0.0;
    for metal in [layers::METAL1, layers::METAL2] {
        ca += critical_area::analyze(&flat.region(metal), &ctx.defects).total_ca_nm2();
    }
    let defect_robustness = model::poisson_yield(ca, ctx.defects.d0_per_cm2);

    let stats = via_model::classify(&flat.region(layers::VIA1), ctx.via_pair_distance);
    let via_redundancy = stats.redundancy_rate();

    DfmScorecard {
        drc_cleanliness,
        recommended_compliance,
        density_uniformity,
        defect_robustness,
        via_redundancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfmTechnique, RedundantViaInsertion, WireWidening};
    use dfm_layout::{generate, Technology};
    use dfm_yield::DefectModel;

    fn setup() -> (EvaluationContext, FlatLayout) {
        let tech = Technology::n65();
        let lib = generate::routed_block(
            &tech,
            generate::RoutedBlockParams {
                width: 15_000,
                height: 15_000,
                ..Default::default()
            },
            61,
        );
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let mut ctx = EvaluationContext::for_technology(tech);
        ctx.defects = DefectModel::new(ctx.defects.x0, 50_000.0);
        (ctx, flat)
    }

    #[test]
    fn scores_are_in_range() {
        let (ctx, flat) = setup();
        let card = scorecard(&flat, &ctx);
        for s in [
            card.drc_cleanliness,
            card.recommended_compliance,
            card.density_uniformity,
            card.defect_robustness,
            card.via_redundancy,
            card.composite(),
        ] {
            assert!((0.0..=1.0).contains(&s), "{card}");
        }
        // The generated block is hard-rule clean.
        assert_eq!(card.drc_cleanliness, 1.0);
    }

    #[test]
    fn dfm_techniques_raise_the_composite() {
        let (ctx, flat) = setup();
        let before = scorecard(&flat, &ctx);
        let improved = WireWidening::from_context(&ctx)
            .apply(
                &RedundantViaInsertion::for_technology(&ctx.tech)
                    .apply(&flat, &ctx.tech)
                    .layout,
                &ctx.tech,
            )
            .layout;
        let after = scorecard(&improved, &ctx);
        assert!(
            after.composite() > before.composite(),
            "{:.4} -> {:.4}",
            before.composite(),
            after.composite()
        );
        assert!(after.via_redundancy > before.via_redundancy);
        assert!(after.defect_robustness >= before.defect_robustness - 0.02);
    }

    #[test]
    fn display_lists_components() {
        let (ctx, flat) = setup();
        let text = scorecard(&flat, &ctx).to_string();
        assert!(text.contains("scorecard"));
        assert!(text.contains("via redundancy"));
    }
}
