//! Wire spreading: equalise unequal spacings to cut short-circuit
//! critical area (experiment E1).

use crate::{AppliedResult, DfmTechnique};
use dfm_geom::{Coord, Region, Vector};
use dfm_layout::{layers, FlatLayout, Layer, Technology};

/// Nudges wires towards the middle of their free corridor.
///
/// For each connected component of the layer that
///
/// * carries **no via** (moving it cannot break connectivity we cannot
///   see at this level), and
/// * has unequal clearance to its neighbours above and below (for
///   horizontal wires; left/right for vertical ones),
///
/// the spreader translates it towards the roomier side by half the
/// imbalance (capped at `max_move`). Every accepted move is verified not
/// to reduce the component's minimum clearance.
#[derive(Clone, Copy, Debug)]
pub struct WireSpreading {
    /// Maximum nudge in dbu.
    pub max_move: Coord,
    /// Clearance measurement cutoff.
    pub search_range: Coord,
    /// The layer to spread and the via layers pinning components.
    pub layer: Layer,
}

impl WireSpreading {
    /// Default configuration: spread metal-1 by at most half a pitch.
    pub fn from_context(ctx: &crate::EvaluationContext) -> Self {
        WireSpreading {
            max_move: ctx.tech.m1_pitch / 2,
            search_range: ctx.tech.m1_pitch * 3,
            layer: layers::METAL1,
        }
    }

    /// Directional clearance from `comp` to `others`: the largest `d <
    /// range` such that moving `comp` by `d·dir` stays clear; measured by
    /// binary search on anisotropic bloat.
    fn clearance(&self, comp: &Region, others: &Region, vertical: bool) -> (Coord, Coord) {
        // Chebyshev directional gap via bloat on one axis only.
        let range = self.search_range;
        let gap_dir = |positive: bool| -> Coord {
            let mut lo = 0;
            let mut hi = range;
            // Invariant: separation ≥ lo, unknown above.
            while lo < hi {
                let mid = (lo + hi + 1) / 2;
                let grown = if vertical {
                    // vertical wire: move along x.
                    if positive {
                        Region::from_rects(
                            comp.rects().iter().map(|r| {
                                dfm_geom::Rect::new(r.x0, r.y0, r.x1 + mid, r.y1)
                            }),
                        )
                    } else {
                        Region::from_rects(
                            comp.rects().iter().map(|r| {
                                dfm_geom::Rect::new(r.x0 - mid, r.y0, r.x1, r.y1)
                            }),
                        )
                    }
                } else if positive {
                    Region::from_rects(
                        comp.rects().iter().map(|r| {
                            dfm_geom::Rect::new(r.x0, r.y0, r.x1, r.y1 + mid)
                        }),
                    )
                } else {
                    Region::from_rects(
                        comp.rects().iter().map(|r| {
                            dfm_geom::Rect::new(r.x0, r.y0 - mid, r.x1, r.y1)
                        }),
                    )
                };
                if grown.intersection(others).is_empty() {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            lo
        };
        (gap_dir(false), gap_dir(true))
    }
}

impl DfmTechnique for WireSpreading {
    fn name(&self) -> &str {
        "wire-spreading"
    }

    fn apply(&self, flat: &FlatLayout, tech: &Technology) -> AppliedResult {
        let _ = tech;
        let layer_region = flat.region(self.layer);
        if layer_region.is_empty() {
            return AppliedResult::unchanged(flat.clone());
        }
        let vias = flat.region(layers::VIA1).union(&flat.region(layers::CONTACT));
        let comps = layer_region.connected_components();

        let mut moved = 0usize;
        let mut placed: Vec<Region> = Vec::with_capacity(comps.len());
        // Free wires move; pinned wires stay.
        let mut pinned: Vec<Region> = Vec::new();
        let mut movable: Vec<Region> = Vec::new();
        for comp in comps {
            if comp.intersection(&vias).is_empty() {
                movable.push(comp);
            } else {
                pinned.push(comp);
            }
        }
        // "Others" accumulates final positions as we go, starting with
        // everything at original position, so each move is checked
        // against an up-to-date picture.
        let mut current: Vec<Region> = pinned.clone();
        current.extend(movable.iter().cloned());

        for (mi, comp) in movable.iter().enumerate() {
            let bbox = comp.bbox();
            let vertical = bbox.height() > bbox.width();
            // Everything except this component, at current positions.
            let others_rects: Vec<dfm_geom::Rect> = current
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != pinned.len() + mi)
                .flat_map(|(_, c)| c.rects().iter().copied())
                .collect();
            let others = Region::from_rects(others_rects);
            let (neg, pos) = self.clearance(comp, &others, vertical);
            // Only wires with a neighbour on *both* sides within range
            // are corridor-bound; outer wires must not drift outward.
            if neg >= self.search_range || pos >= self.search_range {
                placed.push(comp.clone());
                continue;
            }
            let imbalance = pos - neg;
            let shift = (imbalance / 2).clamp(-self.max_move, self.max_move);
            if shift == 0 {
                placed.push(comp.clone());
                continue;
            }
            let v = if vertical {
                Vector::new(shift, 0)
            } else {
                Vector::new(0, shift)
            };
            let moved_comp = comp.translated(v);
            // Accept only if the minimum clearance improved.
            let (n2, p2) = self.clearance(&moved_comp, &others, vertical);
            if n2.min(p2) > neg.min(pos) {
                current[pinned.len() + mi] = moved_comp.clone();
                placed.push(moved_comp);
                moved += 1;
            } else {
                placed.push(comp.clone());
            }
        }

        if moved == 0 {
            return AppliedResult::unchanged(flat.clone());
        }
        let mut all_rects: Vec<dfm_geom::Rect> = Vec::new();
        for c in pinned.iter().chain(placed.iter()) {
            all_rects.extend(c.rects().iter().copied());
        }
        let mut out = flat.clone();
        out.set_region(self.layer, Region::from_rects(all_rects));
        AppliedResult {
            layout: out,
            notes: vec![format!("nudged {moved} wires")],
            edits: moved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::{Point, Rect};
    use dfm_layout::{Cell, Library};

    fn flat_with_m1(rects: &[Rect]) -> FlatLayout {
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        for &r in rects {
            c.add_rect(layers::METAL1, r);
        }
        let id = lib.add_cell(c).expect("add");
        lib.flatten(id).expect("flatten")
    }

    fn spreader() -> WireSpreading {
        WireSpreading { max_move: 135, search_range: 810, layer: layers::METAL1 }
    }

    #[test]
    fn lopsided_wire_centres_itself() {
        let tech = Technology::n65();
        // Middle wire 90 above the bottom one but 450 below the top one.
        let flat = flat_with_m1(&[
            Rect::new(0, 0, 4000, 90),
            Rect::new(0, 180, 4000, 270),
            Rect::new(0, 720, 4000, 810),
        ]);
        let r = spreader().apply(&flat, &tech);
        assert_eq!(r.edits, 1, "{:?}", r.notes);
        let region = r.layout.region(layers::METAL1);
        // The middle wire moved up; the old position is vacated.
        assert!(!region.contains_point(Point::new(2000, 185)));
        // Minimum spacing increased beyond the original 90.
        let min_gap = dfm_drc::exterior_facing_pairs(&region, 10_000)
            .iter()
            .map(|p| p.distance)
            .min()
            .expect("has pairs");
        assert!(min_gap > 90, "min gap {min_gap}");
    }

    #[test]
    fn balanced_wires_do_not_move() {
        let tech = Technology::n65();
        let flat = flat_with_m1(&[
            Rect::new(0, 0, 4000, 90),
            Rect::new(0, 360, 4000, 450),
            Rect::new(0, 720, 4000, 810),
        ]);
        let r = spreader().apply(&flat, &tech);
        assert_eq!(r.edits, 0);
    }

    #[test]
    fn via_pinned_wires_do_not_move() {
        let tech = Technology::n65();
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        c.add_rect(layers::METAL1, Rect::new(0, 0, 4000, 90));
        c.add_rect(layers::METAL1, Rect::new(0, 180, 4000, 270));
        c.add_rect(layers::METAL1, Rect::new(0, 720, 4000, 810));
        // Pin the (lopsided) middle wire with a via.
        c.add_rect(layers::VIA1, Rect::new(2000, 200, 2090, 260));
        let id = lib.add_cell(c).expect("add");
        let flat = lib.flatten(id).expect("flatten");
        let r = spreader().apply(&flat, &tech);
        assert_eq!(r.edits, 0, "pinned wire must not move");
    }

    #[test]
    fn spreading_reduces_short_critical_area() {
        let tech = Technology::n65();
        let flat = flat_with_m1(&[
            Rect::new(0, 0, 8000, 90),
            Rect::new(0, 180, 8000, 270), // 90 gap below, 450 above
            Rect::new(0, 720, 8000, 810),
        ]);
        let defects = dfm_yield::DefectModel::new(45, 1.0);
        let before = dfm_yield::critical_area::analyze(&flat.region(layers::METAL1), &defects);
        let r = spreader().apply(&flat, &tech);
        let after =
            dfm_yield::critical_area::analyze(&r.layout.region(layers::METAL1), &defects);
        assert!(
            after.short_ca_nm2 < before.short_ca_nm2,
            "short CA {} -> {}",
            before.short_ca_nm2,
            after.short_ca_nm2
        );
        // Area unchanged: spreading only moves.
        assert_eq!(
            flat.region(layers::METAL1).area(),
            r.layout.region(layers::METAL1).area()
        );
    }

    #[test]
    fn deterministic() {
        let tech = Technology::n65();
        let flat = flat_with_m1(&[
            Rect::new(0, 0, 4000, 90),
            Rect::new(0, 180, 4000, 270),
            Rect::new(0, 720, 4000, 810),
        ]);
        let a = spreader().apply(&flat, &tech);
        let b = spreader().apply(&flat, &tech);
        assert_eq!(
            a.layout.region(layers::METAL1),
            b.layout.region(layers::METAL1)
        );
    }
}
