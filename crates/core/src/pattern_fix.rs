//! Pattern-library-driven layout fixing (DRC-Plus style).

use crate::{AppliedResult, DfmTechnique};
use dfm_geom::{Coord, Point, Rect, Region};
use dfm_layout::{FlatLayout, Layer, Technology};
use dfm_pattern::PatternLibrary;

/// The pre-characterised fix carried by a library pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FixAction {
    /// Grow the geometry in the matched window by `delta` per side,
    /// protecting gaps that cannot absorb the growth.
    WidenLocal {
        /// Per-side growth.
        delta: Coord,
    },
    /// Carve a notch-relief: fill gaps narrower than `below` inside the
    /// matched window (turning a problematic slot into solid metal).
    CloseNotch {
        /// Gaps narrower than this are filled.
        below: Coord,
    },
}

/// A DRC-Plus-style fixer: scans a layer's anchors against a library of
/// problematic patterns and applies each pattern's pre-characterised
/// [`FixAction`] at the matched locations.
///
/// Fixes are *opportunistic*: a fix that would bring the layer closer
/// than `min_space` to surrounding geometry is skipped — only
/// rule-clean replacements are kept, mirroring the production flow this
/// reproduces (Wang et al., stitch/fix replacement).
#[derive(Clone, Debug)]
pub struct PatternFixing {
    /// The pattern library with fixes as payloads.
    pub library: PatternLibrary<FixAction>,
    /// Layer to scan and fix.
    pub layer: Layer,
    /// Anchors to scan (typically rect corners or centres).
    pub anchors: Vec<Point>,
}

impl PatternFixing {
    fn apply_fix(
        region: &Region,
        window: Rect,
        action: FixAction,
        min_space: Coord,
    ) -> Option<Region> {
        let local = region.clipped(window);
        if local.is_empty() {
            return None;
        }
        let replacement = match action {
            FixAction::WidenLocal { delta } => {
                let h = (min_space + 2 * delta + 1) / 2;
                let narrow = local.closed(h).difference(&local);
                local
                    .bloated(delta)
                    .difference(&narrow)
                    .clipped(window)
                    .union(&local)
            }
            FixAction::CloseNotch { below } => local.closed((below + 1) / 2).clipped(window),
        };
        // Rule-clean gate: the replacement must keep spacing to the
        // geometry outside the window.
        let outside = region.difference(&Region::from_rect(window));
        let added = replacement.difference(&local);
        if added.is_empty() {
            return None;
        }
        if !added.bloated(min_space).intersection(&outside).is_empty() {
            return None;
        }
        Some(region.union(&replacement))
    }
}

impl DfmTechnique for PatternFixing {
    fn name(&self) -> &str {
        "pattern-fixing"
    }

    fn apply(&self, flat: &FlatLayout, tech: &Technology) -> AppliedResult {
        let mut region = flat.region(self.layer);
        let min_space = tech.rules(self.layer).min_space;
        let radius = self.library.radius();
        let mut applied = 0usize;
        let mut skipped = 0usize;

        // Scan once against the original geometry; apply sequentially.
        let matches = self.library.scan(&[&region], &self.anchors);
        for m in &matches {
            let action = self.library.entries()[m.entry].1;
            let window = Rect::centered_at(m.at, 2 * radius, 2 * radius);
            match Self::apply_fix(&region, window, action, min_space) {
                Some(fixed) => {
                    region = fixed;
                    applied += 1;
                }
                None => skipped += 1,
            }
        }

        if applied == 0 {
            return AppliedResult::unchanged(flat.clone());
        }
        let mut out = flat.clone();
        out.set_region(self.layer, region);
        AppliedResult {
            layout: out,
            notes: vec![format!(
                "{} matches: {applied} fixed, {skipped} skipped (not rule-clean)",
                matches.len()
            )],
            edits: applied,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_layout::{layers, Cell, Library};

    /// A bad pattern: a narrow slot (notch) between two plates.
    fn slot_at(c: Point, slot: Coord) -> Vec<Rect> {
        vec![
            Rect::new(c.x - 400, c.y - 300, c.x + 400, c.y - slot / 2),
            Rect::new(c.x - 400, c.y + slot / 2, c.x + 400, c.y + 300),
        ]
    }

    fn flat_with(rects: &[Rect]) -> FlatLayout {
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        for &r in rects {
            c.add_rect(layers::METAL1, r);
        }
        let id = lib.add_cell(c).expect("add");
        lib.flatten(id).expect("flatten")
    }

    #[test]
    fn learned_slot_gets_closed() {
        let tech = Technology::n65();
        let teach_at = Point::new(0, 0);
        let teach = flat_with(&slot_at(teach_at, 60));
        let mut library: PatternLibrary<FixAction> = PatternLibrary::new(500, 5, 10);
        library.learn(
            &[&teach.region(layers::METAL1)],
            teach_at,
            FixAction::CloseNotch { below: 100 },
        );

        // The same bad slot occurs in a bigger design.
        let site = Point::new(10_000, 5_000);
        let mut rects = slot_at(site, 60);
        rects.push(Rect::new(0, 20_000, 4000, 20_090)); // unrelated wire
        let flat = flat_with(&rects);
        let fixer = PatternFixing {
            library,
            layer: layers::METAL1,
            anchors: vec![site, Point::new(2000, 20_045)],
        };
        let r = fixer.apply(&flat, &tech);
        assert_eq!(r.edits, 1, "{:?}", r.notes);
        // The slot is now filled.
        assert!(r.layout.region(layers::METAL1).contains_point(site));
        // The unrelated wire is untouched.
        assert_eq!(
            r.layout.region(layers::METAL1).clipped(Rect::new(0, 19_000, 4000, 21_000)),
            flat.region(layers::METAL1).clipped(Rect::new(0, 19_000, 4000, 21_000))
        );
    }

    #[test]
    fn fix_skipped_when_not_rule_clean() {
        let tech = Technology::n65();
        let teach_at = Point::new(0, 0);
        let teach = flat_with(&slot_at(teach_at, 60));
        let mut library: PatternLibrary<FixAction> = PatternLibrary::new(500, 5, 10);
        library.learn(
            &[&teach.region(layers::METAL1)],
            teach_at,
            FixAction::WidenLocal { delta: 40 },
        );

        // The bad site has a neighbouring wire just past the window: the
        // widened plate would violate spacing to it.
        let site = Point::new(10_000, 5_000);
        let mut rects = slot_at(site, 60);
        // Neighbour 95 above the upper plate's top edge (x-aligned).
        rects.push(Rect::new(site.x - 400, site.y + 395, site.x + 400, site.y + 485));
        let flat = flat_with(&rects);
        let fixer = PatternFixing {
            library,
            layer: layers::METAL1,
            anchors: vec![site],
        };
        let r = fixer.apply(&flat, &tech);
        // The input already carries the slot's own spacing violation; the
        // fixer must not add any *new* violation.
        let min_space = tech.rules(layers::METAL1).min_space;
        let before = dfm_drc::spacing_violations(&flat.region(layers::METAL1), min_space);
        let after =
            dfm_drc::spacing_violations(&r.layout.region(layers::METAL1), min_space);
        assert!(after.len() <= before.len(), "{} -> {} violations", before.len(), after.len());
    }

    #[test]
    fn no_matches_is_noop() {
        let tech = Technology::n65();
        let library: PatternLibrary<FixAction> = PatternLibrary::new(500, 5, 10);
        let flat = flat_with(&[Rect::new(0, 0, 1000, 90)]);
        let fixer = PatternFixing {
            library,
            layer: layers::METAL1,
            anchors: vec![Point::new(500, 45)],
        };
        let r = fixer.apply(&flat, &tech);
        assert_eq!(r.edits, 0);
    }
}
