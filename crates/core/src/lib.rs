//! # dfm-core — DFM techniques and the hit-or-hype evaluator
//!
//! The reproduction frame for *"DFM in practice: hit or hype?"*
//! (DAC 2008). The panel's question is operationalised as: for each DFM
//! technique, apply it to a design, measure the **benefit** (predicted
//! yield gain from the `dfm-yield` models) against the **cost** (area,
//! shape-count/mask complexity, runtime), and pronounce a verdict.
//!
//! * [`DfmTechnique`] — the common interface every technique implements,
//! * [`RedundantViaInsertion`] — doubles single vias where landing pads
//!   fit (experiment E2),
//! * [`WireWidening`] — widens wires where spacing headroom exists,
//!   cutting open-circuit critical area (experiment E1),
//! * [`WireSpreading`] — nudges via-free wires to equalise spacings,
//!   cutting short-circuit critical area (experiment E1),
//! * [`MetalFill`] — dummy fill to close density windows (experiment E9),
//! * [`PatternFixing`] — DRC-Plus-style library-driven local fixes
//!   (experiments E4/E11 use the same library machinery),
//! * [`evaluate`] / [`Verdict`] — the hit-or-hype judgement
//!   (experiment E8).
//!
//! ```
//! use dfm_core::{evaluate, EvaluationContext, WireWidening};
//! use dfm_layout::{generate, Technology};
//!
//! let tech = Technology::n65();
//! let lib = generate::routed_block(&tech, generate::RoutedBlockParams::default(), 1);
//! let flat = lib.flatten(lib.top().expect("top"))?;
//! let ctx = EvaluationContext::for_technology(tech);
//! let verdict = evaluate(&WireWidening::from_context(&ctx), &flat, &ctx);
//! assert!(verdict.yield_after >= verdict.yield_before - 1e-9);
//! # Ok::<(), dfm_layout::LayoutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evaluator;
mod fill;
mod pattern_fix;
mod redundant_via;
pub mod score;
mod technique;
mod wire_spread;
mod wire_widen;

pub use evaluator::{evaluate, EvaluationContext, EvaluationContextBuilder, HitOrHype, Verdict};
pub use fill::{density_extremes as fill_density_extremes, MetalFill};
pub use pattern_fix::{FixAction, PatternFixing};
pub use redundant_via::RedundantViaInsertion;
pub use score::{scorecard, DfmScorecard};
pub use technique::{AppliedResult, DfmTechnique};
pub use wire_spread::WireSpreading;
pub use wire_widen::WireWidening;
