//! The common interface of DFM techniques.

use dfm_layout::{FlatLayout, Technology};

/// The outcome of applying a technique.
#[derive(Clone, Debug)]
pub struct AppliedResult {
    /// The modified layout.
    pub layout: FlatLayout,
    /// Human-readable notes about what was changed (counts, skips).
    pub notes: Vec<String>,
    /// Number of edits made (vias added, wires moved, fill shapes…).
    pub edits: usize,
}

impl AppliedResult {
    /// An unchanged result (technique found nothing to do).
    pub fn unchanged(layout: FlatLayout) -> Self {
        AppliedResult { layout, notes: vec!["no applicable sites".into()], edits: 0 }
    }
}

/// A DFM technique: a pure layout-to-layout transformation whose benefit
/// and cost the [evaluator](crate::evaluate) measures.
///
/// Implementations must be deterministic: the hit-or-hype comparison is
/// only meaningful when reapplication reproduces the same layout.
pub trait DfmTechnique {
    /// Short stable name used in reports.
    fn name(&self) -> &str;

    /// Applies the technique to a flattened layout.
    fn apply(&self, flat: &FlatLayout, tech: &Technology) -> AppliedResult;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_layout::layers;

    struct Noop;
    impl DfmTechnique for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn apply(&self, flat: &FlatLayout, _tech: &Technology) -> AppliedResult {
            AppliedResult::unchanged(flat.clone())
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let t: Box<dyn DfmTechnique> = Box::new(Noop);
        let flat = FlatLayout::default();
        let r = t.apply(&flat, &Technology::n65());
        assert_eq!(r.edits, 0);
        assert!(r.layout.region(layers::METAL1).is_empty());
    }
}
