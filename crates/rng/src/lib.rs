//! # dfm-rand — dependency-free deterministic random numbers
//!
//! Every stochastic experiment in this workspace (Monte-Carlo critical
//! area, defect sampling, synthetic layout/netlist generation, CD
//! variation) must be **bit-reproducible from a named seed** with zero
//! registry dependencies — the hermetic-build policy in `DESIGN.md`.
//! This crate is the single source of randomness: a xoshiro256++ core
//! seeded through SplitMix64, plus the small distribution surface the
//! codebase actually uses.
//!
//! Policy: **seed everywhere, no ambient entropy.** There is no
//! `from_entropy`/OS-seeded constructor on purpose; every generator is
//! built from an explicit [`Seed`] (or `u64`), so two runs of any
//! experiment produce identical bits on every platform.
//!
//! ```
//! use dfm_rand::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let x = rng.range(0i64..100);
//! assert!((0..100).contains(&x));
//! assert_eq!(Rng::seed_from_u64(42).range(0i64..100), x);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// An explicit random seed.
///
/// A thin wrapper that makes seeds visible in APIs: functions that
/// consume randomness should take a `Seed` (or a `u64` documented as
/// one), never construct ambient entropy internally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Seed(pub u64);

impl Seed {
    /// Derives a stream-independent child seed, e.g. one per test case
    /// or per Monte-Carlo stratum. Mixing is SplitMix64-strength, so
    /// nearby indices give uncorrelated streams.
    pub fn derive(self, index: u64) -> Seed {
        // Jump the SplitMix64 stream by `index` golden-ratio steps: the
        // state map is injective in `index`, so children never collide.
        let mut s = SplitMix64::new(
            self.0.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index)),
        );
        s.next();
        Seed(s.next())
    }
}

impl From<u64> for Seed {
    fn from(v: u64) -> Seed {
        Seed(v)
    }
}

/// SplitMix64: the canonical seed expander (Steele, Lea, Flood 2014).
/// Used to turn one `u64` into the 256-bit xoshiro state; also usable
/// directly as a tiny standalone generator for seed derivation.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the expander from a raw seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    // Not an Iterator: the expander is infinite and `next` never ends.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The workspace PRNG: xoshiro256++ (Blackman & Vigna 2019).
///
/// 256-bit state, period 2²⁵⁶−1, passes BigCrush, and is trivially
/// portable — no platform-dependent behaviour anywhere in this crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second Box-Muller variate (see [`Rng::normal`]).
    spare_normal: Option<u64>,
}

impl Rng {
    /// Builds a generator from an explicit seed.
    pub fn from_seed(seed: Seed) -> Rng {
        Rng::seed_from_u64(seed.0)
    }

    /// Builds a generator from a raw `u64` seed (SplitMix64-expanded,
    /// so even seeds 0, 1, 2… give well-mixed, uncorrelated states).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next(), sm.next(), sm.next(), sm.next()],
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output (the xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 bits (upper half of [`Rng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with full 53-bit mantissa resolution.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open range.
    ///
    /// Implemented for the integer types the workspace uses and `f64`;
    /// integer sampling is unbiased (Lemire rejection).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Unbiased uniform `u64` in `[0, bound)` by widening-multiply
    /// rejection (Lemire 2019).
    fn u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to [0,1]).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform random `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Standard normal variate via Box-Muller (the cached second
    /// variate is stored bit-exactly so streams stay reproducible).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(bits) = self.spare_normal.take() {
            return f64::from_bits(bits);
        }
        // u1 bounded away from 0 so ln() is finite.
        let u1 = self.f64().max(1e-300);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let z0 = r * theta.cos();
        let z1 = r * theta.sin();
        self.spare_normal = Some(z1.to_bits());
        z0
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Uniform in-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.u64_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Splits off an independent child generator (keyed off this
    /// stream), advancing this generator by one output.
    pub fn fork(&mut self) -> Rng {
        let seed = self.next_u64();
        Rng::seed_from_u64(seed)
    }
}

/// Types that [`Rng::range`] can sample uniformly from a half-open
/// range. Sealed in practice: implemented for the workspace's needs.
pub trait UniformSample: Copy {
    /// Samples uniformly from `range`.
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(rng: &mut Rng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range in Rng::range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                let off = rng.u64_below(span);
                ((range.start as $u).wrapping_add(off as $u)) as $t
            }
        }
    )*};
}

impl_uniform_int!(i64 => u64, u64 => u64, i32 => u32, u32 => u32, u16 => u16, u8 => u8, usize => usize);

impl UniformSample for f64 {
    fn sample(rng: &mut Rng, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range in Rng::range");
        let v = range.start + rng.f64() * (range.end - range.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden pinning: the exact first outputs for seed 1. Any change
    /// to seeding or the core breaks bit-reproducibility of every
    /// recorded experiment, so this must fail loudly.
    #[test]
    fn golden_stream_seed_1() {
        let mut rng = Rng::seed_from_u64(1);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        // Cross-checked against the reference xoshiro256++ C code with
        // SplitMix64(1) state expansion.
        let mut sm = SplitMix64::new(1);
        let state = [sm.next(), sm.next(), sm.next(), sm.next()];
        let mut reference = ReferenceXoshiro { s: state };
        let expect: Vec<u64> = (0..4).map(|_| reference.next()).collect();
        assert_eq!(first, expect);
        // And pin the absolute values so the reference itself can't
        // drift silently.
        assert_eq!(state[0], 0x910a_2dec_8902_5cc1);
    }

    /// Reference implementation transcribed independently from the
    /// published algorithm (prng.di.unimi.it/xoshiro256plusplus.c).
    struct ReferenceXoshiro {
        s: [u64; 4],
    }

    impl ReferenceXoshiro {
        fn next(&mut self) -> u64 {
            // Literal transcription of the reference C, rotl included.
            #[allow(clippy::manual_rotate)]
            fn rotl(x: u64, k: u32) -> u64 {
                (x << k) | (x >> (64 - k))
            }
            let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = rotl(self.s[3], 45);
            result
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(Rng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut rng = Rng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.range(0i64..10);
            assert!((0..10).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear");
        // usize / u32 / f64 variants respect bounds too.
        for _ in 0..1_000 {
            assert!(rng.range(3usize..7) < 7);
            assert!(rng.range(0u32..4) < 4);
            let f = rng.range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        // Negative integer ranges.
        for _ in 0..1_000 {
            let v = rng.range(-50i64..-10);
            assert!((-50..-10).contains(&v));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 100_000;
        let k = 8u64;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            counts[rng.range(0u64..k) as usize] += 1;
        }
        let expect = n as f64 / k as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "bucket count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).range(5i64..5);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Rng::seed_from_u64(13);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count() as f64 / n as f64;
        assert!((hits - 0.3).abs() < 0.01, "empirical p {hits}");
        assert!((0..1000).all(|_| !rng.bernoulli(0.0)));
        assert!((0..1000).all(|_| rng.bernoulli(1.0)));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(19);
        let mut v: Vec<i64> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // Shuffling actually moves things (astronomically unlikely not to).
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut a = Rng::seed_from_u64(23);
        let mut b = Rng::seed_from_u64(23);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..50 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
        // Parent and child streams differ.
        assert_ne!(a.next_u64(), fa.next_u64());
    }

    #[test]
    fn seed_derive_varies_with_index() {
        let base = Seed(42);
        let children: Vec<u64> = (0..16).map(|i| base.derive(i).0).collect();
        let mut unique = children.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), children.len());
        assert_eq!(base.derive(3), Seed(42).derive(3));
    }
}
