//! Benches over the core engines, one per experiment family, plus the
//! ablations DESIGN.md calls out. Runs on the in-repo
//! `dfm_bench::microbench` harness (warmup + median-of-N, optional JSON
//! via `DFM_BENCH_JSON=<path>`): `cargo bench -p dfm-bench [-- filter]`.

use dfm_bench::microbench::Bencher;
use dfm_geom::{GridIndex, Point, Rect, Region};
use dfm_layout::{layers, Technology};
use std::hint::black_box;

fn routed_m1(seed: u64) -> Region {
    let tech = Technology::n65();
    let lib = dfm_layout::generate::routed_block(
        &tech,
        dfm_layout::generate::RoutedBlockParams {
            width: 15_000,
            height: 15_000,
            ..Default::default()
        },
        seed,
    );
    let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
    flat.region(layers::METAL1)
}

/// Boolean engine: full-layer union/difference (powers everything).
fn bench_region_boolean(b: &mut Bencher) {
    let a = routed_m1(1);
    let other = routed_m1(2);
    b.bench("region_union", || black_box(a.union(&other)).area());
    b.bench("region_difference", || black_box(a.difference(&other)).area());
}

/// DRC spacing sweep (E1/E8 substrate; bench `caa` pairs with it).
fn bench_drc(b: &mut Bencher) {
    let region = routed_m1(3);
    b.bench("drc_spacing_sweep", || {
        dfm_drc::spacing_violations(black_box(&region), 90).len()
    });
}

/// Full rule-deck signoff run: rule fan-out + chunked edge sweeps, the
/// DRC-layer beneficiary of `dfm-par`.
fn bench_drc_full_deck(b: &mut Bencher) {
    let tech = Technology::n65();
    let lib = dfm_layout::generate::routed_block(
        &tech,
        dfm_layout::generate::RoutedBlockParams {
            width: 15_000,
            height: 15_000,
            ..Default::default()
        },
        8,
    );
    let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
    let deck = dfm_drc::RuleDeck::for_technology(&tech);
    b.bench("drc_full_deck", || {
        dfm_drc::DrcEngine::new(&deck).run(black_box(&flat)).violation_count()
    });
}

/// The same full-deck signoff streamed through the tile shard: per-tile
/// windows, ordered merge, report bit-identical to `drc_full_deck`.
/// Publishes the peak per-tile rect count as a gauge — the observable
/// form of "the tiled path never materialises a full layer".
fn bench_tiled_drc_full_deck(b: &mut Bencher) {
    let tech = Technology::n65();
    let lib = dfm_layout::generate::routed_block(
        &tech,
        dfm_layout::generate::RoutedBlockParams {
            width: 15_000,
            height: 15_000,
            ..Default::default()
        },
        8,
    );
    let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
    let full_layer_rects = dfm_layout::LayoutView::rect_count(&flat);
    let cfg = dfm_layout::TilingConfig::builder()
        .tile(4096)
        .halo(512)
        .build()
        .expect("config");
    let tiled = dfm_layout::TiledLayout::from_flat(flat, cfg);
    let deck = dfm_drc::RuleDeck::for_technology(&tech);
    b.bench("tiled_drc_full_deck", || {
        dfm_drc::TiledDrcEngine::new(&deck)
            .run(black_box(&tiled))
            .expect("certified")
            .report
            .violation_count()
    });
    let run = dfm_drc::TiledDrcEngine::new(&deck).run(&tiled).expect("certified");
    b.gauge("tiled_drc_peak_tile_rects", run.stats.peak_tile_rects as f64);
    b.gauge("tiled_drc_tiles", run.stats.tiles as f64);
    b.gauge("tiled_drc_full_layer_rects", full_layer_rects as f64);
}

/// Critical-area extraction (Table 1 / Table 7).
fn bench_caa(b: &mut Bencher) {
    let region = routed_m1(4);
    let defects = dfm_yield::DefectModel::new(45, 1.0);
    b.bench("caa_analyze", || {
        dfm_yield::critical_area::analyze(black_box(&region), &defects).total_ca_nm2()
    });
}

/// Aerial-image simulation of one tile (Fig 1 substrate).
fn bench_litho(b: &mut Bencher) {
    let sim = dfm_litho::LithoSimulator::for_feature_size(90);
    let mask = Region::from_rects((0..10).map(|i| Rect::new(0, i * 180, 4000, i * 180 + 90)));
    let window = mask.bbox().expanded(200);
    b.bench("litho_print_tile", || {
        sim.printed_in_window(black_box(&mask), window, dfm_litho::Condition::nominal())
            .area()
    });
}

/// Pattern encode+match throughput (Table 3 substrate).
fn bench_pattern_match(b: &mut Bencher) {
    let region = routed_m1(5);
    let mut library: dfm_pattern::PatternLibrary<()> = dfm_pattern::PatternLibrary::new(540, 10, 15);
    let rects: Vec<Rect> = region.rects().iter().copied().take(64).collect();
    for r in &rects {
        library.learn(&[&region], r.center(), ());
    }
    let anchors: Vec<Point> = region.rects().iter().map(|r| r.center()).take(512).collect();
    b.bench("pattern_scan_512_anchors", || {
        library.scan(black_box(&[&region]), &anchors).len()
    });
}

/// Stratified Monte-Carlo critical-area sampling (E12 substrate): the
/// per-stratum fork-join in `dfm-yield`.
fn bench_mc_short_ca(b: &mut Bencher) {
    let region = routed_m1(9);
    let defects = dfm_yield::DefectModel::new(45, 1.0);
    b.bench("mc_short_ca_20k", || {
        dfm_yield::monte_carlo::estimate_short_ca(black_box(&region), &defects, 20_000, 7)
            .short_ca_nm2
    });
}

/// Timing Monte-Carlo gate-length sampling (E7 substrate): the chunked
/// per-gate RNG streams in `dfm-timing`.
fn bench_timing_mc(b: &mut Bencher) {
    let netlist = dfm_timing::Netlist::random(12, 16, 707);
    b.bench("timing_mc_extract", || {
        dfm_timing::extract::monte_carlo(black_box(&netlist), 0.04, 7).len()
    });
}

/// DPT decomposition (Table 4 substrate).
fn bench_dpt(b: &mut Bencher) {
    let region = routed_m1(6);
    let params = dfm_dpt::DptParams::for_min_space(90);
    b.bench("dpt_decompose", || {
        dfm_dpt::decompose(black_box(&region), params).piece_count()
    });
}

/// Ablation: separable vs full 2-D Gaussian convolution.
fn bench_conv_ablation(b: &mut Bencher) {
    let mask = Region::from_rects((0..6).map(|i| Rect::new(0, i * 200, 2000, i * 200 + 90)));
    let window = mask.bbox().expanded(150);
    let base = dfm_litho::Raster::rasterize(&mask, window, 10);
    b.bench("conv_separable", || {
        let mut r = base.clone();
        r.gaussian_blur(black_box(40.0));
        r.max_value()
    });
    b.bench("conv_full2d", || {
        let mut r = base.clone();
        r.gaussian_blur_full2d(black_box(40.0));
        r.max_value()
    });
}

/// Ablation: grid spatial index vs brute-force pair scan.
fn bench_index_ablation(b: &mut Bencher) {
    let region = routed_m1(7);
    let rects: Vec<Rect> = region.rects().to_vec();
    let mut index = GridIndex::new(1080);
    for (i, r) in rects.iter().enumerate() {
        index.insert(*r, i);
    }
    let probes: Vec<Rect> = rects.iter().step_by(10).map(|r| r.expanded(200)).collect();
    b.bench("index_grid_queries", || {
        let mut n = 0usize;
        for p in &probes {
            n += index.query(black_box(*p)).len();
        }
        n
    });
    b.bench("index_bruteforce_queries", || {
        let mut n = 0usize;
        for p in &probes {
            n += rects.iter().filter(|r| r.touches(black_box(p))).count();
        }
        n
    });
}

fn main() {
    let mut b = Bencher::from_env();
    bench_region_boolean(&mut b);
    bench_drc(&mut b);
    bench_drc_full_deck(&mut b);
    bench_tiled_drc_full_deck(&mut b);
    bench_caa(&mut b);
    bench_litho(&mut b);
    bench_pattern_match(&mut b);
    bench_mc_short_ca(&mut b);
    bench_timing_mc(&mut b);
    bench_dpt(&mut b);
    bench_index_ablation(&mut b);
    bench_conv_ablation(&mut b);
    b.finish();
}
