//! Signoff-service benches: the full job pipeline (submit → tile
//! fan-out → ordered merge → report) end to end, plus scheduler
//! saturation gauges. This is the throughput face of the multicore
//! story in EXPERIMENTS.md — wall-clock per signoff job at the worker
//! counts a signoff farm actually runs.
//!
//! `cargo bench -p dfm-bench --bench signoff [-- filter]`, JSON via
//! `DFM_BENCH_JSON=<path>` as for the `engines` bench.

use dfm_bench::microbench::Bencher;
use dfm_cache::TileCache;
use dfm_fault::{FaultAction, FaultPlan, FaultPlane, FaultRule};
use dfm_layout::{gds, generate, layers, Technology};
use dfm_signoff::service::JobState;
use dfm_signoff::{
    Client, JobSpec, Server, ServiceConfig, SignoffService, SITE_SHARD_DISPATCH,
};
use std::hint::black_box;
use std::sync::Arc;

fn job_gds() -> Vec<u8> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 6_000,
        height: 6_000,
        ..Default::default()
    };
    gds::to_bytes(&generate::routed_block(&tech, params, 11)).expect("gds")
}

fn job_spec() -> JobSpec {
    JobSpec {
        name: "bench".to_string(),
        tile: 1700,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

/// One complete job on an already-warm service; returns the report
/// length so the optimiser keeps the whole pipeline.
fn run_job(service: &SignoffService, spec: &JobSpec, gds_bytes: &[u8]) -> usize {
    let id = service.submit(spec.clone(), gds_bytes.to_vec()).expect("submit");
    let status = service.wait(id).expect("wait");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    let (_, text) = service.report_text(id, false).expect("report");
    text.len()
}

/// End-to-end job latency at 1, 2, and 4 workers, on a persistent
/// service (the pool is reused across jobs, as in the server).
fn bench_signoff_job_e2e(b: &mut Bencher) {
    let gds_bytes = job_gds();
    let spec = job_spec();
    for workers in [1usize, 2, 4] {
        let service = SignoffService::new(workers, None);
        b.bench(&format!("signoff_job_e2e_w{workers}"), || {
            black_box(run_job(&service, &spec, &gds_bytes))
        });
    }
}

/// Scheduler saturation under a burst of jobs: submit several jobs
/// back to back on a 4-worker service, then publish the pool's peak
/// queue depth and peak concurrently-running tiles as gauges. A
/// healthy scheduler shows `tiles_in_flight_peak == workers` (the pool
/// saturates) and a `queue_depth_peak` near jobs × tiles (fan-out is
/// immediate, not trickled).
fn bench_signoff_saturation(b: &mut Bencher) {
    let gds_bytes = job_gds();
    let spec = job_spec();
    let workers = 4usize;
    let service = SignoffService::new(workers, None);
    let ids: Vec<u64> = (0..3)
        .map(|_| service.submit(spec.clone(), gds_bytes.clone()).expect("submit"))
        .collect();
    for id in ids {
        let status = service.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    }
    let stats = service.pool_stats();
    b.gauge("queue_depth_peak", stats.queue_depth_peak as f64);
    b.gauge("tiles_in_flight_peak", stats.in_flight_peak as f64);
}

/// Warm-cache resubmission: prime a content-addressed result cache
/// with one cold job, then bench the warm job (every tile served from
/// disk, zero computes) and publish the hit ratio and recompute count
/// from the warm run's status. A healthy cache shows
/// `cache_hit_ratio == 1` and `tiles_recomputed == 0`; the
/// `signoff_job_warm_cache` timing against `signoff_job_e2e_w4` is the
/// incremental-re-signoff speedup.
fn bench_signoff_warm_cache(b: &mut Bencher) {
    let gds_bytes = job_gds();
    let spec = job_spec();
    let root = std::env::temp_dir().join(format!("dfm-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cache = Arc::new(TileCache::open(&root, None).expect("cache"));
    let service = SignoffService::with_config(ServiceConfig {
        cache: Some(Arc::clone(&cache)),
        ..ServiceConfig::new(4)
    });
    run_job(&service, &spec, &gds_bytes); // prime
    b.bench("signoff_job_warm_cache_w4", || {
        black_box(run_job(&service, &spec, &gds_bytes))
    });
    let id = service.submit(spec.clone(), gds_bytes.clone()).expect("submit");
    let status = service.wait(id).expect("wait");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    b.gauge(
        "cache_hit_ratio",
        status.tiles_cached as f64 / status.tiles_total.max(1) as f64,
    );
    b.gauge(
        "tiles_recomputed",
        (status.tiles_total - status.tiles_cached) as f64,
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Manufacturability scoring and the auto-fix loop: time a scored job
/// (the score rides the normal pipeline — its cost is metric
/// extraction at submit and finalise, never per-tile work), then run
/// the greedy fix search once and publish its evidence as gauges:
/// aggregate score before/after, the delta, the edit count, and how
/// many tiles the cache-armed resubmission actually recomputed.
fn bench_signoff_score_fix(b: &mut Bencher) {
    let gds_bytes = job_gds();
    let spec = JobSpec { score: Some("default".to_string()), ..job_spec() };
    let service = SignoffService::new(4, None);
    b.bench("signoff_job_scored_w4", || {
        black_box(run_job(&service, &spec, &gds_bytes))
    });

    let root = std::env::temp_dir().join(format!("dfm-bench-score-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cache = Arc::new(TileCache::open(&root, None).expect("cache"));
    let service = SignoffService::with_config(ServiceConfig {
        cache: Some(Arc::clone(&cache)),
        ..ServiceConfig::new(4)
    });
    run_job(&service, &spec, &gds_bytes); // prime
    let outcome = dfm_signoff::auto_fix(&spec, &gds_bytes).expect("fix");
    let id = service.submit(spec.clone(), outcome.gds.clone()).expect("submit");
    let status = service.wait(id).expect("wait");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    b.gauge("score_before", outcome.score_before.score);
    b.gauge("score_after", outcome.score_after.score);
    b.gauge("fix_score_delta", outcome.delta());
    b.gauge("fix_edits", outcome.edits as f64);
    b.gauge(
        "fix_tiles_recomputed",
        (status.tiles_total - status.tiles_cached) as f64,
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Scale-out: a coordinator fanning the job across two in-process
/// shard servers over the real wire protocol. Times the coordinated
/// run against `signoff_job_e2e_*` (same bytes, plus the wire), then
/// runs a takeover — shard 0's generation-0 dispatch leg is killed so
/// the survivor absorbs its range — and publishes the cluster shape
/// and recovery volume as gauges: `shards` and `tiles_redispatched`.
fn bench_signoff_sharded(b: &mut Bencher) {
    let gds_bytes = job_gds();
    let spec = job_spec();
    let addrs: Vec<String> = (0..2)
        .map(|k| {
            let service = Arc::new(SignoffService::with_config(
                ServiceConfig::builder().threads(2).shard_of(k, 2).build(),
            ));
            let server = Server::bind(service, 0).expect("bind shard");
            let addr = server.local_addr().to_string();
            std::thread::spawn(move || {
                let _ = server.serve();
            });
            addr
        })
        .collect();

    let coordinator = SignoffService::with_config(
        ServiceConfig::builder().threads(2).shards(addrs.clone()).build(),
    );
    b.bench("signoff_job_sharded_2x2", || {
        black_box(run_job(&coordinator, &spec, &gds_bytes))
    });

    let plan = FaultPlan::seeded(3).with_rule(
        FaultRule::new(SITE_SHARD_DISPATCH, FaultAction::Error).key(0).first_attempts(1),
    );
    let coordinator = SignoffService::with_config(
        ServiceConfig::builder()
            .threads(2)
            .shards(addrs.clone())
            .fault_plane(Arc::new(FaultPlane::new(plan)))
            .build(),
    );
    run_job(&coordinator, &spec, &gds_bytes);
    let stats = coordinator.shard_stats().expect("shard stats");
    b.gauge("shards", stats.shards as f64);
    b.gauge("tiles_redispatched", stats.tiles_redispatched as f64);

    for addr in &addrs {
        if let Ok(mut client) = Client::connect(addr) {
            let _ = client.shutdown();
        }
    }
}

/// Robustness surface: the size of the registered crash-site matrix
/// (what `dfm-sim` enumerates and asserts full coverage of) and the
/// client's transparent-reconnect counter under a server that tears
/// every connection's fourth response frame. `reconnects > 0` is the
/// evidence that the torn frames were ridden out invisibly — every
/// ping still answered.
fn bench_signoff_robustness(b: &mut Bencher) {
    use dfm_signoff::server::SITE_SERVER_WRITE;
    let plan = FaultPlan::seeded(5)
        .with_rule(FaultRule::new(SITE_SERVER_WRITE, FaultAction::Drop).attempt_exactly(3));
    let service = Arc::new(SignoffService::with_config(
        ServiceConfig::builder()
            .threads(1)
            .fault_plane(Arc::new(FaultPlane::new(plan)))
            .build(),
    ));
    let server = Server::bind(service, 0).expect("bind");
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || {
        let _ = server.serve();
    });
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..20 {
        client.ping().expect("ping rides out torn frames");
    }
    b.gauge("crash_sites_covered", dfm_fault::crash::SITES.len() as f64);
    b.gauge("reconnects", client.reconnects() as f64);
    let _ = client.shutdown();
}

fn main() {
    let mut b = Bencher::from_env();
    bench_signoff_job_e2e(&mut b);
    bench_signoff_saturation(&mut b);
    bench_signoff_warm_cache(&mut b);
    bench_signoff_score_fix(&mut b);
    bench_signoff_sharded(&mut b);
    bench_signoff_robustness(&mut b);
    b.finish();
}
