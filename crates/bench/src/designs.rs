//! Shared reference designs for the experiments.

use dfm_layout::generate::{self, RoutedBlockParams};
use dfm_layout::{FlatLayout, Library, Technology};

/// The block edge used by most experiments (smaller than production but
/// large enough for stable statistics).
pub const BLOCK_EDGE: i64 = 30_000;

fn block_params(base: RoutedBlockParams) -> RoutedBlockParams {
    RoutedBlockParams { width: BLOCK_EDGE, height: BLOCK_EDGE, ..base }
}

/// Flattens a library's top cell (panicking on malformed libraries,
/// which generated ones never are).
pub fn flatten(lib: &Library) -> FlatLayout {
    lib.flatten(lib.top().expect("generated libraries have a top"))
        .expect("generated libraries flatten")
}

/// The default 65 nm-class reference block.
pub fn reference(tech: &Technology, seed: u64) -> FlatLayout {
    flatten(&generate::routed_block(
        tech,
        block_params(RoutedBlockParams::default()),
        seed,
    ))
}

/// A dense variant.
pub fn dense(tech: &Technology, seed: u64) -> FlatLayout {
    flatten(&generate::routed_block(
        tech,
        block_params(RoutedBlockParams::dense()),
        seed,
    ))
}

/// A sparse variant.
pub fn sparse(tech: &Technology, seed: u64) -> FlatLayout {
    flatten(&generate::routed_block(
        tech,
        block_params(RoutedBlockParams::sparse()),
        seed,
    ))
}

/// An SRAM-like array.
pub fn sram(tech: &Technology) -> FlatLayout {
    flatten(&generate::sram_array(tech, 24, 48))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_layout::layers;

    #[test]
    fn designs_are_nonempty_and_distinct() {
        let tech = Technology::n65();
        let a = reference(&tech, 1);
        let b = dense(&tech, 1);
        let c = sparse(&tech, 1);
        let m = |f: &FlatLayout| f.region(layers::METAL1).area();
        assert!(m(&a) > 0);
        assert!(m(&b) > m(&a));
        assert!(m(&c) < m(&a));
        let s = sram(&tech);
        assert!(s.region(layers::POLY).area() > 0);
    }
}
