//! A hand-rolled JSON writer — the workspace's one JSON emitter.
//!
//! Registry-free by design (no serde): [`JsonValue`] is a tiny
//! document tree with a deterministic renderer. The microbench report
//! ([`crate::microbench::Bencher::to_json`]) and the `dfm-signoff`
//! wire protocol both render through it, so every JSON byte the
//! workspace emits comes from this module.
//!
//! Numbers render through [`fmt_f64`]: integers without a fraction
//! (`3`, not `3.0`), everything else via Rust's shortest-round-trip
//! `Display`, so a value parsed back (`str::parse::<f64>`) reproduces
//! the exact bits. Non-finite numbers render as `null` (JSON has no
//! NaN/Infinity).

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite renders as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An ordered object — insertion order is preserved on render, so
    /// output is deterministic.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A string node.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// An object node from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An exact u64 carried as a string (f64 loses integers above
    /// 2⁵³; sequence numbers and digests must survive round-trips).
    pub fn u64_str(v: u64) -> JsonValue {
        JsonValue::Str(v.to_string())
    }

    /// Renders the node as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => out.push_str(&fmt_f64(*n)),
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (`None` on non-objects too).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number node.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean node.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array node.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Renders a finite f64 the way the reports expect: integral values
/// without a fraction, others in shortest-round-trip form; non-finite
/// as `null`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Appends `s` as a quoted, escaped JSON string.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes a string to a standalone JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let doc = JsonValue::obj([
            ("name", JsonValue::str("a\"b")),
            ("n", JsonValue::Num(3.0)),
            ("frac", JsonValue::Num(0.5)),
            ("flag", JsonValue::Bool(true)),
            ("items", JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Null])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"a\"b","n":3,"frac":0.5,"flag":true,"items":[1,null]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\nb\t\u{1}"), "\"a\\nb\\t\\u0001\"");
    }

    #[test]
    fn numbers_round_trip_through_display() {
        for v in [0.1, 1.0 / 3.0, 1e300, -2.5e-8] {
            let s = fmt_f64(v);
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits(), "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(3.0), "3");
    }

    #[test]
    fn u64_survives_as_string() {
        let v = JsonValue::u64_str(u64::MAX);
        assert_eq!(v.render(), format!("\"{}\"", u64::MAX));
    }

    #[test]
    fn get_and_accessors() {
        let doc = JsonValue::obj([("k", JsonValue::Num(2.0))]);
        assert_eq!(doc.get("k").and_then(JsonValue::as_f64), Some(2.0));
        assert!(doc.get("missing").is_none());
        assert!(JsonValue::Null.get("k").is_none());
    }
}
