//! Minimal fixed-width table rendering for experiment output.

/// A simple text table builder with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..width[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a yield as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "22"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "1" and "22" start at the same offset.
        let idx1 = lines[2].find('1').expect("1 present");
        let idx2 = lines[3].find("22").expect("22 present");
        assert_eq!(idx1, idx2);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.98765), "98.77%");
    }
}
