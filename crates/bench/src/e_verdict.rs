//! The panel verdict experiment: E8.

use crate::designs;
use crate::table::{f, Table};
use dfm_core::{
    evaluate, EvaluationContext, MetalFill, PatternFixing, RedundantViaInsertion, WireSpreading,
    WireWidening,
};
use dfm_layout::{layers, Technology};
use dfm_pattern::PatternLibrary;
use dfm_yield::DefectModel;

/// E8 (Table 5): every technique evaluated on one reference design.
pub fn e8_verdicts() -> String {
    let tech = Technology::n65();
    let flat = designs::reference(&tech, 808);
    let mut ctx = EvaluationContext::for_technology(tech.clone());
    // A stress environment representative of early yield ramp, so the
    // deltas are visible on a block-sized design.
    ctx.defects = DefectModel::new(ctx.defects.x0, 50_000.0);
    ctx.via_fail_prob = 5e-5;

    let empty_fix = PatternFixing {
        library: PatternLibrary::new(4 * tech.rules(layers::METAL1).min_width, 10, 15),
        layer: layers::METAL1,
        anchors: Vec::new(),
    };
    let techniques: Vec<Box<dyn dfm_core::DfmTechnique>> = vec![
        Box::new(RedundantViaInsertion::for_technology(&tech)),
        Box::new(WireSpreading::from_context(&ctx)),
        Box::new(WireWidening::from_context(&ctx)),
        Box::new(MetalFill::from_context(&ctx)),
        Box::new(empty_fix),
    ];

    let mut table = Table::new([
        "technique", "yield before", "yield after", "gain (pp)", "area cost", "edits", "runtime (ms)", "verdict",
    ]);
    let mut verdicts = Vec::new();
    for t in &techniques {
        let v = evaluate(t.as_ref(), &flat, &ctx);
        table.row([
            v.technique.clone(),
            f(v.yield_before, 4),
            f(v.yield_after, 4),
            f(v.yield_gain_pp(), 3),
            format!("{:+.3}%", v.area_cost_percent()),
            v.edits.to_string(),
            f(v.runtime_ms, 0),
            v.hit_or_hype().to_string(),
        ]);
        verdicts.push(v);
    }
    let mut out = table.render();
    out.push_str(
        "\nshape expectation: redundant vias and wire widening register as HIT\n\
         under ramp conditions (widening pays in drawn metal area, the mask-\n\
         data proxy, not chip area); spreading is inert on dense uniform\n\
         routing — hype *for this design style*; fill is yield-neutral here\n\
         (its benefit is CMP uniformity, Fig 4); an empty pattern library is\n\
         HYPE — the tool is only as good as its learned content.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_contains_all_techniques_and_verdicts() {
        let text = e8_verdicts();
        for t in [
            "redundant-via",
            "wire-spreading",
            "wire-widening",
            "metal-fill",
            "pattern-fixing",
        ] {
            assert!(text.contains(t), "{text}");
        }
        assert!(text.contains("HIT") || text.contains("MARGINAL"));
        assert!(text.contains("HYPE"));
    }
}
