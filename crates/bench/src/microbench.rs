//! Self-contained microbenchmark harness (criterion replacement).
//!
//! Registry-free by design: warmup, fixed sample count, median-of-N
//! reporting, and machine-readable JSON output. Timing uses
//! [`std::time::Instant`] only, so the harness works offline and adds
//! zero dependencies.
//!
//! Usage from a `harness = false` bench target:
//!
//! ```no_run
//! use dfm_bench::microbench::Bencher;
//!
//! let mut b = Bencher::from_env();
//! b.bench("region_union", || 2 + 2);
//! b.finish();
//! ```
//!
//! Run with `cargo bench -p dfm-bench`. Filter by substring with
//! `cargo bench -p dfm-bench -- union`; write a JSON report with
//! `DFM_BENCH_JSON=target/bench.json cargo bench -p dfm-bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's aggregated timings, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark name as registered with [`Bencher::bench`].
    pub name: String,
    /// Median over samples of (batch time / batch iterations).
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Iterations executed per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Worker threads in effect while the bench ran (the resolved
    /// `DFM_THREADS`), so speedup claims are recorded, not hand-asserted.
    pub threads: usize,
}

/// A named scalar observation published alongside the timings — e.g. a
/// peak working-set proxy or a result count the bench wants pinned in
/// the report. Gauges are measured once, not timed.
#[derive(Debug, Clone, PartialEq)]
pub struct Gauge {
    /// Gauge name.
    pub name: String,
    /// Observed value.
    pub value: f64,
}

/// Benchmark runner: collects [`Sample`]s, prints a human-readable
/// line per bench, optionally writes a JSON report at the end.
pub struct Bencher {
    /// Target wall time per timed sample; iteration count is calibrated
    /// during warmup so one sample is roughly this long.
    pub sample_time: Duration,
    /// Number of timed samples (median is taken over these).
    pub samples: usize,
    /// Substring filter (from CLI args); empty = run everything.
    pub filter: String,
    /// JSON output path (from `DFM_BENCH_JSON`); empty = no report.
    pub json_path: String,
    results: Vec<Sample>,
    gauges: Vec<Gauge>,
}

impl Default for Bencher {
    fn default() -> Self {
        Bencher {
            sample_time: Duration::from_millis(50),
            samples: 11,
            filter: String::new(),
            json_path: String::new(),
            results: Vec::new(),
            gauges: Vec::new(),
        }
    }
}

impl Bencher {
    /// Build a runner configured from the process environment: the first
    /// non-flag CLI argument is a substring filter (cargo bench passes
    /// `--bench` and similar flags; those are ignored),
    /// `DFM_BENCH_JSON=<path>` requests a JSON report, and
    /// `DFM_BENCH_SAMPLES=<n>` overrides the timed-sample count (CI
    /// uses a small count to bound wall time; gauges are unaffected).
    pub fn from_env() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .unwrap_or_default();
        let json_path = std::env::var("DFM_BENCH_JSON").unwrap_or_default();
        let samples = std::env::var("DFM_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(Bencher::default().samples);
        Bencher { filter, json_path, samples, ..Bencher::default() }
    }

    /// Time `f`, print one result line, and record the sample. The
    /// return value of `f` is passed through [`black_box`] so the
    /// optimiser cannot delete the work.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if !self.filter.is_empty() && !name.contains(&self.filter) {
            return;
        }
        // Warmup + calibration: run until sample_time has elapsed once,
        // counting iterations to size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.sample_time {
            black_box(f());
            warm_iters += 1;
        }
        let iters = warm_iters.max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let sample = Sample {
            name: name.to_string(),
            median_ns: median,
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            iters_per_sample: iters,
            samples: per_iter.len(),
            threads: dfm_par::thread_count(),
        };
        println!(
            "{name:<32} median {:>12}  (min {}, max {}, {} iters x {} samples)",
            fmt_ns(sample.median_ns),
            fmt_ns(sample.min_ns),
            fmt_ns(sample.max_ns),
            sample.iters_per_sample,
            sample.samples,
        );
        self.results.push(sample);
    }

    /// Records a named scalar observation (subject to the same
    /// substring filter as [`bench`](Bencher::bench), so a filtered run
    /// reports only its own gauges). Gauges land in a separate
    /// `"gauges"` key of the JSON report.
    pub fn gauge(&mut self, name: &str, value: f64) {
        if !self.filter.is_empty() && !name.contains(&self.filter) {
            return;
        }
        println!("{name:<32} gauge  {value}");
        self.gauges.push(Gauge { name: name.to_string(), value });
    }

    /// Results collected so far.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// Gauges collected so far.
    pub fn gauges(&self) -> &[Gauge] {
        &self.gauges
    }

    /// Render all results as JSON through the shared [`crate::json`]
    /// writer (hand-rolled — no serde). With no gauges this is a plain
    /// array of timing samples; with gauges it is an object
    /// `{"benches": [...], "gauges": [...]}` so scalar observations
    /// stay separate from timings.
    pub fn to_json(&self) -> String {
        use crate::json::JsonValue;
        let sample_json = |s: &Sample| {
            JsonValue::obj([
                ("name", JsonValue::str(&s.name)),
                ("median_ns", JsonValue::Num(s.median_ns)),
                ("min_ns", JsonValue::Num(s.min_ns)),
                ("max_ns", JsonValue::Num(s.max_ns)),
                ("iters_per_sample", JsonValue::Num(s.iters_per_sample as f64)),
                ("samples", JsonValue::Num(s.samples as f64)),
                ("threads", JsonValue::Num(s.threads as f64)),
            ])
        };
        let benches = JsonValue::Arr(self.results.iter().map(sample_json).collect());
        let doc = if self.gauges.is_empty() {
            benches
        } else {
            let gauges = JsonValue::Arr(
                self.gauges
                    .iter()
                    .map(|g| {
                        JsonValue::obj([
                            ("name", JsonValue::str(&g.name)),
                            ("value", JsonValue::Num(g.value)),
                        ])
                    })
                    .collect(),
            );
            JsonValue::obj([("benches", benches), ("gauges", gauges)])
        };
        let mut out = doc.render();
        out.push('\n');
        out
    }

    /// Write the JSON report if `DFM_BENCH_JSON` was set.
    pub fn finish(&self) {
        if self.json_path.is_empty() {
            return;
        }
        match std::fs::write(&self.json_path, self.to_json()) {
            Ok(()) => println!("wrote {} results to {}", self.results.len(), self.json_path),
            Err(e) => eprintln!("failed to write {}: {e}", self.json_path),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Bencher {
        Bencher {
            sample_time: Duration::from_micros(200),
            samples: 3,
            ..Bencher::default()
        }
    }

    #[test]
    fn bench_records_positive_median() {
        let mut b = quick();
        b.bench("sum", || (0..100u64).sum::<u64>());
        assert_eq!(b.results().len(), 1);
        let s = &b.results()[0];
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut b = quick();
        b.filter = "union".to_string();
        b.bench("drc_sweep", || 1);
        assert!(b.results().is_empty());
        b.bench("region_union", || 1);
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn json_is_well_formed() {
        let mut b = quick();
        b.bench("a", || 1);
        b.bench("b", || 2);
        let json = b.to_json();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"name\"").count(), 2);
        assert!(json.contains("\"median_ns\""));
        assert_eq!(json.matches("\"threads\"").count(), 2);
    }

    #[test]
    fn gauges_land_in_separate_json_key() {
        let mut b = quick();
        b.bench("timed", || 1);
        b.gauge("peak_tile_rects", 1234.0);
        let json = b.to_json();
        assert!(json.starts_with('{'));
        assert!(json.contains("\"benches\":["));
        assert!(json.contains("\"gauges\":["));
        assert!(json.contains("{\"name\":\"peak_tile_rects\",\"value\":1234}"));
        assert_eq!(b.gauges().len(), 1);
        // The gauge respects the filter like a bench does.
        b.filter = "xyz".into();
        b.gauge("other", 1.0);
        assert_eq!(b.gauges().len(), 1);
    }

    #[test]
    fn sample_records_effective_thread_count() {
        let mut b = quick();
        dfm_par::with_threads(3, || b.bench("threaded", || 1));
        assert_eq!(b.results()[0].threads, 3);
    }
}
