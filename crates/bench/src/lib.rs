//! # dfm-bench — experiment harness for the DFM reproduction
//!
//! One function per experiment (E1–E12 in `DESIGN.md`); each returns the
//! table/figure text it regenerates. The `experiments` binary prints
//! them; the integration tests assert their headline shapes; the
//! [`microbench`]-based benches (`benches/engines.rs`) time the
//! underlying engines with no external harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod designs;
pub mod e_litho;
pub mod e_pattern;
pub mod e_timing;
pub mod e_verdict;
pub mod e_yield;
pub mod json;
pub mod microbench;
pub mod table;

/// The type of one experiment generator.
pub type ExperimentFn = fn() -> String;

/// The experiment catalog: `(id, title, generator)` without running
/// anything.
pub fn catalog() -> Vec<(&'static str, &'static str, ExperimentFn)> {
    vec![
        ("e1", "Table 1: wire spreading & widening vs random-defect yield", e_yield::e1_spreading_widening as ExperimentFn),
        ("e2", "Table 2: redundant vias — hit or hype?", e_yield::e2_redundant_vias),
        ("e3", "Fig 1: process window — raw vs rule-OPC vs model-OPC", e_litho::e3_process_window),
        ("e4", "Table 3: pattern matching vs simulation for hotspot screening", e_litho::e4_hotspot_screening),
        ("e5", "Fig 2: layout pattern catalogs across designs", e_pattern::e5_catalogs),
        ("e6", "Table 4: double-patterning readiness scoring", e_pattern::e6_dpt),
        ("e7", "Fig 3: corner-based vs post-litho timing sign-off", e_timing::e7_timing),
        ("e8", "Table 5: the panel verdict — ROI of every technique", e_verdict::e8_verdicts),
        ("e9", "Fig 4: metal fill and density uniformity", e_yield::e9_fill),
        ("e10", "Table 6: recommended-rule compliance vs predicted yield", e_yield::e10_recommended_rules),
        ("e11", "Fig 5: pattern context radius and the PAT", e_litho::e11_pat),
        ("e12", "Table 7: Monte-Carlo validation of analytic critical area", e_yield::e12_monte_carlo),
    ]
}

/// Runs every experiment in order, returning `(id, title, output)`.
pub fn run_all() -> Vec<(&'static str, &'static str, String)> {
    catalog()
        .into_iter()
        .map(|(id, title, gen)| (id, title, gen()))
        .collect()
}

/// Runs one experiment by id (`"e1"`…`"e12"`), if it exists.
pub fn run_one(id: &str) -> Option<(&'static str, String)> {
    catalog()
        .into_iter()
        .find(|(eid, _, _)| *eid == id)
        .map(|(_, title, gen)| (title, gen()))
}
