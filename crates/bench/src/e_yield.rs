//! Yield-centred experiments: E1, E2, E9, E10, E12.

use crate::designs;
use crate::table::{f, pct, Table};
use dfm_core::{DfmTechnique, EvaluationContext, MetalFill, RedundantViaInsertion, WireSpreading, WireWidening};
use dfm_layout::{layers, FlatLayout, Technology};
use dfm_yield::{critical_area, model, monte_carlo, via_model, DefectModel};

/// E1 (Table 1): does spreading/widening buy random-defect yield?
///
/// For three routing densities, measures short/open critical area before
/// and after wire spreading, wire widening, and both, and the Poisson
/// yield at a sweep of defect densities.
pub fn e1_spreading_widening() -> String {
    let tech = Technology::n65();
    let defects = DefectModel::new(tech.rules(layers::METAL1).min_width / 2, 1.0);
    let d0_sweep = [2_000.0, 10_000.0, 40_000.0];

    let mut out = String::new();
    let mut table = Table::new([
        "design", "variant", "short CA (µm²)", "open CA (µm²)",
        "Y@2k/cm²", "Y@10k/cm²", "Y@40k/cm²",
    ]);

    for (name, flat) in [
        ("sparse", designs::sparse(&tech, 101)),
        ("default", designs::reference(&tech, 101)),
        ("dense", designs::dense(&tech, 101)),
    ] {
        let ctx = EvaluationContext::for_technology(tech.clone());
        let spread = WireSpreading::from_context(&ctx).apply(&flat, &tech).layout;
        let widen = WireWidening::from_context(&ctx).apply(&flat, &tech).layout;
        let both_tmp = WireSpreading::from_context(&ctx).apply(&flat, &tech).layout;
        let both = WireWidening::from_context(&ctx).apply(&both_tmp, &tech).layout;

        for (variant, layout) in [
            ("as-drawn", &flat),
            ("spread", &spread),
            ("widened", &widen),
            ("spread+widened", &both),
        ] {
            let ca_m1 = critical_area::analyze(&layout.region(layers::METAL1), &defects);
            let ca_m2 = critical_area::analyze(&layout.region(layers::METAL2), &defects);
            let short = ca_m1.short_ca_nm2 + ca_m2.short_ca_nm2;
            let open = ca_m1.open_ca_nm2 + ca_m2.open_ca_nm2;
            let ys: Vec<String> = d0_sweep
                .iter()
                .map(|&d0| pct(model::poisson_yield(short + open, d0)))
                .collect();
            table.row([
                name.to_string(),
                variant.to_string(),
                f(short / 1e6, 3),
                f(open / 1e6, 3),
                ys[0].clone(),
                ys[1].clone(),
                ys[2].clone(),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nshape expectation: widening trades short CA for a larger cut in open\n\
         CA and wins at every defect density; spreading only helps where wires\n\
         are via-free and corridors are unbalanced (the sparse design), a\n\
         panel-relevant nuance: on dense uniform routing it is nearly inert.\n",
    );
    out
}

/// E2 (Table 2): redundant vias across via failure rates.
pub fn e2_redundant_vias() -> String {
    let tech = Technology::n65();
    let flat = designs::reference(&tech, 202);
    let rvi = RedundantViaInsertion::for_technology(&tech);
    let applied = rvi.apply(&flat, &tech);

    let pair = tech.via_space * 2;
    let before = via_model::classify(&flat.region(layers::VIA1), pair);
    let after = via_model::classify(&applied.layout.region(layers::VIA1), pair);
    let area_before = flat.total_area();
    let area_after = applied.layout.total_area();

    let mut out = String::new();
    out.push_str(&format!(
        "connections: {} ({} single, {} redundant) -> ({} single, {} redundant)\n",
        before.connections(),
        before.single,
        before.redundant,
        after.single,
        after.redundant
    ));
    out.push_str(&format!(
        "redundancy rate: {} -> {}   area cost: {:+.3}%\n\n",
        pct(before.redundancy_rate()),
        pct(after.redundancy_rate()),
        (area_after - area_before) as f64 / area_before as f64 * 100.0
    ));

    let mut table = Table::new([
        "via fail prob", "yield before", "yield after", "gain (pp)", "fail λ before", "fail λ after",
    ]);
    for p in [1e-8, 1e-7, 1e-6, 1e-5, 1e-4] {
        let yb = via_model::via_yield(before, p);
        let ya = via_model::via_yield(after, p);
        table.row([
            format!("{p:.0e}"),
            pct(yb),
            pct(ya),
            f((ya - yb) * 100.0, 4),
            f(via_model::expected_failures(before, p), 5),
            f(via_model::expected_failures(after, p), 5),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\nshape expectation: gain grows superlinearly with fail probability while\nthe drawn-area cost stays a few percent (pad straps).\n");
    out
}

/// E9 (Fig 4): metal fill and density uniformity.
pub fn e9_fill() -> String {
    let tech = Technology::n65();
    let flat = designs::sparse(&tech, 909);
    let ctx = EvaluationContext::for_technology(tech.clone());
    let filler = MetalFill::from_context(&ctx);
    let applied = filler.apply(&flat, &tech);

    let mut out = String::new();
    let mut table = Table::new(["layer", "min density before", "min after", "max after", "fill shapes"]);
    for (metal, fill) in [
        (layers::METAL1, layers::FILL_M1),
        (layers::METAL2, layers::FILL_M2),
    ] {
        let (min_b, _) = dfm_core::fill_density_extremes(&flat, metal, fill, tech.density_window);
        let (min_a, max_a) =
            dfm_core::fill_density_extremes(&applied.layout, metal, fill, tech.density_window);
        table.row([
            format!("{metal}"),
            pct(min_b),
            pct(min_a),
            pct(max_a),
            applied.layout.region(fill).rect_count().to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!("\nfill target window: ≥ {}\n", pct(tech.min_density)));
    out.push_str("shape expectation: minimum window density rises toward the target;\nmaximum stays below the ceiling.\n");
    out
}

/// E10 (Table 6): does recommended-rule compliance correlate with
/// predicted yield?
pub fn e10_recommended_rules() -> String {
    let tech = Technology::n65();
    let deck = dfm_drc::recommended::RecommendedDeck::for_technology(&tech);
    let defects = DefectModel::new(tech.rules(layers::METAL1).min_width / 2, 20_000.0);

    let ctx = EvaluationContext::for_technology(tech.clone());
    // Layout variants spanning a compliance range.
    let base = designs::reference(&tech, 1010);
    let widened = WireWidening::from_context(&ctx).apply(&base, &tech).layout;
    let variants: Vec<(String, FlatLayout)> = vec![
        ("dense".into(), designs::dense(&tech, 1010)),
        ("default".into(), base),
        ("default+widen".into(), widened),
        ("sparse".into(), designs::sparse(&tech, 1010)),
    ];

    let mut scores = Vec::new();
    let mut yields = Vec::new();
    let mut table = Table::new(["variant", "compliance", "total CA (µm²)", "yield @20k/cm²"]);
    for (name, flat) in &variants {
        let compliance = deck.compliance(flat).composite();
        let ca = critical_area::analyze(&flat.region(layers::METAL1), &defects).total_ca_nm2()
            + critical_area::analyze(&flat.region(layers::METAL2), &defects).total_ca_nm2();
        let y = model::poisson_yield(ca, defects.d0_per_cm2);
        scores.push(compliance);
        yields.push(y);
        table.row([name.clone(), f(compliance, 4), f(ca / 1e6, 3), pct(y)]);
    }
    let rho = dfm_timing::spearman_rank_correlation(&scores, &yields);
    let mut out = table.render();
    out.push_str(&format!("\nSpearman(compliance, yield) = {rho:.3}\n"));
    out.push_str("shape expectation: positive rank correlation — Kahng's position holds.\n");
    out
}

/// E12 (Table 7): Monte-Carlo vs analytic short critical area.
pub fn e12_monte_carlo() -> String {
    let tech = Technology::n65();
    let defects = DefectModel::new(tech.rules(layers::METAL1).min_width / 2, 1.0);
    let mut table = Table::new([
        "design", "analytic CA (µm²)", "MC CA (µm²)", "std err", "agreement",
    ]);

    let mut cases: Vec<(String, dfm_geom::Region)> = vec![(
        "parallel wires".into(),
        dfm_geom::Region::from_rects([
            dfm_geom::Rect::new(0, 0, 100_000, 200),
            dfm_geom::Rect::new(0, 300, 100_000, 500),
        ]),
    )];
    for (name, flat) in [
        ("routed default", designs::reference(&tech, 1212)),
        ("routed dense", designs::dense(&tech, 1212)),
    ] {
        cases.push((name.into(), flat.region(layers::METAL1)));
    }

    for (name, region) in cases {
        let analytic = critical_area::analyze(&region, &defects).short_ca_nm2;
        let mc = monte_carlo::estimate_short_ca(&region, &defects, 120_000, 77);
        // The analytic model sums per-pair contributions (a union bound):
        // on multi-wire geometry a large defect bridging several pairs is
        // counted once by MC but several times by the sum, so MC ≤
        // analytic with the gap growing with density.
        let ratio = mc.short_ca_nm2 / analytic.max(1e-9);
        let ok = mc.short_ca_nm2 <= analytic + 4.0 * mc.std_err_nm2 && ratio >= 0.75;
        table.row([
            name,
            f(analytic / 1e6, 4),
            f(mc.short_ca_nm2 / 1e6, 4),
            f(mc.std_err_nm2 / 1e6, 4),
            if ok { format!("OK (MC/analytic {ratio:.3})") } else { format!("FAIL ({ratio:.3})") },
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nshape expectation: MC matches the closed form on isolated pairs and\n\
         sits slightly below it on dense geometry (the analytic sum is a\n\
         union bound over overlapping kill events).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_closed_form_agrees_with_mc() {
        let text = e12_monte_carlo();
        // Every row agrees.
        assert!(!text.contains("FAIL"), "{text}");
    }
}
