//! Pattern- and decomposition-centred experiments: E5, E6.

use crate::designs;
use crate::table::{f, pct, Table};
use dfm_dpt::{decompose, score, DptParams};
use dfm_layout::generate::{self, RoutedBlockParams};
use dfm_layout::{layers, Technology};
use dfm_pattern::catalog::{anchors, Catalog};

/// E5 (Fig 2): via-enclosure pattern catalogs across three designs.
pub fn e5_catalogs() -> String {
    let tech = Technology::n65();
    // Window sized to the via pad plus immediate wire context; snap at
    // one sixth of the minimum width so pad/wire variants merge into
    // enclosure categories rather than per-instance patterns.
    let radius = tech.via_size / 2 + tech.via_enclosure + tech.rules(layers::METAL1).min_width;
    let snap = tech.rules(layers::METAL1).min_width / 6;

    let build = |flat: &dfm_layout::FlatLayout| -> Catalog {
        let vias = flat.region(layers::VIA1);
        let m1 = flat.region(layers::METAL1);
        let m2 = flat.region(layers::METAL2);
        let pts = anchors::rect_centers(&vias);
        Catalog::build(&[&vias, &m1, &m2], &pts, radius, snap)
    };

    let designs_list = [
        ("65nm product-A", designs::reference(&tech, 505)),
        ("65nm product-B", designs::reference(&tech, 606)),
        ("45nm port", designs::reference(&Technology::n45(), 505)),
    ];
    let catalogs: Vec<(&str, Catalog)> =
        designs_list.iter().map(|(n, f)| (*n, build(f))).collect();

    let mut out = String::new();
    let mut table = Table::new(["design", "vias", "classes", "top-1", "top-10", "top-20"]);
    for (name, c) in &catalogs {
        table.row([
            name.to_string(),
            c.total().to_string(),
            c.class_count().to_string(),
            pct(c.coverage_top_k(1)),
            pct(c.coverage_top_k(10)),
            pct(c.coverage_top_k(20)),
        ]);
    }
    out.push_str(&table.render());

    out.push_str("\nKL divergence matrix (nats):\n");
    let mut kl = Table::new(["D(row‖col)", "65nm product-A", "65nm product-B", "45nm port"]);
    for (name, a) in &catalogs {
        let mut row = vec![name.to_string()];
        for (_, b) in &catalogs {
            row.push(f(a.kl_divergence(b), 4));
        }
        kl.row(row);
    }
    out.push_str(&kl.render());

    // Ablation (DESIGN.md): catalog context radius vs catalog size, on
    // the design where it bites — the cross-node port fragments under
    // the 65 nm-tuned radius because the oversized window sweeps in
    // unrelated neighbours (the E11 context-size lesson at catalog
    // scale). Re-tuning the radius to the port's own pad size collapses
    // the catalog back to a handful of classes.
    let port_tech = Technology::n45();
    let port_radius =
        port_tech.via_size / 2 + port_tech.via_enclosure + port_tech.rules(layers::METAL1).min_width;
    out.push_str("\ncontext-radius ablation on the 45nm port:\n");
    let mut ab = Table::new(["radius (nm)", "classes", "top-10 coverage"]);
    let flat_port = &designs_list[2].1;
    let vias = flat_port.region(layers::VIA1);
    let m1 = flat_port.region(layers::METAL1);
    let m2 = flat_port.region(layers::METAL2);
    let pts = anchors::rect_centers(&vias);
    let mut radii = [port_radius, port_radius * 3 / 2, radius, radius * 3 / 2];
    radii.sort_unstable();
    for r in radii {
        let c = Catalog::build(&[&vias, &m1, &m2], &pts, r, snap);
        ab.row([
            r.to_string(),
            c.class_count().to_string(),
            pct(c.coverage_top_k(10)),
        ]);
    }
    out.push_str(&ab.render());

    // Outliers: the 45 nm port vs the 65 nm baseline.
    let outliers = catalogs[2].1.outliers_vs(&catalogs[0].1, 4.0);
    out.push_str(&format!(
        "\noutlier classes in 45nm port vs 65nm product-A (≥4x expected): {}\n",
        outliers.len()
    ));
    out.push_str(
        "shape expectation: a handful of head classes covers ≥90% of vias;\n\
         products on the same node have near-zero mutual KL while the port\n\
         to another node diverges by orders of magnitude more.\n",
    );
    out
}

/// E6 (Table 4): double-patterning readiness of layout variants.
pub fn e6_dpt() -> String {
    let tech = Technology::n45();
    let params = DptParams::for_min_space(tech.rules(layers::METAL1).min_space);

    let variants: Vec<(&str, RoutedBlockParams)> = vec![
        (
            "regular (no jogs)",
            RoutedBlockParams { jog_prob: 0.0, ..RoutedBlockParams::dense() },
        ),
        ("default jogs", RoutedBlockParams::dense()),
        (
            "heavy jogs",
            RoutedBlockParams { jog_prob: 0.5, ..RoutedBlockParams::dense() },
        ),
    ];

    let mut out = String::new();
    let mut table = Table::new([
        "layout", "features", "stitches", "conflicts", "balance", "composite score",
    ]);
    let mut scores = Vec::new();
    for (name, p) in variants {
        let p = RoutedBlockParams { width: 20_000, height: 20_000, ..p };
        let lib = generate::routed_block(&tech, p, 616);
        let flat = designs::flatten(&lib);
        let layer = flat.region(layers::METAL1);
        let features = layer.connected_components().len();
        let d = decompose(&layer, params);
        let s = score::evaluate(&d, &layer, params);
        scores.push(s.composite());
        table.row([
            name.to_string(),
            features.to_string(),
            d.stitches.len().to_string(),
            d.conflicts.len().to_string(),
            f(s.density_balance, 3),
            f(s.composite(), 3),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nshape expectation: regularised layout scores highest (the\n\
         0.53 -> 0.70 'eliminate the stitches' motif); jog-heavy layout\n\
         scores lowest.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_same_generator_kl_is_smallest() {
        let text = e5_catalogs();
        assert!(text.contains("KL divergence"));
        // Top-10 coverage high for the regular generator output.
        assert!(text.contains("%"));
    }
}
