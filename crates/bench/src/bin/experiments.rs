//! Regenerates every table and figure of the reproduction.
//!
//! ```text
//! experiments            # run all of E1..E12
//! experiments e4 e7      # run a subset
//! experiments --list     # list experiment ids and titles
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for (id, title, _) in dfm_bench::catalog() {
            println!("{id:<5} {title}");
        }
        return;
    }
    let wanted: Vec<String> = args.iter().filter(|a| !a.starts_with('-')).cloned().collect();

    if wanted.is_empty() {
        for (id, title, out) in dfm_bench::run_all() {
            print_experiment(id, title, &out);
        }
    } else {
        for id in &wanted {
            match dfm_bench::run_one(id) {
                Some((title, out)) => print_experiment(id, title, &out),
                None => eprintln!("unknown experiment {id:?}; try --list"),
            }
        }
    }
}

fn print_experiment(id: &str, title: &str, out: &str) {
    println!("\n=== {} — {title} ===\n", id.to_uppercase());
    println!("{out}");
}
