//! Timing experiment: E7.

use crate::table::{f, Table};
use dfm_litho::{Condition, LithoSimulator};
use dfm_timing::{extract, spearman_rank_correlation, sta, DelayModel, Netlist};

/// E7 (Fig 3): corner-based versus post-litho-extraction timing.
///
/// Reproduces the DAC 2005 motif: feeding as-printed gate lengths into
/// STA moves the worst slack by tens of percent and reorders the
/// critical endpoints relative to uniform-corner analysis.
pub fn e7_timing() -> String {
    let netlist = Netlist::random(12, 16, 707);
    let model = DelayModel::default();
    let sim = LithoSimulator::for_feature_size(75); // 60 nm gates near the cliff
    let clock_ps = 700.0;

    let runs: Vec<(&str, Vec<f64>)> = vec![
        ("drawn (nominal)", extract::drawn(&netlist)),
        ("corner +10% L", extract::corner(&netlist, 0.10)),
        ("post-litho @focus", extract::post_litho(&netlist, &sim, Condition::nominal())),
        (
            "post-litho @120nm defocus",
            extract::post_litho(&netlist, &sim, Condition::with_defocus(120.0)),
        ),
        ("Monte-Carlo σ=4%", extract::monte_carlo(&netlist, 0.04, 7)),
    ];

    let mut table = Table::new([
        "extraction", "worst slack (ps)", "Δ vs corner", "leakage (µA)", "rank ρ vs corner",
    ]);
    let corner_result = sta::run(&netlist, &runs[1].1, &model, clock_ps);
    let corner_slacks = sta::slack_by_output(&corner_result);

    let mut worst_deltas = Vec::new();
    for (name, lengths) in &runs {
        let result = sta::run(&netlist, lengths, &model, clock_ps);
        let slacks = sta::slack_by_output(&result);
        let rho = spearman_rank_correlation(&corner_slacks, &slacks);
        let delta = if corner_result.worst_slack.abs() > 1e-9 {
            (result.worst_slack - corner_result.worst_slack) / corner_result.worst_slack.abs()
                * 100.0
        } else {
            0.0
        };
        worst_deltas.push((name.to_string(), delta));
        table.row([
            name.to_string(),
            f(result.worst_slack, 1),
            format!("{delta:+.1}%"),
            f(result.leakage_na / 1000.0, 2),
            f(rho, 3),
        ]);
    }

    let mut out = table.render();
    let post = worst_deltas
        .iter()
        .find(|(n, _)| n.starts_with("post-litho @focus"))
        .map(|(_, d)| *d)
        .unwrap_or(0.0);
    out.push_str(&format!(
        "\npost-litho worst-slack shift vs corner: {post:+.1}% (paper motif: tens of percent)\n"
    ));
    out.push_str(
        "shape expectation: post-litho slack differs sharply from the uniform\n\
         corner; endpoint ranking reorders (ρ < 1); defocus worsens both.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_reports_all_runs() {
        let text = e7_timing();
        for name in ["drawn", "corner", "post-litho @focus", "Monte-Carlo"] {
            assert!(text.contains(name), "{text}");
        }
    }
}
