//! Lithography-centred experiments: E3, E4, E11.

use crate::designs;
use crate::table::{f, pct, Table};
use dfm_geom::{Point, Rect, Region};
use dfm_layout::{layers, Technology};
use dfm_litho::hotspots::{find_hotspots, HotspotParams};
use dfm_litho::process_window::{bossung, depth_of_focus, process_window_fraction, CutAxis, CutSpec};
use dfm_litho::{Condition, LithoSimulator};
use dfm_opc::{ModelOpc, RuleOpc, RuleOpcParams};
use dfm_pattern::pat::{accuracy, PatTree};
use dfm_pattern::PatternLibrary;
use std::time::Instant;

/// E3 (Fig 1): process window of dense and isolated lines under no OPC,
/// rule-based OPC, and model-based OPC.
pub fn e3_process_window() -> String {
    // 70 nm drawn features imaged with a 90 nm-class PSF: the aggressive
    // regime where raw printing is visibly biased and OPC earns its keep.
    let w: i64 = 70;
    let sim = LithoSimulator::for_feature_size(90);
    let doses: Vec<f64> = vec![0.92, 0.96, 1.0, 1.04, 1.08];
    let defoci: Vec<f64> = (0..6).map(|i| i as f64 * 40.0).collect();

    // Structures: dense grating (pitch 2w) and isolated line.
    let mut dense_rects = Vec::new();
    for i in 0..7i64 {
        dense_rects.push(Rect::new(0, i * 2 * w, 40 * w, i * 2 * w + w));
    }
    let dense = Region::from_rects(dense_rects);
    let dense_cut = CutSpec { at: Point::new(20 * w, 6 * w + w / 2), axis: CutAxis::Vertical };
    let iso = Region::from_rect(Rect::new(0, 0, 40 * w, w));
    let iso_cut = CutSpec { at: Point::new(20 * w, w / 2), axis: CutAxis::Vertical };

    // Calibrate the rule table the way fabs did: measure the raw iso
    // bias on a test structure and bias by half the measured loss.
    let iso_probe = sim.printed(&iso, Condition::nominal());
    let raw_iso_cd = iso_cut.measure(&iso_probe).unwrap_or(w);
    let measured_loss = (w - raw_iso_cd).max(0);
    let rule_opc = RuleOpc::new(RuleOpcParams {
        narrow_bias: 0,
        iso_bias: measured_loss / 2,
        ..RuleOpcParams::for_feature_size(w)
    });
    let model_opc = ModelOpc::new(sim.clone());

    let mut table = Table::new([
        "structure", "mask", "nominal CD", "PW fraction (±10%)", "DoF (nm)",
    ]);
    for (sname, drawn, cut) in [("dense", &dense, dense_cut), ("iso", &iso, iso_cut)] {
        let masks: Vec<(&str, Region)> = vec![
            ("raw", drawn.clone()),
            ("rule-OPC", rule_opc.correct(drawn)),
            ("model-OPC", model_opc.correct(drawn).mask),
        ];
        for (mname, mask) in masks {
            let points = bossung(&sim, &mask, cut, &doses, &defoci);
            let nominal_cd = points
                .iter()
                .find(|p| p.condition == Condition::nominal())
                .and_then(|p| p.cd);
            let frac = process_window_fraction(&points, w, 0.10);
            let dof = depth_of_focus(&points, w, 0.10);
            table.row([
                sname.to_string(),
                mname.to_string(),
                nominal_cd.map_or("gone".into(), |c| c.to_string()),
                f(frac, 3),
                f(dof, 0),
            ]);
        }
    }
    let mut out = table.render();

    // Ablation (DESIGN.md): model-OPC fragment length vs residual EPE,
    // evaluated with one fixed fine sampling for fairness.
    out.push_str("\nfragment-length ablation (model-OPC on the iso line):\n");
    let mut ab = Table::new(["fragment len (nm)", "fragments", "EPE rms after (nm)", "max |EPE|"]);
    for frac in [1.0, 2.0, 4.0] {
        let sigma = sim.optics.sigma0_nm();
        let flen = (frac * sigma) as i64;
        let mut engine = ModelOpc::new(sim.clone());
        engine.fragment_len = flen;
        engine.iterations = 10;
        let result = engine.correct(&iso);
        let printed = sim.printed(&result.mask, Condition::nominal());
        let samples =
            dfm_litho::metrics::edge_placement_errors(&iso, &printed, w / 2, w / 4);
        let summary = dfm_litho::metrics::summarize_epe(&samples);
        let frag_count = dfm_opc::Fragmenter::new(flen).fragment(&iso).len();
        ab.row([
            flen.to_string(),
            frag_count.to_string(),
            f(summary.rms, 2),
            summary.max_abs.to_string(),
        ]);
    }
    out.push_str(&ab.render());

    out.push_str(
        "\nshape expectation: both OPC generations recover the isolated line's\n\
         window (raw is the clear loser); the calibrated rule table's\n\
         deliberate overshoot even buys extra focus margin on this 1-D\n\
         structure — model-based OPC's decisive edge is on 2-D constructs\n\
         (line ends and hotspots, Table 3), which is precisely why the panel\n\
         era moved to model-based for logic while keeping rules for gratings.\n",
    );
    out
}

/// E4 (Table 3): pattern-match screening vs full simulation.
///
/// Golden hotspots come from litho simulation at defocus; a pattern
/// library is learned from the left half of the design and evaluated on
/// the right half, reporting recall/precision and runtime speedup.
pub fn e4_hotspot_screening() -> String {
    let tech = Technology::n45();
    let flat = designs::dense(&tech, 404);
    let m1 = flat.region(layers::METAL1);
    let w = tech.rules(layers::METAL1).min_width;
    // Stress condition: heavy defocus makes marginal geometry fail.
    let sim = LithoSimulator::for_feature_size((w * 14 / 10).max(60));
    let cond = Condition::with_defocus(140.0);
    let params = HotspotParams::for_min_width(w);

    let t_sim = Instant::now();
    let golden = find_hotspots(&sim, &m1, cond, params);
    let sim_ms = t_sim.elapsed().as_secs_f64() * 1e3;

    let bbox = m1.bbox();
    let mid_x = bbox.x0 + bbox.width() / 2;
    let (train, test): (
        Vec<&dfm_litho::hotspots::Hotspot>,
        Vec<&dfm_litho::hotspots::Hotspot>,
    ) = golden.iter().partition(|h| h.location.center().x < mid_x);

    // Learn the library from training hotspots. The context window is
    // deliberately tight (the failing construct plus its immediate
    // neighbours) with a generous dimension tolerance — wide windows with
    // tight tolerances make every occurrence its own pattern and recall
    // collapses (the E11 radius trade-off).
    let radius = 5 * w / 2;
    let mut library: PatternLibrary<()> = PatternLibrary::new(radius, w / 3, w / 2);
    for h in &train {
        library.learn(&[&m1], h.location.center(), ());
    }

    // Scan anchors: all golden test locations (recall) + a grid of clean
    // anchors (precision / false alarms).
    let mut anchors: Vec<Point> = test.iter().map(|h| h.location.center()).collect();
    let n_true = anchors.len();
    let mut clean = 0usize;
    let step = 40 * w;
    let mut y = bbox.y0;
    while y < bbox.y1 {
        let mut x = mid_x;
        while x < bbox.x1 {
            let p = Point::new(x, y);
            if !golden.iter().any(|h| h.location.expanded(radius).contains(p)) {
                anchors.push(p);
                clean += 1;
            }
            x += step;
        }
        y += step;
    }

    let t_scan = Instant::now();
    let matches = library.scan(&[&m1], &anchors);
    let scan_ms = t_scan.elapsed().as_secs_f64() * 1e3;

    let hits_true = matches.iter().filter(|m| anchors[..n_true].contains(&m.at)).count();
    let hits_clean = matches.len() - hits_true;
    let recall = if n_true > 0 { hits_true as f64 / n_true as f64 } else { 1.0 };
    let false_alarm = if clean > 0 { hits_clean as f64 / clean as f64 } else { 0.0 };

    let mut out = String::new();
    let mut table = Table::new(["metric", "value"]);
    table.row(["golden hotspots (whole design)", &golden.len().to_string()]);
    table.row(["training hotspots (left half)", &train.len().to_string()]);
    table.row(["library patterns after dedup", &library.len().to_string()]);
    table.row(["test hotspots (right half)", &n_true.to_string()]);
    table.row(["recall on test hotspots", &pct(recall)]);
    table.row(["false-alarm rate on clean sites", &pct(false_alarm)]);
    table.row(["simulation runtime (ms)", &f(sim_ms, 1)]);
    table.row(["pattern-scan runtime (ms)", &f(scan_ms, 1)]);
    table.row([
        "speedup",
        &format!("{:.1}x", sim_ms / scan_ms.max(0.001)),
    ]);
    out.push_str(&table.render());
    out.push_str(
        "\nshape expectation: high recall at near-zero false alarms, with a\n\
         large runtime advantage — Capodieci's screening position.\n",
    );
    out
}

/// E11 (Fig 5): context radius and the Pattern Association Tree.
pub fn e11_pat() -> String {
    // A synthetic labelled problem where hotspot-ness depends on a
    // neighbour outside the small radius: squares with a close partner
    // (visible only at radius ≥ 400) are "bad".
    let mut rects = Vec::new();
    let mut anchors = Vec::new();
    let mut labels = Vec::new();
    for i in 0..40i64 {
        let c = Point::new(i * 5_000, 0);
        rects.push(Rect::centered_at(c, 120, 120));
        anchors.push(c);
        labels.push(false);
        let c2 = Point::new(i * 5_000, 30_000);
        rects.push(Rect::centered_at(c2, 120, 120));
        rects.push(Rect::centered_at(c2 + dfm_geom::Vector::new(320, 0), 120, 120));
        anchors.push(c2);
        labels.push(true);
    }
    let layout = Region::from_rects(rects);
    let layers_ref: [&Region; 1] = [&layout];

    let mut table = Table::new(["configuration", "nodes/level", "accuracy", "max effective radius"]);
    for (name, radii) in [
        ("fixed r=150", vec![150i64]),
        ("fixed r=400", vec![400i64]),
        ("fixed r=800", vec![800i64]),
        ("PAT {150,400,800}", vec![150, 400, 800]),
    ] {
        let tree = PatTree::train(&layers_ref, &anchors, &labels, &radii, 1, 0.95);
        let acc = accuracy(&tree, &layers_ref, &anchors, &labels);
        let max_eff = anchors
            .iter()
            .filter_map(|&a| tree.effective_radius(&layers_ref, a))
            .max()
            .unwrap_or(0);
        table.row([
            name.to_string(),
            format!("{:?}", tree.nodes_per_level()),
            pct(acc),
            max_eff.to_string(),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nshape expectation: the small fixed radius cannot separate the\n\
         classes; the PAT reaches full accuracy while stopping at the\n\
         smallest decisive radius per pattern.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_pat_beats_small_fixed_radius() {
        let text = e11_pat();
        // The PAT row reaches 100%.
        let pat_line = text
            .lines()
            .find(|l| l.starts_with("PAT"))
            .expect("PAT row present");
        assert!(pat_line.contains("100.00%"), "{text}");
        let small = text
            .lines()
            .find(|l| l.starts_with("fixed r=150"))
            .expect("fixed row");
        assert!(!small.contains("100.00%"), "{text}");
    }
}
