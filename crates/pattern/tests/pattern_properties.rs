//! Property-based tests for topological pattern invariants.

use dfm_geom::{Point, Rect, Region, Rotation, Transform, Vector};
use dfm_pattern::TopoPattern;
use proptest::prelude::*;

fn arb_clip() -> impl Strategy<Value = Region> {
    prop::collection::vec((-3i64..3, -3i64..3, 1i64..4, 1i64..4), 1..6).prop_map(|specs| {
        Region::from_rects(specs.into_iter().map(|(x, y, w, h)| {
            Rect::new(x * 60, y * 60, x * 60 + w * 45, y * 60 + h * 45)
        }))
    })
}

fn window() -> Rect {
    Rect::centered_at(Point::origin(), 800, 800)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonicalisation is invariant under every D4 symmetry of the clip.
    #[test]
    fn canonical_is_d4_invariant(clip in arb_clip(), q in 0u8..4, m in any::<bool>()) {
        let t = Transform::new(Vector::zero(), Rotation::from_quarter_turns(q), m);
        let moved = Region::from_rects(clip.rects().iter().map(|&r| t.apply_rect(r)));
        let a = TopoPattern::encode(&[&clip], window()).canonical();
        let b = TopoPattern::encode(&[&moved], window()).canonical();
        prop_assert_eq!(a, b);
    }

    /// Encoding is translation-invariant when the window moves with the
    /// geometry.
    #[test]
    fn encoding_is_translation_invariant(clip in arb_clip(), dx in -5000i64..5000, dy in -5000i64..5000) {
        let v = Vector::new(dx, dy);
        let moved = clip.translated(v);
        let a = TopoPattern::encode(&[&clip], window());
        let b = TopoPattern::encode(&[&moved], window().translated(v));
        prop_assert_eq!(a, b);
    }

    /// `matches` is reflexive at any tolerance and symmetric.
    #[test]
    fn matches_reflexive_and_symmetric(a in arb_clip(), b in arb_clip(), eps in 0i64..30) {
        let pa = TopoPattern::encode(&[&a], window());
        let pb = TopoPattern::encode(&[&b], window());
        prop_assert!(pa.matches(&pa, eps));
        prop_assert_eq!(pa.matches(&pb, eps), pb.matches(&pa, eps));
    }

    /// Equal canonical forms have equal topology digests, and matching at
    /// zero tolerance implies canonical equality.
    #[test]
    fn digest_consistency(a in arb_clip(), b in arb_clip()) {
        let pa = TopoPattern::encode(&[&a], window()).canonical();
        let pb = TopoPattern::encode(&[&b], window()).canonical();
        if pa == pb {
            prop_assert_eq!(pa.topology_digest(), pb.topology_digest());
        }
        if pa.matches(&pb, 0) {
            prop_assert_eq!(pa, pb);
        }
    }

    /// The dimension vectors always sum to the window extent.
    #[test]
    fn dims_cover_window(clip in arb_clip()) {
        let p = TopoPattern::encode(&[&clip], window());
        let (w, h) = p.extent();
        prop_assert_eq!(w, window().width());
        prop_assert_eq!(h, window().height());
    }

    /// Persistence round-trip via the raw-parts API preserves equality.
    #[test]
    fn raw_parts_roundtrip(clip in arb_clip()) {
        let p = TopoPattern::encode(&[&clip], window());
        let q = TopoPattern::from_raw_parts(
            p.nx(),
            p.ny(),
            p.cells_raw().to_vec(),
            p.dims_x_raw().to_vec(),
            p.dims_y_raw().to_vec(),
        )
        .expect("valid parts");
        prop_assert_eq!(p, q);
    }
}
