//! Property-based tests for topological pattern invariants
//! (dfm-check harness).

use dfm_check::{bools, check, prop_assert, prop_assert_eq, Config, Gen};
use dfm_geom::{Point, Rect, Region, Rotation, Transform, Vector};
use dfm_pattern::TopoPattern;

fn cfg() -> Config {
    Config::with_cases(64)
}

fn arb_clip() -> impl Gen<Value = Region> {
    dfm_check::vec((-3i64..3, -3i64..3, 1i64..4, 1i64..4), 1..6).prop_map(|specs| {
        Region::from_rects(specs.into_iter().map(|(x, y, w, h)| {
            Rect::new(x * 60, y * 60, x * 60 + w * 45, y * 60 + h * 45)
        }))
    })
}

fn window() -> Rect {
    Rect::centered_at(Point::origin(), 800, 800)
}

/// Canonicalisation is invariant under every D4 symmetry of the clip.
#[test]
fn canonical_is_d4_invariant() {
    check(
        "canonical_is_d4_invariant",
        &cfg(),
        &(arb_clip(), 0u8..4, bools()),
        |v| {
            let (clip, q, m) = v;
            let t = Transform::new(Vector::zero(), Rotation::from_quarter_turns(*q), *m);
            let moved = Region::from_rects(clip.rects().iter().map(|&r| t.apply_rect(r)));
            let a = TopoPattern::encode(&[clip], window()).canonical();
            let b = TopoPattern::encode(&[&moved], window()).canonical();
            prop_assert_eq!(a, b);
            Ok(())
        },
    );
}

/// Encoding is translation-invariant when the window moves with the
/// geometry.
#[test]
fn encoding_is_translation_invariant() {
    check(
        "encoding_is_translation_invariant",
        &cfg(),
        &(arb_clip(), -5000i64..5000, -5000i64..5000),
        |v| {
            let (clip, dx, dy) = v;
            let shift = Vector::new(*dx, *dy);
            let moved = clip.translated(shift);
            let a = TopoPattern::encode(&[clip], window());
            let b = TopoPattern::encode(&[&moved], window().translated(shift));
            prop_assert_eq!(a, b);
            Ok(())
        },
    );
}

/// `matches` is reflexive at any tolerance and symmetric.
#[test]
fn matches_reflexive_and_symmetric() {
    check(
        "matches_reflexive_and_symmetric",
        &cfg(),
        &(arb_clip(), arb_clip(), 0i64..30),
        |v| {
            let (a, b, eps) = v;
            let pa = TopoPattern::encode(&[a], window());
            let pb = TopoPattern::encode(&[b], window());
            prop_assert!(pa.matches(&pa, *eps));
            prop_assert_eq!(pa.matches(&pb, *eps), pb.matches(&pa, *eps));
            Ok(())
        },
    );
}

/// Equal canonical forms have equal topology digests, and matching at
/// zero tolerance implies canonical equality.
#[test]
fn digest_consistency() {
    check("digest_consistency", &cfg(), &(arb_clip(), arb_clip()), |v| {
        let (a, b) = v;
        let pa = TopoPattern::encode(&[a], window()).canonical();
        let pb = TopoPattern::encode(&[b], window()).canonical();
        if pa == pb {
            prop_assert_eq!(pa.topology_digest(), pb.topology_digest());
        }
        if pa.matches(&pb, 0) {
            prop_assert_eq!(pa, pb);
        }
        Ok(())
    });
}

/// The dimension vectors always sum to the window extent.
#[test]
fn dims_cover_window() {
    check("dims_cover_window", &cfg(), &arb_clip(), |clip| {
        let p = TopoPattern::encode(&[clip], window());
        let (w, h) = p.extent();
        prop_assert_eq!(w, window().width());
        prop_assert_eq!(h, window().height());
        Ok(())
    });
}

/// Persistence round-trip via the raw-parts API preserves equality.
#[test]
fn raw_parts_roundtrip() {
    check("raw_parts_roundtrip", &cfg(), &arb_clip(), |clip| {
        let p = TopoPattern::encode(&[clip], window());
        let q = TopoPattern::from_raw_parts(
            p.nx(),
            p.ny(),
            p.cells_raw().to_vec(),
            p.dims_x_raw().to_vec(),
            p.dims_y_raw().to_vec(),
        )
        .expect("valid parts");
        prop_assert_eq!(p, q);
        Ok(())
    });
}
