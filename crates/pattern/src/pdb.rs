//! Pattern database (PDB) persistence.
//!
//! Production flows accumulate pattern knowledge across design and
//! technology cycles in a persistent database (the GLOBALFOUNDRIES "PDB"
//! of the companion publications): each pattern class keeps a stable
//! identity so printability results, failure analysis and occurrence
//! counts can be attached over time. This module provides a compact,
//! versioned binary serialisation for [`Catalog`]s.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic  "DFMPDB1\0"            8 bytes
//! total  u64                    total occurrences
//! count  u64                    number of classes
//! per class:
//!   nx, ny     u32, u32
//!   cells      nx·ny bytes
//!   dims_x     nx × i64
//!   dims_y     ny × i64
//!   count      u64
//!   example    i64, i64
//! ```

use crate::catalog::{Catalog, PatternClass};
use crate::TopoPattern;
use dfm_geom::Point;
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 8] = b"DFMPDB1\0";

/// Error parsing a pattern database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePdbError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParsePdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed pattern database at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParsePdbError {}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ParsePdbError> {
        if self.pos + n > self.data.len() {
            return Err(ParsePdbError {
                offset: self.pos,
                message: format!("truncated: needed {n} bytes"),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ParsePdbError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ParsePdbError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Result<i64, ParsePdbError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

/// Serialises a catalog to the PDB byte format.
pub fn to_bytes(catalog: &Catalog) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&catalog.total().to_le_bytes());
    let ranked = catalog.ranked();
    out.extend_from_slice(&(ranked.len() as u64).to_le_bytes());
    for class in ranked {
        let p = &class.pattern;
        out.extend_from_slice(&(p.nx() as u32).to_le_bytes());
        out.extend_from_slice(&(p.ny() as u32).to_le_bytes());
        out.extend_from_slice(p.cells_raw());
        for &d in p.dims_x_raw() {
            out.extend_from_slice(&d.to_le_bytes());
        }
        for &d in p.dims_y_raw() {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out.extend_from_slice(&class.count.to_le_bytes());
        out.extend_from_slice(&class.example.x.to_le_bytes());
        out.extend_from_slice(&class.example.y.to_le_bytes());
    }
    out
}

/// Parses a catalog from the PDB byte format.
///
/// # Errors
///
/// [`ParsePdbError`] on bad magic, truncation, or impossible geometry.
pub fn from_bytes(data: &[u8]) -> Result<Catalog, ParsePdbError> {
    let mut c = Cursor { data, pos: 0 };
    let magic = c.take(8)?;
    if magic != MAGIC {
        return Err(ParsePdbError { offset: 0, message: "bad magic".into() });
    }
    let declared_total = c.u64()?;
    let count = c.u64()?;
    let mut catalog = Catalog::new();
    for _ in 0..count {
        let nx = c.u32()? as usize;
        let ny = c.u32()? as usize;
        if nx == 0 || ny == 0 || nx.saturating_mul(ny) > 1 << 24 {
            return Err(ParsePdbError {
                offset: c.pos,
                message: format!("implausible grid {nx}x{ny}"),
            });
        }
        let cells = c.take(nx * ny)?.to_vec();
        let mut dims_x = Vec::with_capacity(nx);
        for _ in 0..nx {
            dims_x.push(c.i64()?);
        }
        let mut dims_y = Vec::with_capacity(ny);
        for _ in 0..ny {
            dims_y.push(c.i64()?);
        }
        let pattern = TopoPattern::from_raw_parts(nx, ny, cells, dims_x, dims_y).map_err(
            |message| ParsePdbError { offset: c.pos, message },
        )?;
        let class_count = c.u64()?;
        let ex = Point::new(c.i64()?, c.i64()?);
        catalog.insert_class(PatternClass { pattern, count: class_count, example: ex });
    }
    if catalog.total() != declared_total {
        return Err(ParsePdbError {
            offset: data.len(),
            message: format!(
                "total mismatch: header {declared_total}, classes sum to {}",
                catalog.total()
            ),
        });
    }
    Ok(catalog)
}

/// Writes a catalog to a file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_file(catalog: &Catalog, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, to_bytes(catalog))
}

/// Reads a catalog from a file.
///
/// # Errors
///
/// I/O failures or [`ParsePdbError`] (wrapped in `io::Error`).
pub fn read_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Catalog> {
    let data = std::fs::read(path)?;
    from_bytes(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::{Rect, Region};

    fn sample_catalog() -> Catalog {
        let window = Rect::centered_at(Point::new(0, 0), 400, 400);
        let mut c = Catalog::new();
        for w in [60, 60, 60, 120, 120, 200] {
            let bar = Region::from_rect(Rect::new(-150, -w / 2, 150, w / 2));
            let p = TopoPattern::encode(&[&bar], window).canonical();
            c.insert(p, Point::new(w, w));
        }
        c
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let catalog = sample_catalog();
        let bytes = to_bytes(&catalog);
        let back = from_bytes(&bytes).expect("parses");
        assert_eq!(back.total(), catalog.total());
        assert_eq!(back.class_count(), catalog.class_count());
        for class in catalog.ranked() {
            assert_eq!(back.count_of(&class.pattern), class.count);
        }
        // KL divergence between a catalog and its roundtrip is zero.
        assert!(catalog.kl_divergence(&back).abs() < 1e-12);
    }

    #[test]
    fn deterministic_bytes() {
        let catalog = sample_catalog();
        assert_eq!(to_bytes(&catalog), to_bytes(&catalog));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes(b"NOTAPDB\0rest").expect_err("must fail");
        assert!(err.message.contains("magic"));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = to_bytes(&sample_catalog());
        let err = from_bytes(&bytes[..bytes.len() - 3]).expect_err("must fail");
        assert!(err.message.contains("truncated") || err.message.contains("mismatch"));
    }

    #[test]
    fn total_mismatch_rejected() {
        let mut bytes = to_bytes(&sample_catalog());
        bytes[8] ^= 0xFF; // corrupt the declared total
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let catalog = sample_catalog();
        let path = std::env::temp_dir().join("dfm_pattern_pdb_test.bin");
        write_file(&catalog, &path).expect("write");
        let back = read_file(&path).expect("read");
        assert_eq!(back.class_count(), catalog.class_count());
        let _ = std::fs::remove_file(&path);
    }
}
