//! Topological pattern encoding with D4 canonicalisation.

use dfm_geom::{Coord, Point, Rect, Region};
use std::fmt;

/// A multi-layer topological pattern: an edge-alignment cell bitmap plus
/// the dimension vectors of the cut grid.
///
/// The pattern of a layout clip is built by cutting the window at every
/// polygon edge coordinate ("cuts"); each resulting grid cell is either
/// fully covered or fully empty per layer, recorded as a per-cell layer
/// bitmask. The cut *spacings* are the dimension vectors. Equal topology
/// and equal dimensions ⇒ geometrically identical clips; equal topology
/// and close dimensions ⇒ the same pattern class.
///
/// Up to 8 layers per pattern (one bit each in the cell mask).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TopoPattern {
    nx: usize,
    ny: usize,
    /// Row-major cell layer-bitmasks, length `nx * ny`.
    cells: Vec<u8>,
    /// Cut spacings along x, length `nx`.
    dims_x: Vec<Coord>,
    /// Cut spacings along y, length `ny`.
    dims_y: Vec<Coord>,
}

impl TopoPattern {
    /// Encodes the clip of `layers` inside `window`.
    ///
    /// # Panics
    ///
    /// Panics if more than 8 layers are given or the window is empty.
    pub fn encode(layers: &[&Region], window: Rect) -> TopoPattern {
        Self::encode_quantized(layers, window, 1)
    }

    /// Encodes with dimensions snapped to multiples of `snap` (≥1).
    /// Coarser snapping merges dimensionally-similar clips into one
    /// pattern, directly controlling catalog cardinality ("edge
    /// tolerance" in LPC terms).
    ///
    /// # Panics
    ///
    /// Panics if more than 8 layers are given, `snap < 1`, or the window
    /// is empty.
    pub fn encode_quantized(layers: &[&Region], window: Rect, snap: Coord) -> TopoPattern {
        assert!(layers.len() <= 8, "at most 8 layers per pattern");
        assert!(snap >= 1, "snap must be at least 1");
        assert!(!window.is_empty(), "pattern window must be non-empty");

        let clips: Vec<Region> = layers.iter().map(|r| r.clipped(window)).collect();

        // Cut coordinates: window borders plus every rect edge.
        let mut xs: Vec<Coord> = vec![window.x0, window.x1];
        let mut ys: Vec<Coord> = vec![window.y0, window.y1];
        for clip in &clips {
            for r in clip.rects() {
                xs.push(r.x0);
                xs.push(r.x1);
                ys.push(r.y0);
                ys.push(r.y1);
            }
        }
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();

        let nx = xs.len() - 1;
        let ny = ys.len() - 1;
        let mut cells = vec![0u8; nx * ny];
        for (li, clip) in clips.iter().enumerate() {
            let bit = 1u8 << li;
            for j in 0..ny {
                for i in 0..nx {
                    let cx = xs[i] + (xs[i + 1] - xs[i]) / 2;
                    let cy = ys[j] + (ys[j + 1] - ys[j]) / 2;
                    if clip.contains_point(Point::new(cx, cy)) {
                        cells[j * nx + i] |= bit;
                    }
                }
            }
        }
        let q = |v: Coord| -> Coord { ((v + snap / 2) / snap) * snap };
        let dims_x: Vec<Coord> = xs.windows(2).map(|w| q(w[1] - w[0]).max(1)).collect();
        let dims_y: Vec<Coord> = ys.windows(2).map(|w| q(w[1] - w[0]).max(1)).collect();
        TopoPattern { nx, ny, cells, dims_x, dims_y }
    }

    /// Grid width (number of cells along x).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height (number of cells along y).
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of cells containing any geometry.
    pub fn occupied_cells(&self) -> usize {
        self.cells.iter().filter(|&&c| c != 0).count()
    }

    /// True if the pattern contains no geometry at all.
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(|&c| c == 0)
    }

    /// Total pattern extent `(width, height)` from the dimension vectors.
    pub fn extent(&self) -> (Coord, Coord) {
        (self.dims_x.iter().sum(), self.dims_y.iter().sum())
    }

    /// Raw cell bitmask bytes (row-major), for persistence.
    pub fn cells_raw(&self) -> &[u8] {
        &self.cells
    }

    /// Raw x dimension vector, for persistence.
    pub fn dims_x_raw(&self) -> &[Coord] {
        &self.dims_x
    }

    /// Raw y dimension vector, for persistence.
    pub fn dims_y_raw(&self) -> &[Coord] {
        &self.dims_y
    }

    /// Reassembles a pattern from raw parts (the persistence path).
    ///
    /// # Errors
    ///
    /// Returns a message when the part sizes are inconsistent or any
    /// dimension is non-positive.
    pub fn from_raw_parts(
        nx: usize,
        ny: usize,
        cells: Vec<u8>,
        dims_x: Vec<Coord>,
        dims_y: Vec<Coord>,
    ) -> Result<TopoPattern, String> {
        if cells.len() != nx * ny {
            return Err(format!(
                "cell count {} does not match {}x{} grid",
                cells.len(),
                nx,
                ny
            ));
        }
        if dims_x.len() != nx || dims_y.len() != ny {
            return Err("dimension vector length mismatch".into());
        }
        if dims_x.iter().chain(&dims_y).any(|&d| d <= 0) {
            return Err("non-positive dimension".into());
        }
        Ok(TopoPattern { nx, ny, cells, dims_x, dims_y })
    }

    fn cell(&self, i: usize, j: usize) -> u8 {
        self.cells[j * self.nx + i]
    }

    /// Mirror about the x-axis (flip rows).
    fn flip_y(&self) -> TopoPattern {
        let mut cells = vec![0u8; self.cells.len()];
        for j in 0..self.ny {
            for i in 0..self.nx {
                cells[(self.ny - 1 - j) * self.nx + i] = self.cell(i, j);
            }
        }
        let mut dims_y = self.dims_y.clone();
        dims_y.reverse();
        TopoPattern { nx: self.nx, ny: self.ny, cells, dims_x: self.dims_x.clone(), dims_y }
    }

    /// Mirror about the y-axis (flip columns).
    fn flip_x(&self) -> TopoPattern {
        let mut cells = vec![0u8; self.cells.len()];
        for j in 0..self.ny {
            for i in 0..self.nx {
                cells[j * self.nx + (self.nx - 1 - i)] = self.cell(i, j);
            }
        }
        let mut dims_x = self.dims_x.clone();
        dims_x.reverse();
        TopoPattern { nx: self.nx, ny: self.ny, cells, dims_x, dims_y: self.dims_y.clone() }
    }

    /// Transpose (reflect about the main diagonal).
    fn transpose(&self) -> TopoPattern {
        let mut cells = vec![0u8; self.cells.len()];
        for j in 0..self.ny {
            for i in 0..self.nx {
                cells[i * self.ny + j] = self.cell(i, j);
            }
        }
        TopoPattern {
            nx: self.ny,
            ny: self.nx,
            cells,
            dims_x: self.dims_y.clone(),
            dims_y: self.dims_x.clone(),
        }
    }

    /// All 8 symmetry variants (the dihedral group D4).
    pub fn variants(&self) -> Vec<TopoPattern> {
        let t = self.transpose();
        vec![
            self.clone(),
            self.flip_x(),
            self.flip_y(),
            self.flip_x().flip_y(),
            t.clone(),
            t.flip_x(),
            t.flip_y(),
            t.flip_x().flip_y(),
        ]
    }

    /// The canonical representative of the pattern's symmetry class:
    /// the lexicographically smallest variant. Two clips that are
    /// rotations/mirrors of each other canonicalise identically.
    pub fn canonical(&self) -> TopoPattern {
        self.variants()
            .into_iter()
            .min_by(|a, b| a.sort_key().cmp(&b.sort_key()))
            .expect("variants is never empty")
    }

    fn sort_key(&self) -> (usize, usize, &[u8], &[Coord], &[Coord]) {
        (self.nx, self.ny, &self.cells, &self.dims_x, &self.dims_y)
    }

    /// True if the two patterns share a topology (under some D4 variant)
    /// with every dimension within `eps`.
    pub fn matches(&self, other: &TopoPattern, eps: Coord) -> bool {
        for v in self.variants() {
            if v.nx == other.nx
                && v.ny == other.ny
                && v.cells == other.cells
                && dims_close(&v.dims_x, &other.dims_x, eps)
                && dims_close(&v.dims_y, &other.dims_y, eps)
            {
                return true;
            }
        }
        false
    }

    /// A compact stable digest of the topology alone (ignoring
    /// dimensions) — the hash bucket used by [`crate::PatternLibrary`].
    pub fn topology_digest(&self) -> u64 {
        // FNV-1a over the canonical variant's shape and cells.
        let c = self.canonical();
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        };
        for b in (c.nx as u32).to_le_bytes() {
            eat(b);
        }
        for b in (c.ny as u32).to_le_bytes() {
            eat(b);
        }
        for &b in &c.cells {
            eat(b);
        }
        h
    }
}

fn dims_close(a: &[Coord], b: &[Coord], eps: Coord) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= eps)
}

impl fmt::Debug for TopoPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TopoPattern {}x{}", self.nx, self.ny)?;
        for j in (0..self.ny).rev() {
            write!(f, "  ")?;
            for i in 0..self.nx {
                let c = self.cell(i, j);
                write!(f, "{}", if c == 0 { '.' } else { char::from_digit(c as u32 % 36, 36).unwrap_or('#') })?;
            }
            writeln!(f)?;
        }
        write!(f, "  dx={:?} dy={:?}", self.dims_x, self.dims_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Rect {
        Rect::centered_at(Point::new(0, 0), 400, 400)
    }

    #[test]
    fn empty_window_encodes_single_cell() {
        let p = TopoPattern::encode(&[&Region::new()], window());
        assert_eq!(p.nx(), 1);
        assert_eq!(p.ny(), 1);
        assert!(p.is_empty());
        assert_eq!(p.extent(), (400, 400));
    }

    #[test]
    fn bar_encodes_three_rows() {
        let bar = Region::from_rect(Rect::new(-200, -30, 200, 30));
        let p = TopoPattern::encode(&[&bar], window());
        // Bar spans the full window in x: 1 column, 3 rows.
        assert_eq!(p.nx(), 1);
        assert_eq!(p.ny(), 3);
        assert_eq!(p.occupied_cells(), 1);
    }

    #[test]
    fn rotation_canonicalises_equal() {
        let h = Region::from_rect(Rect::new(-100, -30, 150, 30));
        let v = Region::from_rect(Rect::new(-30, -100, 30, 150));
        let ph = TopoPattern::encode(&[&h], window());
        let pv = TopoPattern::encode(&[&v], window());
        assert_ne!(ph, pv);
        assert_eq!(ph.canonical(), pv.canonical());
        assert_eq!(ph.topology_digest(), pv.topology_digest());
    }

    #[test]
    fn mirror_canonicalises_equal() {
        let l = Region::from_rects([
            Rect::new(-150, -150, -90, 150),
            Rect::new(-150, -150, 150, -90),
        ]);
        let mirrored = Region::from_rects([
            Rect::new(90, -150, 150, 150),
            Rect::new(-150, -150, 150, -90),
        ]);
        let pl = TopoPattern::encode(&[&l], window());
        let pm = TopoPattern::encode(&[&mirrored], window());
        assert_eq!(pl.canonical(), pm.canonical());
    }

    #[test]
    fn different_topologies_differ() {
        let one = Region::from_rect(Rect::new(-50, -50, 50, 50));
        let two = Region::from_rects([
            Rect::new(-150, -50, -50, 50),
            Rect::new(50, -50, 150, 50),
        ]);
        let p1 = TopoPattern::encode(&[&one], window());
        let p2 = TopoPattern::encode(&[&two], window());
        assert_ne!(p1.canonical(), p2.canonical());
        assert_ne!(p1.topology_digest(), p2.topology_digest());
    }

    #[test]
    fn dimension_tolerance_matching() {
        let a = Region::from_rect(Rect::new(-50, -50, 50, 50));
        let b = Region::from_rect(Rect::new(-53, -50, 50, 50)); // 3 nm wider
        let pa = TopoPattern::encode(&[&a], window());
        let pb = TopoPattern::encode(&[&b], window());
        assert_ne!(pa, pb);
        assert!(pa.matches(&pb, 5));
        assert!(!pa.matches(&pb, 2));
    }

    #[test]
    fn rotated_match_with_tolerance() {
        let h = Region::from_rect(Rect::new(-100, -30, 100, 30));
        let v = Region::from_rect(Rect::new(-30, -102, 30, 100));
        let ph = TopoPattern::encode(&[&h], window());
        let pv = TopoPattern::encode(&[&v], window());
        assert!(ph.matches(&pv, 4));
    }

    #[test]
    fn quantization_merges_near_patterns() {
        let a = Region::from_rect(Rect::new(-50, -50, 50, 50));
        let b = Region::from_rect(Rect::new(-52, -50, 50, 50));
        let pa = TopoPattern::encode_quantized(&[&a], window(), 10);
        let pb = TopoPattern::encode_quantized(&[&b], window(), 10);
        assert_eq!(pa, pb);
    }

    #[test]
    fn multi_layer_patterns_distinguish_layers() {
        let via = Region::from_rect(Rect::new(-45, -45, 45, 45));
        let metal = Region::from_rect(Rect::new(-81, -81, 81, 81));
        let p_via_in_metal = TopoPattern::encode(&[&via, &metal], window());
        let p_metal_in_via = TopoPattern::encode(&[&metal, &via], window());
        assert_ne!(p_via_in_metal.canonical(), p_metal_in_via.canonical());
        // Single layer differs from two-layer.
        let p_single = TopoPattern::encode(&[&via], window());
        assert_ne!(p_single.canonical(), p_via_in_metal.canonical());
    }

    #[test]
    fn canonical_is_idempotent() {
        let r = Region::from_rects([
            Rect::new(-150, 20, -30, 80),
            Rect::new(10, -120, 70, -10),
        ]);
        let p = TopoPattern::encode(&[&r], window());
        assert_eq!(p.canonical(), p.canonical().canonical());
    }

    #[test]
    fn variants_have_eight_members() {
        let r = Region::from_rect(Rect::new(-100, -30, 150, 30));
        let p = TopoPattern::encode(&[&r], window());
        assert_eq!(p.variants().len(), 8);
    }

    #[test]
    #[should_panic(expected = "at most 8 layers")]
    fn too_many_layers_panics() {
        let r = Region::new();
        let layers: Vec<&Region> = vec![&r; 9];
        let _ = TopoPattern::encode(&layers, window());
    }
}
