//! Layout Pattern Catalogs: frequency statistics over a design.

use crate::TopoPattern;
use dfm_geom::{Coord, Point, Rect, Region};
use std::collections::HashMap;
use std::fmt;

/// One pattern class in a catalog: a canonical pattern with its
/// occurrence statistics.
#[derive(Clone, Debug)]
pub struct PatternClass {
    /// Canonical representative pattern.
    pub pattern: TopoPattern,
    /// Occurrences in the scanned design.
    pub count: u64,
    /// One example anchor where the pattern occurs.
    pub example: Point,
}

/// A Layout Pattern Catalog: the full census of pattern classes found at
/// a set of anchors in a design.
///
/// Build one with [`Catalog::build`]; compare designs with
/// [`Catalog::kl_divergence`]; measure how head-heavy a design's pattern
/// distribution is with [`Catalog::coverage_top_k`].
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    classes: HashMap<TopoPattern, PatternClass>,
    total: u64,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Builds a catalog by encoding a window of `radius` around every
    /// anchor over the given layers, with dimensions quantised by `snap`.
    pub fn build(
        layers: &[&Region],
        anchors: &[Point],
        radius: Coord,
        snap: Coord,
    ) -> Catalog {
        let mut catalog = Catalog::new();
        for &a in anchors {
            let window = Rect::centered_at(a, 2 * radius, 2 * radius);
            let pattern = TopoPattern::encode_quantized(layers, window, snap).canonical();
            catalog.insert(pattern, a);
        }
        catalog
    }

    /// Inserts a whole pattern class (the persistence path); counts of an
    /// existing equal class accumulate.
    pub fn insert_class(&mut self, class: PatternClass) {
        self.total += class.count;
        self.classes
            .entry(class.pattern.clone())
            .and_modify(|c| c.count += class.count)
            .or_insert(class);
    }

    /// Adds one occurrence of a (canonical) pattern.
    pub fn insert(&mut self, pattern: TopoPattern, at: Point) {
        self.total += 1;
        self.classes
            .entry(pattern.clone())
            .and_modify(|c| c.count += 1)
            .or_insert(PatternClass { pattern, count: 1, example: at });
    }

    /// Number of distinct pattern classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total occurrences scanned.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Classes sorted by descending frequency.
    pub fn ranked(&self) -> Vec<&PatternClass> {
        let mut v: Vec<&PatternClass> = self.classes.values().collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.example.cmp(&b.example)));
        v
    }

    /// Fraction of all occurrences covered by the `k` most frequent
    /// classes (the "top-10 categories cover ≥90% of vias" statistic).
    pub fn coverage_top_k(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = self.ranked().iter().take(k).map(|c| c.count).sum();
        covered as f64 / self.total as f64
    }

    /// Score metrics for the manufacturability score (`dfm-score`):
    /// the class count as `pattern.classes` (a sprawling pattern
    /// vocabulary is a manufacturability liability) and the top-8
    /// coverage as `pattern.top8_coverage` (an empty catalog counts as
    /// perfectly covered — there is nothing to certify).
    pub fn score_metrics(&self) -> Vec<(String, f64)> {
        let coverage = if self.total == 0 { 1.0 } else { self.coverage_top_k(8) };
        vec![
            ("pattern.classes".to_string(), self.class_count() as f64),
            ("pattern.top8_coverage".to_string(), coverage),
        ]
    }

    /// The occurrence count of a specific canonical pattern.
    pub fn count_of(&self, pattern: &TopoPattern) -> u64 {
        self.classes.get(pattern).map_or(0, |c| c.count)
    }

    /// Kullback–Leibler divergence `D(self ‖ other)` between the two
    /// catalogs' pattern frequency distributions, with add-one (Laplace)
    /// smoothing over the union of classes. Asymmetric; in nats.
    pub fn kl_divergence(&self, other: &Catalog) -> f64 {
        let mut keys: Vec<&TopoPattern> = self.classes.keys().collect();
        for k in other.classes.keys() {
            if !self.classes.contains_key(k) {
                keys.push(k);
            }
        }
        let n = keys.len() as f64;
        let self_total = self.total as f64 + n;
        let other_total = other.total as f64 + n;
        let mut kl = 0.0;
        for k in keys {
            let p = (self.count_of(k) as f64 + 1.0) / self_total;
            let q = (other.count_of(k) as f64 + 1.0) / other_total;
            kl += p * (p / q).ln();
        }
        kl
    }

    /// Classes whose frequency in `self` is at least `factor` times
    /// their frequency in `baseline` (smoothed) — the "unexpectedly
    /// frequent category" outlier report.
    pub fn outliers_vs<'a>(
        &'a self,
        baseline: &Catalog,
        factor: f64,
    ) -> Vec<(&'a PatternClass, f64)> {
        let mut out = Vec::new();
        let self_total = self.total.max(1) as f64;
        let base_total = baseline.total.max(1) as f64;
        for class in self.classes.values() {
            let p = class.count as f64 / self_total;
            let q = (baseline.count_of(&class.pattern) as f64 + 1.0) / (base_total + 1.0);
            let ratio = p / q;
            if ratio >= factor {
                out.push((class, ratio));
            }
        }
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Merges another catalog into this one.
    pub fn merge(&mut self, other: Catalog) {
        for (pattern, class) in other.classes {
            self.total += class.count;
            self.classes
                .entry(pattern)
                .and_modify(|c| c.count += class.count)
                .or_insert(class);
        }
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "catalog: {} classes over {} occurrences (top-10 coverage {:.1}%)",
            self.class_count(),
            self.total(),
            100.0 * self.coverage_top_k(10)
        )?;
        for (i, c) in self.ranked().iter().take(10).enumerate() {
            writeln!(
                f,
                "  #{:<2} ×{:<8} {}x{} cells, example at {}",
                i + 1,
                c.count,
                c.pattern.nx(),
                c.pattern.ny(),
                c.example
            )?;
        }
        Ok(())
    }
}

/// Anchor generators: where catalogs sample a design.
pub mod anchors {
    use dfm_geom::{Point, Region};

    /// Centres of every rect on a layer — the natural anchors for via
    /// and contact enclosure catalogs.
    pub fn rect_centers(layer: &Region) -> Vec<Point> {
        layer.rects().iter().map(|r| r.center()).collect()
    }

    /// A uniform grid of anchors across the region's bounding box.
    pub fn grid(region: &Region, step: i64) -> Vec<Point> {
        let b = region.bbox();
        let mut out = Vec::new();
        let mut y = b.y0 + step / 2;
        while y < b.y1 {
            let mut x = b.x0 + step / 2;
            while x < b.x1 {
                out.push(Point::new(x, y));
                x += step;
            }
            y += step;
        }
        out
    }

    /// Convex-corner anchors: every corner of the region's rect
    /// decomposition (deduplicated).
    pub fn corners(region: &Region) -> Vec<Point> {
        let mut pts: Vec<Point> = region
            .rects()
            .iter()
            .flat_map(|r| {
                [
                    Point::new(r.x0, r.y0),
                    Point::new(r.x1, r.y0),
                    Point::new(r.x0, r.y1),
                    Point::new(r.x1, r.y1),
                ]
            })
            .collect();
        pts.sort_unstable();
        pts.dedup();
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn via_grid(n: i64, pitch: i64, via: i64, enc: i64) -> (Region, Region, Vec<Point>) {
        let mut vias = Vec::new();
        let mut pads = Vec::new();
        let mut anchors = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let c = Point::new(i * pitch, j * pitch);
                vias.push(Rect::centered_at(c, via, via));
                pads.push(Rect::centered_at(c, via + 2 * enc, via + 2 * enc));
                anchors.push(c);
            }
        }
        (Region::from_rects(vias), Region::from_rects(pads), anchors)
    }

    #[test]
    fn uniform_array_is_one_class() {
        let (vias, pads, anchors) = via_grid(4, 1000, 90, 40);
        let catalog = Catalog::build(&[&vias, &pads], &anchors, 200, 1);
        assert_eq!(catalog.class_count(), 1);
        assert_eq!(catalog.total(), 16);
        assert!((catalog.coverage_top_k(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn odd_via_out_makes_second_class() {
        let (vias, pads, mut anchors) = via_grid(3, 1000, 90, 40);
        // One extra via with asymmetric enclosure.
        let c = Point::new(5000, 5000);
        let vias = vias.union(&Region::from_rect(Rect::centered_at(c, 90, 90)));
        let pads = pads.union(&Region::from_rect(Rect::new(
            c.x - 45,
            c.y - 85,
            c.x + 105,
            c.y + 45,
        )));
        anchors.push(c);
        let catalog = Catalog::build(&[&vias, &pads], &anchors, 200, 1);
        assert_eq!(catalog.class_count(), 2);
        let ranked = catalog.ranked();
        assert_eq!(ranked[0].count, 9);
        assert_eq!(ranked[1].count, 1);
        assert!((catalog.coverage_top_k(1) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn kl_divergence_zero_for_identical() {
        let (vias, pads, anchors) = via_grid(4, 1000, 90, 40);
        let a = Catalog::build(&[&vias, &pads], &anchors, 200, 1);
        let b = Catalog::build(&[&vias, &pads], &anchors, 200, 1);
        assert!(a.kl_divergence(&b).abs() < 1e-12);
    }

    #[test]
    fn kl_divergence_positive_for_different() {
        let (vias_a, pads_a, anchors_a) = via_grid(4, 1000, 90, 40);
        let (vias_b, pads_b, anchors_b) = via_grid(4, 1000, 90, 70);
        let a = Catalog::build(&[&vias_a, &pads_a], &anchors_a, 200, 1);
        let b = Catalog::build(&[&vias_b, &pads_b], &anchors_b, 200, 1);
        assert!(a.kl_divergence(&b) > 0.0);
    }

    #[test]
    fn outlier_detection() {
        let (vias, pads, anchors) = via_grid(3, 1000, 90, 40);
        let baseline = Catalog::build(&[&vias, &pads], &anchors, 200, 1);

        // A design dominated by a strange enclosure.
        let c = Point::new(0, 0);
        let odd_pads = Region::from_rect(Rect::new(c.x - 45, c.y - 45, c.x + 145, c.y + 45));
        let odd_vias = Region::from_rect(Rect::centered_at(c, 90, 90));
        let design = Catalog::build(&[&odd_vias, &odd_pads], &[c], 200, 1);
        let outliers = design.outliers_vs(&baseline, 2.0);
        assert_eq!(outliers.len(), 1);
    }

    #[test]
    fn merge_accumulates() {
        let (vias, pads, anchors) = via_grid(2, 1000, 90, 40);
        let mut a = Catalog::build(&[&vias, &pads], &anchors, 200, 1);
        let b = Catalog::build(&[&vias, &pads], &anchors, 200, 1);
        a.merge(b);
        assert_eq!(a.total(), 8);
        assert_eq!(a.class_count(), 1);
    }

    #[test]
    fn anchor_generators() {
        let r = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(100, 0, 110, 10)]);
        assert_eq!(anchors::rect_centers(&r).len(), 2);
        assert_eq!(anchors::corners(&r).len(), 8);
        let g = anchors::grid(&r, 5);
        assert!(!g.is_empty());
        // A step larger than the extent yields no anchors.
        assert!(anchors::grid(&r, 500).is_empty());
    }
}
