//! # dfm-pattern — topological layout pattern catalogs, matching, clustering
//!
//! The "layout pattern catalog" machinery the calibration notes flag as
//! absent from open source. A **topological pattern** (Dai & Capodieci)
//! separates a clip of layout into two components:
//!
//! * a *topology* — the alignment bitmap of polygon edges within the
//!   clip, independent of exact dimensions, and
//! * a *dimension vector* — the spacings between consecutive edge
//!   positions (the "cut" grid).
//!
//! Two clips with the same topology differ only dimensionally; with a
//! dimension tolerance they fall into the same *pattern class*. This
//! crate implements:
//!
//! * [`TopoPattern`] — multi-layer topological encoding with exact D4
//!   (rotation/mirror) canonicalisation,
//! * [`Catalog`] — Layout Pattern Catalogs: frequency statistics over a
//!   design, top-k coverage, and KL divergence between catalogs
//!   (experiment E5),
//! * [`PatternLibrary`] — fast hash-based full-chip pattern matching for
//!   DRC-Plus-style screening (experiment E4),
//! * [`cluster`] — leader clustering by dimension tolerance and
//!   agglomerative clustering of hotspot clips by XOR-area distance,
//! * [`pat`] — the Pattern Association Tree over nested context radii
//!   (experiment E11: optimal pattern context size).
//!
//! ```
//! use dfm_geom::{Point, Rect, Region};
//! use dfm_pattern::TopoPattern;
//!
//! let metal = Region::from_rect(Rect::new(-50, -20, 50, 20));
//! let window = Rect::centered_at(Point::new(0, 0), 200, 200);
//! let p = TopoPattern::encode(&[&metal], window);
//! // A bare horizontal bar and its 90°-rotated twin canonicalise equal.
//! let metal_v = Region::from_rect(Rect::new(-20, -50, 20, 50));
//! let q = TopoPattern::encode(&[&metal_v], window);
//! assert_eq!(p.canonical(), q.canonical());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod cluster;
mod matcher;
pub mod pat;
pub mod pdb;
mod topo;

pub use catalog::{Catalog, PatternClass};
pub use matcher::{Match, PatternLibrary};
pub use topo::TopoPattern;
