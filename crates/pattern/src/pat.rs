//! Pattern Association Tree (PAT): per-pattern context-radius
//! optimisation.
//!
//! Fixed-radius pattern decks face a dilemma: small windows over-merge
//! (different process behaviour, same small pattern), large windows
//! over-split (same behaviour, needlessly specific pattern). The PAT
//! trains on labelled anchors at a *nest* of radii and stops growing the
//! context as soon as a pattern becomes decisive — giving each pattern
//! its own optimal radius (experiment E11).

use crate::TopoPattern;
use dfm_geom::{Coord, Point, Rect, Region};
use std::collections::HashMap;

#[derive(Clone, Debug, Default)]
struct Node {
    pos: u64,
    neg: u64,
}

impl Node {
    fn total(&self) -> u64 {
        self.pos + self.neg
    }

    fn purity(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        let p = self.pos as f64 / self.total() as f64;
        p.max(1.0 - p)
    }

    fn majority(&self) -> bool {
        self.pos >= self.neg
    }
}

/// A trained Pattern Association Tree classifier.
#[derive(Clone, Debug)]
pub struct PatTree {
    radii: Vec<Coord>,
    snap: Coord,
    purity_threshold: f64,
    levels: Vec<HashMap<TopoPattern, Node>>,
}

impl PatTree {
    /// Trains on labelled anchors.
    ///
    /// * `layers` — the design layers the patterns are drawn from,
    /// * `anchors`/`labels` — parallel slices; `true` marks a hotspot,
    /// * `radii` — ascending context radii to consider,
    /// * `snap` — dimension quantisation,
    /// * `purity_threshold` — a pattern node is decisive once the
    ///   majority label fraction reaches this value (e.g. 0.95).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or `radii` is empty or not
    /// ascending.
    pub fn train(
        layers: &[&Region],
        anchors: &[Point],
        labels: &[bool],
        radii: &[Coord],
        snap: Coord,
        purity_threshold: f64,
    ) -> PatTree {
        assert_eq!(anchors.len(), labels.len(), "one label per anchor");
        assert!(!radii.is_empty(), "at least one radius");
        assert!(
            radii.windows(2).all(|w| w[0] < w[1]),
            "radii must be ascending"
        );
        let mut levels: Vec<HashMap<TopoPattern, Node>> =
            radii.iter().map(|_| HashMap::new()).collect();
        for (&a, &label) in anchors.iter().zip(labels) {
            for (li, &r) in radii.iter().enumerate() {
                let window = Rect::centered_at(a, 2 * r, 2 * r);
                let p = TopoPattern::encode_quantized(layers, window, snap).canonical();
                let node = levels[li].entry(p).or_default();
                if label {
                    node.pos += 1;
                } else {
                    node.neg += 1;
                }
            }
        }
        PatTree {
            radii: radii.to_vec(),
            snap,
            purity_threshold,
            levels,
        }
    }

    /// The radii the tree was trained with.
    pub fn radii(&self) -> &[Coord] {
        &self.radii
    }

    /// Number of pattern nodes per level.
    pub fn nodes_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.len()).collect()
    }

    /// Classifies an anchor: walks the radius nest from the inside out
    /// and answers with the first decisive node's majority label; falls
    /// back to the deepest seen node's majority; unknown patterns
    /// classify as `false`.
    pub fn classify(&self, layers: &[&Region], anchor: Point) -> bool {
        let mut fallback: Option<bool> = None;
        for (li, &r) in self.radii.iter().enumerate() {
            let window = Rect::centered_at(anchor, 2 * r, 2 * r);
            let p = TopoPattern::encode_quantized(layers, window, self.snap).canonical();
            match self.levels[li].get(&p) {
                None => break,
                Some(node) => {
                    fallback = Some(node.majority());
                    if node.purity() >= self.purity_threshold {
                        return node.majority();
                    }
                }
            }
        }
        fallback.unwrap_or(false)
    }

    /// The *effective radius* the classifier uses for an anchor: the
    /// radius of the first decisive node, or the largest radius if none
    /// is decisive, or `None` for unknown patterns.
    pub fn effective_radius(&self, layers: &[&Region], anchor: Point) -> Option<Coord> {
        let mut last_seen: Option<Coord> = None;
        for (li, &r) in self.radii.iter().enumerate() {
            let window = Rect::centered_at(anchor, 2 * r, 2 * r);
            let p = TopoPattern::encode_quantized(layers, window, self.snap).canonical();
            match self.levels[li].get(&p) {
                None => break,
                Some(node) => {
                    last_seen = Some(r);
                    if node.purity() >= self.purity_threshold {
                        return Some(r);
                    }
                }
            }
        }
        last_seen
    }
}

/// Accuracy of a classifier over labelled anchors: fraction correct.
pub fn accuracy(
    tree: &PatTree,
    layers: &[&Region],
    anchors: &[Point],
    labels: &[bool],
) -> f64 {
    if anchors.is_empty() {
        return 1.0;
    }
    let correct = anchors
        .iter()
        .zip(labels)
        .filter(|(&a, &l)| tree.classify(layers, a) == l)
        .count();
    correct as f64 / anchors.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy design: isolated squares are "good"; squares with a close
    /// neighbour (visible only at the larger radius) are "bad".
    fn toy() -> (Region, Vec<Point>, Vec<bool>) {
        let mut rects = Vec::new();
        let mut anchors = Vec::new();
        let mut labels = Vec::new();
        // 6 isolated squares.
        for i in 0..6i64 {
            let c = Point::new(i * 5000, 0);
            rects.push(Rect::centered_at(c, 100, 100));
            anchors.push(c);
            labels.push(false);
        }
        // 6 squares with a neighbour 250 away (outside radius 150,
        // inside radius 400).
        for i in 0..6i64 {
            let c = Point::new(i * 5000, 20_000);
            rects.push(Rect::centered_at(c, 100, 100));
            rects.push(Rect::centered_at(c + dfm_geom::Vector::new(300, 0), 100, 100));
            anchors.push(c);
            labels.push(true);
        }
        (Region::from_rects(rects), anchors, labels)
    }

    #[test]
    fn small_radius_cannot_separate() {
        let (layout, anchors, labels) = toy();
        let tree = PatTree::train(&[&layout], &anchors, &labels, &[150], 1, 0.95);
        let acc = accuracy(&tree, &[&layout], &anchors, &labels);
        // At radius 150 both classes look identical: accuracy ≈ 0.5.
        assert!(acc < 0.8, "accuracy {acc}");
    }

    #[test]
    fn nested_radii_separate() {
        let (layout, anchors, labels) = toy();
        let tree = PatTree::train(&[&layout], &anchors, &labels, &[150, 400], 1, 0.95);
        let acc = accuracy(&tree, &[&layout], &anchors, &labels);
        assert_eq!(acc, 1.0, "accuracy {acc}");
    }

    #[test]
    fn effective_radius_is_minimal() {
        let (layout, anchors, labels) = toy();
        let tree = PatTree::train(&[&layout], &anchors, &labels, &[150, 400, 800], 1, 0.95);
        // The bad anchors need radius 400; never 800.
        for &a in &anchors {
            let r = tree.effective_radius(&[&layout], a).expect("seen in training");
            assert!(r <= 400, "effective radius {r}");
        }
    }

    #[test]
    fn unknown_pattern_classifies_negative() {
        let (layout, anchors, labels) = toy();
        let tree = PatTree::train(&[&layout], &anchors, &labels, &[150, 400], 1, 0.95);
        // A completely different neighbourhood.
        let strange = Region::from_rect(Rect::new(-100, -100, 900, 900));
        assert!(!tree.classify(&[&strange], Point::new(0, 0)));
    }

    #[test]
    fn node_counts_grow_with_radius() {
        let (layout, anchors, labels) = toy();
        let tree = PatTree::train(&[&layout], &anchors, &labels, &[150, 400], 1, 0.95);
        let nodes = tree.nodes_per_level();
        assert_eq!(nodes.len(), 2);
        // Radius 150: one pattern class; radius 400: at least two.
        assert!(nodes[0] < nodes[1], "{nodes:?}");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn non_ascending_radii_panic() {
        let (layout, anchors, labels) = toy();
        let _ = PatTree::train(&[&layout], &anchors, &labels, &[400, 150], 1, 0.95);
    }
}
