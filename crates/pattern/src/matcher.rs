//! Fast pattern matching against a library (DRC-Plus-style screening).

use crate::TopoPattern;
use dfm_geom::{Coord, Point, Rect, Region};
use std::collections::HashMap;
use std::fmt;

/// A library of target patterns with payloads, indexed by topology
/// digest for full-chip-speed scanning.
///
/// The payload type `T` typically carries the failure mechanism, a fixing
/// hint, or a severity weight for each pattern.
#[derive(Clone, Debug)]
pub struct PatternLibrary<T> {
    radius: Coord,
    snap: Coord,
    eps: Coord,
    by_digest: HashMap<u64, Vec<usize>>,
    entries: Vec<(TopoPattern, T)>,
}

/// One match reported by [`PatternLibrary::scan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Match {
    /// Anchor at which the library pattern matched.
    pub at: Point,
    /// Index of the matching library entry.
    pub entry: usize,
}

impl<T> PatternLibrary<T> {
    /// Creates an empty library.
    ///
    /// * `radius` — half-size of the context window around each anchor,
    /// * `snap` — dimension quantisation used at both learn and scan time,
    /// * `eps` — dimension tolerance for a match.
    ///
    /// # Panics
    ///
    /// Panics if `radius <= 0` or `snap < 1`.
    pub fn new(radius: Coord, snap: Coord, eps: Coord) -> Self {
        assert!(radius > 0, "radius must be positive");
        assert!(snap >= 1, "snap must be at least 1");
        PatternLibrary {
            radius,
            snap,
            eps,
            by_digest: HashMap::new(),
            entries: Vec::new(),
        }
    }

    /// Context window radius.
    pub fn radius(&self) -> Coord {
        self.radius
    }

    /// Number of library patterns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the library holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in insertion order.
    pub fn entries(&self) -> &[(TopoPattern, T)] {
        &self.entries
    }

    /// Learns the pattern at `anchor` from the given layers and stores it
    /// with `payload`. Duplicate patterns (within tolerance) are merged —
    /// the first payload wins — and `false` is returned.
    pub fn learn(&mut self, layers: &[&Region], anchor: Point, payload: T) -> bool {
        let window = Rect::centered_at(anchor, 2 * self.radius, 2 * self.radius);
        let pattern = TopoPattern::encode_quantized(layers, window, self.snap).canonical();
        self.insert(pattern, payload)
    }

    /// Inserts an already-encoded canonical pattern; returns `false` if an
    /// equivalent pattern was already present.
    pub fn insert(&mut self, pattern: TopoPattern, payload: T) -> bool {
        let digest = pattern.topology_digest();
        if let Some(bucket) = self.by_digest.get(&digest) {
            for &i in bucket {
                if self.entries[i].0.matches(&pattern, self.eps) {
                    return false;
                }
            }
        }
        let idx = self.entries.len();
        self.entries.push((pattern, payload));
        self.by_digest.entry(digest).or_default().push(idx);
        true
    }

    /// Scans `layers` at every anchor, reporting all matches.
    ///
    /// Matching cost per anchor is one window encode plus a hash-bucket
    /// probe, independent of library size — the property that makes
    /// pattern decks full-chip capable. Anchors are scanned in parallel
    /// (`DFM_THREADS`) over fixed-size chunks whose results concatenate
    /// in input order, so the match list is identical at any thread
    /// count.
    pub fn scan(&self, layers: &[&Region], anchor_points: &[Point]) -> Vec<Match>
    where
        T: Sync,
    {
        const ANCHOR_CHUNK: usize = 64;
        let chunks = dfm_par::par_chunks(anchor_points, ANCHOR_CHUNK, |_, anchors| {
            let mut hits = Vec::new();
            for &a in anchors {
                let window = Rect::centered_at(a, 2 * self.radius, 2 * self.radius);
                let pattern = TopoPattern::encode_quantized(layers, window, self.snap).canonical();
                if let Some(bucket) = self.by_digest.get(&pattern.topology_digest()) {
                    for &i in bucket {
                        if self.entries[i].0.matches(&pattern, self.eps) {
                            hits.push(Match { at: a, entry: i });
                        }
                    }
                }
            }
            hits
        });
        chunks.into_iter().flatten().collect()
    }
}

impl<T> fmt::Display for PatternLibrary<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern library: {} patterns, radius {} nm, tolerance {} nm",
            self.len(),
            self.radius,
            self.eps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross_at(c: Point, arm: Coord, w: Coord) -> Region {
        Region::from_rects([
            Rect::new(c.x - arm, c.y - w / 2, c.x + arm, c.y + w / 2),
            Rect::new(c.x - w / 2, c.y - arm, c.x + w / 2, c.y + arm),
        ])
    }

    #[test]
    fn learn_and_rescan_finds_pattern() {
        let c = Point::new(1000, 1000);
        let layout = cross_at(c, 200, 60);
        let mut lib = PatternLibrary::new(300, 1, 2);
        assert!(lib.learn(&[&layout], c, "cross"));
        let matches = lib.scan(&[&layout], &[c]);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].entry, 0);
    }

    #[test]
    fn duplicate_learn_merges() {
        let c1 = Point::new(0, 0);
        let c2 = Point::new(10_000, 0);
        let layout = cross_at(c1, 200, 60).union(&cross_at(c2, 200, 60));
        let mut lib = PatternLibrary::new(300, 1, 2);
        assert!(lib.learn(&[&layout], c1, ()));
        assert!(!lib.learn(&[&layout], c2, ()));
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn scan_matches_rotated_occurrence() {
        // An L learned in one orientation matches its rotation elsewhere.
        let a1 = Point::new(0, 0);
        let l1 = Region::from_rects([
            Rect::new(-200, -30, 200, 30),
            Rect::new(140, 30, 200, 260),
        ]);
        // Rotated-90 version at a different location.
        let a2 = Point::new(10_000, 0);
        let l2 = Region::from_rects([
            Rect::new(9_970, -200, 10_030, 200),
            Rect::new(9_740, 140, 9_970, 200),
        ]);
        let layout = l1.union(&l2);
        let mut lib = PatternLibrary::new(300, 1, 2);
        lib.learn(&[&layout], a1, ());
        let matches = lib.scan(&[&layout], &[a1, a2]);
        assert_eq!(matches.len(), 2, "{matches:?}");
    }

    #[test]
    fn near_miss_dimensions_respect_tolerance() {
        let c = Point::new(0, 0);
        let layout = cross_at(c, 200, 60);
        let mut lib = PatternLibrary::new(300, 1, 2);
        lib.learn(&[&layout], c, ());
        // Slightly different arm width (62 vs 60): the centre row's
        // dimension changes by 2, within tolerance.
        let other = cross_at(Point::new(0, 0), 200, 62);
        let hit = lib.scan(&[&other], &[c]);
        assert_eq!(hit.len(), 1, "within tolerance");
        let other_far = cross_at(Point::new(0, 0), 200, 80);
        let miss = lib.scan(&[&other_far], &[c]);
        assert!(miss.is_empty());
    }

    #[test]
    fn unrelated_geometry_does_not_match() {
        let c = Point::new(0, 0);
        let layout = cross_at(c, 200, 60);
        let mut lib = PatternLibrary::new(300, 1, 2);
        lib.learn(&[&layout], c, ());
        let bar = Region::from_rect(Rect::new(-200, -30, 200, 30));
        assert!(lib.scan(&[&bar], &[c]).is_empty());
    }

    #[test]
    fn payloads_accessible_via_entries() {
        let c = Point::new(0, 0);
        let layout = cross_at(c, 200, 60);
        let mut lib = PatternLibrary::new(300, 1, 2);
        lib.learn(&[&layout], c, "fix: widen arms");
        let m = lib.scan(&[&layout], &[c]);
        assert_eq!(lib.entries()[m[0].entry].1, "fix: widen arms");
    }
}
