//! Clustering of patterns and layout clips.
//!
//! Two clusterers:
//!
//! * [`leader_cluster`] — single-pass leader clustering of
//!   [`TopoPattern`]s under a dimension tolerance: the incremental
//!   algorithm used to build million-pattern databases,
//! * [`agglomerative_cluster`] — average-linkage hierarchical clustering
//!   of layout clips under XOR-area distance: the classic hotspot-snippet
//!   grouping.

use crate::TopoPattern;
use dfm_geom::{Coord, Rect, Region};

/// A cluster of pattern indices with its representative.
#[derive(Clone, Debug)]
pub struct PatternCluster {
    /// Index (into the input slice) of the representative pattern.
    pub representative: usize,
    /// Indices of all members (including the representative).
    pub members: Vec<usize>,
}

/// Single-pass leader clustering: each pattern joins the first cluster
/// whose representative it [`matches`](TopoPattern::matches) within
/// `eps`, otherwise it founds a new cluster.
///
/// Deterministic given input order; O(n · clusters) with a topology-
/// digest prefilter.
pub fn leader_cluster(patterns: &[TopoPattern], eps: Coord) -> Vec<PatternCluster> {
    let mut clusters: Vec<PatternCluster> = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    for (i, p) in patterns.iter().enumerate() {
        let d = p.topology_digest();
        let mut placed = false;
        for (c, cluster) in clusters.iter_mut().enumerate() {
            if digests[c] == d && patterns[cluster.representative].matches(p, eps) {
                cluster.members.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            clusters.push(PatternCluster { representative: i, members: vec![i] });
            digests.push(d);
        }
    }
    clusters
}

/// Normalised XOR-area distance between two clips within a shared window
/// frame: `area(a △ b) / area(window)`, in `[0, 1]`.
pub fn xor_distance(a: &Region, b: &Region, window: Rect) -> f64 {
    let wa = window.area() as f64;
    if wa <= 0.0 {
        return 0.0;
    }
    let xa = a.clipped(window);
    let xb = b.clipped(window);
    xa.xor(&xb).area() as f64 / wa
}

/// A cluster of clip indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClipCluster {
    /// Member indices into the input slice.
    pub members: Vec<usize>,
}

/// Average-linkage agglomerative clustering of layout clips under
/// [`xor_distance`], cutting when the closest pair exceeds `cut`.
///
/// All clips must be expressed in a common window frame (e.g. each
/// hotspot clip translated so its anchor is the window centre).
pub fn agglomerative_cluster(clips: &[Region], window: Rect, cut: f64) -> Vec<ClipCluster> {
    let n = clips.len();
    if n == 0 {
        return Vec::new();
    }
    // Precompute the pairwise distance matrix.
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = xor_distance(&clips[i], &clips[j], window);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    loop {
        // Find the closest pair by average linkage.
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let mut sum = 0.0;
                for &i in &clusters[a] {
                    for &j in &clusters[b] {
                        sum += dist[i * n + j];
                    }
                }
                let avg = sum / (clusters[a].len() * clusters[b].len()) as f64;
                if best.is_none_or(|(_, _, d)| avg < d) {
                    best = Some((a, b, avg));
                }
            }
        }
        match best {
            Some((a, b, d)) if d <= cut => {
                let merged = clusters.swap_remove(b);
                let target = if a == clusters.len() { b } else { a };
                clusters[target].extend(merged);
            }
            _ => break,
        }
    }
    let mut out: Vec<ClipCluster> = clusters
        .into_iter()
        .map(|mut members| {
            members.sort_unstable();
            ClipCluster { members }
        })
        .collect();
    out.sort_by_key(|c| c.members[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::Point;

    fn window() -> Rect {
        Rect::centered_at(Point::new(0, 0), 400, 400)
    }

    fn bar(w: Coord) -> Region {
        Region::from_rect(Rect::new(-150, -w / 2, 150, w / 2))
    }

    #[test]
    fn leader_groups_similar_patterns() {
        let pats: Vec<TopoPattern> = [60, 62, 58, 120, 118]
            .iter()
            .map(|&w| TopoPattern::encode(&[&bar(w)], window()).canonical())
            .collect();
        let clusters = leader_cluster(&pats, 4);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].members, vec![0, 1, 2]);
        assert_eq!(clusters[1].members, vec![3, 4]);
    }

    #[test]
    fn leader_zero_tolerance_separates() {
        let pats: Vec<TopoPattern> = [60, 62]
            .iter()
            .map(|&w| TopoPattern::encode(&[&bar(w)], window()).canonical())
            .collect();
        let clusters = leader_cluster(&pats, 0);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn xor_distance_properties() {
        let w = window();
        let a = bar(60);
        let b = bar(60);
        assert_eq!(xor_distance(&a, &b, w), 0.0);
        let c = bar(120);
        let d_ac = xor_distance(&a, &c, w);
        assert!(d_ac > 0.0 && d_ac < 1.0);
        // Symmetric.
        assert_eq!(d_ac, xor_distance(&c, &a, w));
    }

    #[test]
    fn agglomerative_groups_by_shape() {
        let clips = vec![
            bar(60),
            bar(64),
            bar(62),
            // A very different clip: vertical bar.
            Region::from_rect(Rect::new(-30, -150, 30, 150)),
        ];
        let clusters = agglomerative_cluster(&clips, window(), 0.05);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].members, vec![0, 1, 2]);
        assert_eq!(clusters[1].members, vec![3]);
    }

    #[test]
    fn agglomerative_cut_zero_keeps_singletons() {
        let clips = vec![bar(60), bar(100)];
        let clusters = agglomerative_cluster(&clips, window(), 0.0);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn agglomerative_cut_one_merges_all() {
        let clips = vec![bar(60), bar(100), bar(140)];
        let clusters = agglomerative_cluster(&clips, window(), 1.0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].members.len(), 3);
    }

    #[test]
    fn empty_input() {
        assert!(leader_cluster(&[], 2).is_empty());
        assert!(agglomerative_cluster(&[], window(), 0.5).is_empty());
    }
}
