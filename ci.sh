#!/usr/bin/env bash
# Hermetic CI: the workspace must build, test, and bench-compile with no
# network and no registry. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== guard: workspace dependencies are path-only =="
# `cargo tree` prints registry packages as `name vX.Y.Z` with no source
# suffix, path packages as `name vX.Y.Z (/abs/path)`. Any dependency
# line lacking a local-path suffix means someone reintroduced a
# registry/git dependency — fail loudly before the build masks it with
# a cached copy.
# A dependency that cannot resolve offline (i.e. a registry dep with no
# cached copy) makes `cargo tree` itself fail, which must also fail the
# guard — so check its exit status before filtering.
tree=$(cargo tree --workspace --edges normal,build,dev --prefix none --offline)
non_path=$(printf '%s\n' "$tree" | sort -u | grep -v '^\s*$' | grep -v ' (/' || true)
if [[ -n "$non_path" ]]; then
    echo "error: non-path dependencies found:" >&2
    echo "$non_path" >&2
    exit 1
fi
echo "ok"

echo "== lint (clippy, -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline, DFM_THREADS=1) =="
DFM_THREADS=1 cargo test -q --workspace --offline

echo "== test (offline, DFM_THREADS=4) =="
# Same suite under a parallel pool: the determinism contract says the
# results — including every golden digest — must not change.
DFM_THREADS=4 cargo test -q --workspace --offline

echo "== benches compile (offline) =="
cargo bench --no-run --offline

echo "== tiled signoff bench + gauges (offline) =="
# Pins the tiled full-deck DRC bench in the JSON report, including the
# peak-per-tile working-set gauges that back the "never materialises a
# full layer" claim. The tiled-vs-flat equivalence suites themselves
# run above, under both thread counts, each at two tile sizes.
# Bench binaries run with the package dir as cwd, so pass an absolute
# report path.
DFM_BENCH_JSON="$PWD/target/tiled-bench.json" \
    cargo bench -p dfm-bench --bench engines --offline -- tiled_drc
grep -q '"gauges"' target/tiled-bench.json

echo "== signoff kill-and-resume smoke (offline, loopback only) =="
# Boots the signoff server on an ephemeral loopback port, submits a
# job, kills the server mid-run with SIGKILL, restarts it over the same
# checkpoint directory, resumes, and requires the final report to be
# byte-identical to the flat single-shot engines. This is the
# checkpoint/resume contract exercised across a real process death.
BIN=target/release/dfm-signoff
SPEC_FLAGS=(--tile 1700 --halo 64 --litho-layer 4/0)
WORK=$(mktemp -d)
SERVER=""
SHARD_A=""
SHARD_B=""
COORD=""
cleanup() {
    for P in "$SERVER" "$SHARD_A" "$SHARD_B" "$COORD"; do
        if [[ -n "$P" ]]; then kill -9 "$P" 2>/dev/null || true; fi
    done
    rm -rf "$WORK"
}
trap cleanup EXIT
"$BIN" gen --out "$WORK/block.gds" --width 6000 --height 6000 --seed 7 >/dev/null
"$BIN" flat-report --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}" >"$WORK/flat.txt"

# First life: slowed tiles so the SIGKILL lands mid-run, after at least
# one tile has been checkpointed.
DFM_SIGNOFF_TILE_DELAY_MS=60 "$BIN" serve --threads 2 --port 0 \
    --ckpt "$WORK/ckpt" --port-file "$WORK/port" >/dev/null &
SERVER=$!
for _ in $(seq 100); do [[ -s "$WORK/port" ]] && break; sleep 0.05; done
PORT=$(cat "$WORK/port")
JOB=$("$BIN" submit --addr "127.0.0.1:$PORT" --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}")
for _ in $(seq 200); do
    compgen -G "$WORK/ckpt/job-$JOB/tile-*.bin" >/dev/null && break
    sleep 0.05
done
compgen -G "$WORK/ckpt/job-$JOB/tile-*.bin" >/dev/null
kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true

# Second life: full speed. The job reloads from disk as partial; resume
# recomputes exactly the missing tiles.
"$BIN" serve --threads 4 --port 0 --ckpt "$WORK/ckpt" --port-file "$WORK/port2" >/dev/null &
SERVER=$!
for _ in $(seq 100); do [[ -s "$WORK/port2" ]] && break; sleep 0.05; done
PORT=$(cat "$WORK/port2")
"$BIN" resume --addr "127.0.0.1:$PORT" --job "$JOB" >/dev/null
"$BIN" results --addr "127.0.0.1:$PORT" --job "$JOB" --wait >"$WORK/resumed.txt"
"$BIN" shutdown --addr "127.0.0.1:$PORT"
wait "$SERVER" 2>/dev/null || true
SERVER=""
diff "$WORK/flat.txt" "$WORK/resumed.txt"
echo "ok: resumed report is byte-identical to the flat run"

echo "== fault-injection smoke (offline, loopback only) =="
# Two deterministic fault plans through the real server, each at a
# 1-thread and a 4-thread pool:
#  * retry.plan — every tile's first attempt panics; the supervisor
#    retries, the job ends 'done', and the report must be byte-identical
#    to the no-fault flat run (faults below the quarantine threshold are
#    invisible in the bytes).
#  * quarantine.plan — tile 1 panics on every attempt; the job must
#    settle 'partial' (never bare 'failed') with a manifest naming
#    exactly tile 1.
# Both runs must also agree with each other byte-for-byte across thread
# counts — events included (the fixed-plan determinism contract).
cat >"$WORK/retry.plan" <<'EOF'
seed 11
rule signoff.tile.compute panic attempt<1
EOF
cat >"$WORK/quarantine.plan" <<'EOF'
seed 11
rule signoff.tile.compute panic key=1
EOF
for PLAN in retry quarantine; do
    for T in 1 4; do
        PORTF="$WORK/port-$PLAN-$T"
        DFM_THREADS=$T "$BIN" serve --threads "$T" --port 0 --port-file "$PORTF" \
            --fault-plan "$WORK/$PLAN.plan" >/dev/null &
        SERVER=$!
        for _ in $(seq 100); do [[ -s "$PORTF" ]] && break; sleep 0.05; done
        PORT=$(cat "$PORTF")
        JOB=$("$BIN" submit --addr "127.0.0.1:$PORT" --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}")
        # Exit-code contract: a quarantined job settles partial and
        # `results --wait` says so with exit 2; a clean job exits 0.
        rc=0
        "$BIN" results --addr "127.0.0.1:$PORT" --job "$JOB" --wait >"$WORK/$PLAN-$T.txt" || rc=$?
        if [[ "$PLAN" == quarantine ]]; then [[ $rc -eq 2 ]]; else [[ $rc -eq 0 ]]; fi
        "$BIN" status --addr "127.0.0.1:$PORT" --job "$JOB" >"$WORK/$PLAN-$T.status"
        "$BIN" events --addr "127.0.0.1:$PORT" --job "$JOB" >"$WORK/$PLAN-$T.events"
        "$BIN" shutdown --addr "127.0.0.1:$PORT"
        wait "$SERVER" 2>/dev/null || true
        SERVER=""
    done
    diff "$WORK/$PLAN-1.txt" "$WORK/$PLAN-4.txt"
    diff "$WORK/$PLAN-1.events" "$WORK/$PLAN-4.events"
done
grep -q ": done tiles" "$WORK/retry-1.status"
diff "$WORK/flat.txt" "$WORK/retry-1.txt"
grep -q " retry " "$WORK/retry-1.events"
grep -q ": partial tiles" "$WORK/quarantine-1.status"
grep -q "quarantined 1 " "$WORK/quarantine-1.status"
grep -q "^quarantine: 1 tiles excluded$" "$WORK/quarantine-1.txt"
grep -q "^quarantine.tile 1: " "$WORK/quarantine-1.txt"
echo "ok: supervised retries keep the bytes; quarantine settles partial with a manifest"

echo "== warm-cache smoke (offline, loopback only) =="
# The content-addressed result cache must be invisible in the bytes and
# visible in the work: the same job twice on a cache-armed server, at a
# 1-thread and a 4-thread pool. Run 2 must report >0 cached tiles, both
# runs (and both thread counts) must agree byte-for-byte with each other
# and with the flat single-shot run, and the cache store itself must
# verify clean.
for T in 1 4; do
    PORTF="$WORK/port-cache-$T"
    DFM_THREADS=$T "$BIN" serve --threads "$T" --port 0 --port-file "$PORTF" \
        --cache "$WORK/cache-$T" >/dev/null &
    SERVER=$!
    for _ in $(seq 100); do [[ -s "$PORTF" ]] && break; sleep 0.05; done
    PORT=$(cat "$PORTF")
    for RUN in 1 2; do
        JOB=$("$BIN" submit --addr "127.0.0.1:$PORT" --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}")
        "$BIN" results --addr "127.0.0.1:$PORT" --job "$JOB" --wait >"$WORK/cache-$T-run$RUN.txt"
        "$BIN" status --addr "127.0.0.1:$PORT" --job "$JOB" >"$WORK/cache-$T-run$RUN.status"
    done
    "$BIN" shutdown --addr "127.0.0.1:$PORT"
    wait "$SERVER" 2>/dev/null || true
    SERVER=""
    diff "$WORK/cache-$T-run1.txt" "$WORK/cache-$T-run2.txt"
    diff "$WORK/flat.txt" "$WORK/cache-$T-run1.txt"
    grep -q " cached 0 " "$WORK/cache-$T-run1.status"
    CACHED=$(sed -n 's/.* cached \([0-9][0-9]*\) .*/\1/p' "$WORK/cache-$T-run2.status")
    [[ "$CACHED" -gt 0 ]]
done
diff "$WORK/cache-1-run2.txt" "$WORK/cache-4-run2.txt"
"$BIN" cache stats --dir "$WORK/cache-1" | grep -q "^entries "
"$BIN" cache verify --dir "$WORK/cache-1" | grep -q " removed 0$"
echo "ok: warm resubmission serves $CACHED tiles from the cache, bytes unchanged"

echo "== cache verify flags corruption (offline, exit-code contract) =="
# Flip bytes in one sealed entry: `cache verify` must repair it AND
# exit non-zero (3), so a pipeline cannot silently pass over bit-rot.
# A second verify over the repaired store is clean again and exits 0.
ENTRY=$(find "$WORK/cache-1" -name 'e-*.bin' -type f | sort | head -1)
[[ -n "$ENTRY" ]]
printf 'bit-rot' >>"$ENTRY"
rc=0
"$BIN" cache verify --dir "$WORK/cache-1" >"$WORK/verify-corrupt.out" || rc=$?
[[ $rc -eq 3 ]]
! grep -q " removed 0$" "$WORK/verify-corrupt.out"
"$BIN" cache verify --dir "$WORK/cache-1" | grep -q " removed 0$"
echo "ok: corruption is repaired and reported with exit 3"

echo "== score + auto-fix smoke (offline, exit-code contract) =="
# `score` emits one deterministic JSON line and exits by the contract
# (0 pass / 1 below threshold / 2 partial / 3 error). `fix` runs the
# greedy auto-fix search, resubmits through the same cache-armed
# service, and reports score before/after plus how many tiles each pass
# recomputed — a warm rerun of the whole loop must recompute nothing.
SCORE_CACHE="$WORK/score-cache"
"$BIN" score --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}" --cache "$SCORE_CACHE" >"$WORK/score-cold.json"
"$BIN" score --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}" --cache "$SCORE_CACHE" >"$WORK/score-warm.json"
diff "$WORK/score-cold.json" "$WORK/score-warm.json"
grep -q '"score":' "$WORK/score-cold.json"
"$BIN" fix --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}" --cache "$SCORE_CACHE" \
    --out "$WORK/fixed.gds" >"$WORK/fix1.json"
grep -q '"changed":true' "$WORK/fix1.json"
[[ -s "$WORK/fixed.gds" ]]
# The kept techniques must strictly improve the aggregate score.
awk -F'"score_before":|,"score_after":|,"delta":' '{ exit !($3 > $2) }' "$WORK/fix1.json"
# Pass 1 of the fix rode the warm cache from the score runs above.
grep -q '"before":{"tiles_total":[0-9]*,"tiles_cached":[0-9]*,"tiles_recomputed":0}' "$WORK/fix1.json"
# Rerunning the whole loop against the same cache is pure cache
# traffic: both passes report zero recomputed tiles.
"$BIN" fix --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}" --cache "$SCORE_CACHE" >"$WORK/fix2.json"
[[ $(grep -o '"tiles_recomputed":0' "$WORK/fix2.json" | wc -l) -eq 2 ]]
# Exit-code contract: a pass threshold the layout cannot meet exits 1;
# an operational error exits 3.
printf 'pass 1.0\nmetric via.redundancy weight 1 scorer identity\n' >"$WORK/strict.spec"
rc=0
"$BIN" score --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}" --score "$WORK/strict.spec" >/dev/null || rc=$?
[[ $rc -eq 1 ]]
rc=0
"$BIN" score --gds "$WORK/does-not-exist.gds" >/dev/null 2>&1 || rc=$?
[[ $rc -eq 3 ]]
echo "ok: fix improves the score; warm reruns recompute nothing; exit codes hold"

echo "== multi-tenant scheduler smoke (offline, loopback only) =="
# A tenant plan through the real server at a 1-thread and a 4-thread
# pool: three jobs across two tenants must all complete with reports
# byte-identical to each other across thread counts and to the flat
# run, an over-quota submission must be bounced with a parseable v2
# error object and CLI exit 4, and per-job event streams must agree
# across thread counts (the scheduler is invisible in the bytes).
cat >"$WORK/tenants.conf" <<'EOF'
tenant acme weight 2 max_jobs 2
tenant beta weight 1 max_jobs 1
global max_inflight 4
EOF
for T in 1 4; do
    PORTF="$WORK/port-mt-$T"
    DFM_SIGNOFF_TILE_DELAY_MS=40 DFM_THREADS=$T "$BIN" serve --threads "$T" \
        --port 0 --port-file "$PORTF" --tenants "$WORK/tenants.conf" >/dev/null &
    SERVER=$!
    for _ in $(seq 100); do [[ -s "$PORTF" ]] && break; sleep 0.05; done
    PORT=$(cat "$PORTF")
    J1=$("$BIN" submit --addr "127.0.0.1:$PORT" --gds "$WORK/block.gds" \
        "${SPEC_FLAGS[@]}" --tenant acme --priority 3)
    J2=$("$BIN" submit --addr "127.0.0.1:$PORT" --gds "$WORK/block.gds" \
        "${SPEC_FLAGS[@]}" --tenant beta)
    J3=$("$BIN" submit --addr "127.0.0.1:$PORT" --gds "$WORK/block.gds" \
        "${SPEC_FLAGS[@]}" --tenant acme)
    # beta allows one active job; a second must be refused with the
    # structured code, a retry hint, and exit code 4 — backpressure a
    # client can parse and act on.
    rc=0
    "$BIN" submit --addr "127.0.0.1:$PORT" --gds "$WORK/block.gds" \
        "${SPEC_FLAGS[@]}" --tenant beta >"$WORK/mt-$T-reject.json" 2>/dev/null || rc=$?
    [[ $rc -eq 4 ]]
    grep -q '"code":"quota_exceeded"' "$WORK/mt-$T-reject.json"
    grep -q '"retry_after_vms":' "$WORK/mt-$T-reject.json"
    for JOB in "$J1" "$J2" "$J3"; do
        "$BIN" results --addr "127.0.0.1:$PORT" --job "$JOB" --wait \
            >"$WORK/mt-$T-job$JOB.txt"
        "$BIN" events --addr "127.0.0.1:$PORT" --job "$JOB" >"$WORK/mt-$T-job$JOB.events"
    done
    "$BIN" status --addr "127.0.0.1:$PORT" --job "$J1" >"$WORK/mt-$T.status"
    grep -q "tenant acme prio 3" "$WORK/mt-$T.status"
    "$BIN" shutdown --addr "127.0.0.1:$PORT"
    wait "$SERVER" 2>/dev/null || true
    SERVER=""
done
for JOB in 1 2 3; do
    diff "$WORK/mt-1-job$JOB.txt" "$WORK/mt-4-job$JOB.txt"
    diff "$WORK/mt-1-job$JOB.events" "$WORK/mt-4-job$JOB.events"
    # The spec line carries the tenant/priority, so compare the
    # analysis body against the flat run modulo that one line.
    diff <(grep -v '^spec: ' "$WORK/flat.txt") \
         <(grep -v '^spec: ' "$WORK/mt-1-job$JOB.txt")
done
echo "ok: fair-share serving is byte-identical across thread counts; quotas bounce with exit 4"

echo "== multi-shard coordinator smoke (offline, loopback only) =="
# Two shard servers plus a coordinator speaking the v2 shard frames, at
# a 1-thread and a 4-thread pool: the coordinated report must be
# byte-identical across thread counts and to the flat single-process
# run, events included — the cluster is invisible in the bytes. Then
# both failure legs, each across a real process death:
#  * SIGKILL one shard mid-job — the coordinator re-dispatches the lost
#    range to the survivor and the bytes still match flat.
#  * SIGKILL the coordinator mid-job — a fresh `coordinate` over the
#    same checkpoint root reattaches to the still-running shards,
#    resumes, and renders the same bytes.
for T in 1 4; do
    PA="$WORK/port-sa-$T"; PB="$WORK/port-sb-$T"; PC="$WORK/port-co-$T"
    DFM_THREADS=$T "$BIN" serve --threads "$T" --port 0 --port-file "$PA" \
        --shard-of 0/2 >/dev/null &
    SHARD_A=$!
    DFM_THREADS=$T "$BIN" serve --threads "$T" --port 0 --port-file "$PB" \
        --shard-of 1/2 >/dev/null &
    SHARD_B=$!
    for F in "$PA" "$PB"; do
        for _ in $(seq 100); do [[ -s "$F" ]] && break; sleep 0.05; done
    done
    DFM_THREADS=$T "$BIN" coordinate \
        --shards "127.0.0.1:$(cat "$PA"),127.0.0.1:$(cat "$PB")" \
        --threads "$T" --port 0 --port-file "$PC" >/dev/null &
    COORD=$!
    for _ in $(seq 100); do [[ -s "$PC" ]] && break; sleep 0.05; done
    PORT=$(cat "$PC")
    JOB=$("$BIN" submit --addr "127.0.0.1:$PORT" --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}")
    "$BIN" results --addr "127.0.0.1:$PORT" --job "$JOB" --wait >"$WORK/shard-$T.txt"
    "$BIN" events --addr "127.0.0.1:$PORT" --job "$JOB" >"$WORK/shard-$T.events"
    "$BIN" shutdown --addr "127.0.0.1:$PORT"
    wait "$COORD" 2>/dev/null || true; COORD=""
    for F in "$PA" "$PB"; do "$BIN" shutdown --addr "127.0.0.1:$(cat "$F")"; done
    wait "$SHARD_A" 2>/dev/null || true; SHARD_A=""
    wait "$SHARD_B" 2>/dev/null || true; SHARD_B=""
    diff "$WORK/flat.txt" "$WORK/shard-$T.txt"
done
diff "$WORK/shard-1.events" "$WORK/shard-4.events"
echo "ok: coordinated runs are byte-identical to the flat run at both thread counts"

# Shard death mid-job: slowed tiles so the SIGKILL lands while the
# survivor still has work; the lost range must be re-dispatched and the
# final report must still match the flat bytes.
PA="$WORK/port-sa-kill"; PB="$WORK/port-sb-kill"; PC="$WORK/port-co-kill"
DFM_SIGNOFF_TILE_DELAY_MS=100 "$BIN" serve --threads 2 --port 0 --port-file "$PA" \
    --shard-of 0/2 >/dev/null &
SHARD_A=$!
DFM_SIGNOFF_TILE_DELAY_MS=100 "$BIN" serve --threads 2 --port 0 --port-file "$PB" \
    --shard-of 1/2 >/dev/null &
SHARD_B=$!
for F in "$PA" "$PB"; do
    for _ in $(seq 100); do [[ -s "$F" ]] && break; sleep 0.05; done
done
"$BIN" coordinate --shards "127.0.0.1:$(cat "$PA"),127.0.0.1:$(cat "$PB")" \
    --threads 2 --port 0 --port-file "$PC" >/dev/null &
COORD=$!
for _ in $(seq 100); do [[ -s "$PC" ]] && break; sleep 0.05; done
PORT=$(cat "$PC")
JOB=$("$BIN" submit --addr "127.0.0.1:$PORT" --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}")
# Wait until merging is underway but far from done, then kill shard 0.
for _ in $(seq 100); do
    N=$("$BIN" events --addr "127.0.0.1:$PORT" --job "$JOB" | wc -l)
    [[ "$N" -ge 2 ]] && break
    sleep 0.05
done
kill -9 "$SHARD_A"
wait "$SHARD_A" 2>/dev/null || true; SHARD_A=""
"$BIN" results --addr "127.0.0.1:$PORT" --job "$JOB" --wait >"$WORK/shard-kill.txt"
"$BIN" shutdown --addr "127.0.0.1:$PORT"
wait "$COORD" 2>/dev/null || true; COORD=""
"$BIN" shutdown --addr "127.0.0.1:$(cat "$PB")"
wait "$SHARD_B" 2>/dev/null || true; SHARD_B=""
diff "$WORK/flat.txt" "$WORK/shard-kill.txt"
echo "ok: shard death re-dispatches to the survivor, bytes unchanged"

# Coordinator death mid-job: the restarted coordinator derives the same
# identity from the checkpoint root, reattaches to the shards' retained
# jobs, and replays from its last merged prefix.
PA="$WORK/port-sa-re"; PB="$WORK/port-sb-re"; PC="$WORK/port-co-re"
DFM_SIGNOFF_TILE_DELAY_MS=100 "$BIN" serve --threads 2 --port 0 --port-file "$PA" \
    --shard-of 0/2 >/dev/null &
SHARD_A=$!
DFM_SIGNOFF_TILE_DELAY_MS=100 "$BIN" serve --threads 2 --port 0 --port-file "$PB" \
    --shard-of 1/2 >/dev/null &
SHARD_B=$!
for F in "$PA" "$PB"; do
    for _ in $(seq 100); do [[ -s "$F" ]] && break; sleep 0.05; done
done
SHARDS="127.0.0.1:$(cat "$PA"),127.0.0.1:$(cat "$PB")"
"$BIN" coordinate --shards "$SHARDS" --threads 2 --port 0 --port-file "$PC" \
    --ckpt "$WORK/coord-ckpt" >/dev/null &
COORD=$!
for _ in $(seq 100); do [[ -s "$PC" ]] && break; sleep 0.05; done
PORT=$(cat "$PC")
JOB=$("$BIN" submit --addr "127.0.0.1:$PORT" --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}")
for _ in $(seq 200); do
    compgen -G "$WORK/coord-ckpt/job-$JOB/tile-*.bin" >/dev/null && break
    sleep 0.05
done
compgen -G "$WORK/coord-ckpt/job-$JOB/tile-*.bin" >/dev/null
kill -9 "$COORD"
wait "$COORD" 2>/dev/null || true; COORD=""
"$BIN" coordinate --shards "$SHARDS" --threads 2 --port 0 --port-file "$PC.2" \
    --ckpt "$WORK/coord-ckpt" >/dev/null &
COORD=$!
for _ in $(seq 100); do [[ -s "$PC.2" ]] && break; sleep 0.05; done
PORT=$(cat "$PC.2")
"$BIN" resume --addr "127.0.0.1:$PORT" --job "$JOB" >/dev/null
"$BIN" results --addr "127.0.0.1:$PORT" --job "$JOB" --wait >"$WORK/shard-resumed.txt"
"$BIN" shutdown --addr "127.0.0.1:$PORT"
wait "$COORD" 2>/dev/null || true; COORD=""
for F in "$PA" "$PB"; do "$BIN" shutdown --addr "127.0.0.1:$(cat "$F")"; done
wait "$SHARD_A" 2>/dev/null || true; SHARD_A=""
wait "$SHARD_B" 2>/dev/null || true; SHARD_B=""
diff "$WORK/flat.txt" "$WORK/shard-resumed.txt"
echo "ok: restarted coordinator reattaches and replays, bytes unchanged"

echo "== graceful drain smoke (offline, loopback only) =="
# `shutdown --drain` must finish and checkpoint the in-flight tiles
# before acknowledging — so the second life resumes from a non-empty
# durable prefix and still renders the flat bytes.
DFM_SIGNOFF_TILE_DELAY_MS=60 "$BIN" serve --threads 2 --port 0 \
    --ckpt "$WORK/drain-ckpt" --port-file "$WORK/drain-port" >/dev/null &
SERVER=$!
for _ in $(seq 100); do [[ -s "$WORK/drain-port" ]] && break; sleep 0.05; done
PORT=$(cat "$WORK/drain-port")
JOB=$("$BIN" submit --addr "127.0.0.1:$PORT" --gds "$WORK/block.gds" "${SPEC_FLAGS[@]}")
for _ in $(seq 200); do
    compgen -G "$WORK/drain-ckpt/job-$JOB/tile-*.bin" >/dev/null && break
    sleep 0.05
done
"$BIN" shutdown --addr "127.0.0.1:$PORT" --drain
wait "$SERVER" 2>/dev/null || true
SERVER=""
# The drain ack means the in-flight tiles reached disk before exit.
compgen -G "$WORK/drain-ckpt/job-$JOB/tile-*.bin" >/dev/null
"$BIN" serve --threads 4 --port 0 --ckpt "$WORK/drain-ckpt" \
    --port-file "$WORK/drain-port2" >/dev/null &
SERVER=$!
for _ in $(seq 100); do [[ -s "$WORK/drain-port2" ]] && break; sleep 0.05; done
PORT=$(cat "$WORK/drain-port2")
"$BIN" resume --addr "127.0.0.1:$PORT" --job "$JOB" >/dev/null
"$BIN" results --addr "127.0.0.1:$PORT" --job "$JOB" --wait >"$WORK/drained.txt"
"$BIN" shutdown --addr "127.0.0.1:$PORT"
wait "$SERVER" 2>/dev/null || true
SERVER=""
diff "$WORK/flat.txt" "$WORK/drained.txt"
echo "ok: drained shutdown hands off cleanly; resumed bytes match flat"

echo "== crash-simulation matrix (offline, deterministic) =="
# The dfm-sim harness kills-and-restarts the whole stack at every
# registered crash site and re-runs its robustness scenarios, asserting
# byte-identity to the crash-free golden run. The transcript must be
# byte-identical across worker counts — determinism under crashes is
# the same contract as determinism under threads.
SIM=target/release/dfm-sim
DFM_THREADS=1 "$SIM" --seed 7 --root "$WORK/sim-t1" >"$WORK/sim-1.txt"
DFM_THREADS=4 "$SIM" --seed 7 --root "$WORK/sim-t4" >"$WORK/sim-4.txt"
diff "$WORK/sim-1.txt" "$WORK/sim-4.txt"
grep -q "^result: PASS$" "$WORK/sim-1.txt"
grep -q "^sites covered: " "$WORK/sim-1.txt"
echo "ok: every crash site recovers byte-identically at both worker counts"

echo "== signoff bench + cache gauges (offline) =="
# The warm-cache bench publishes the hit ratio and recompute count of a
# warm resubmission; a working cache pins them at 1 and 0. A small
# sample count bounds CI wall time.
DFM_BENCH_SAMPLES=3 DFM_BENCH_JSON="$PWD/target/signoff-bench.json" \
    cargo bench -p dfm-bench --bench signoff --offline
grep -q '"cache_hit_ratio"' target/signoff-bench.json
grep -q '"tiles_recomputed"' target/signoff-bench.json
grep -q '"score_after"' target/signoff-bench.json
grep -q '"fix_tiles_recomputed"' target/signoff-bench.json
# The sharded bench pins the cluster shape and the takeover's recovery
# volume: 2 shards, and a non-zero re-dispatched tile count.
grep -q '"name":"shards","value":2' target/signoff-bench.json
grep -q '"tiles_redispatched"' target/signoff-bench.json
# The robustness bench pins the crash-site matrix size and proves the
# client rode out torn frames with transparent reconnects (non-zero).
grep -q '"crash_sites_covered"' target/signoff-bench.json
grep -q '"reconnects"' target/signoff-bench.json
! grep -q '"name":"reconnects","value":0[,}]' target/signoff-bench.json

echo "CI OK"
