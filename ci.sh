#!/usr/bin/env bash
# Hermetic CI: the workspace must build, test, and bench-compile with no
# network and no registry. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== guard: workspace dependencies are path-only =="
# `cargo tree` prints registry packages as `name vX.Y.Z` with no source
# suffix, path packages as `name vX.Y.Z (/abs/path)`. Any dependency
# line lacking a local-path suffix means someone reintroduced a
# registry/git dependency — fail loudly before the build masks it with
# a cached copy.
# A dependency that cannot resolve offline (i.e. a registry dep with no
# cached copy) makes `cargo tree` itself fail, which must also fail the
# guard — so check its exit status before filtering.
tree=$(cargo tree --workspace --edges normal,build,dev --prefix none --offline)
non_path=$(printf '%s\n' "$tree" | sort -u | grep -v '^\s*$' | grep -v ' (/' || true)
if [[ -n "$non_path" ]]; then
    echo "error: non-path dependencies found:" >&2
    echo "$non_path" >&2
    exit 1
fi
echo "ok"

echo "== lint (clippy, -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline, DFM_THREADS=1) =="
DFM_THREADS=1 cargo test -q --workspace --offline

echo "== test (offline, DFM_THREADS=4) =="
# Same suite under a parallel pool: the determinism contract says the
# results — including every golden digest — must not change.
DFM_THREADS=4 cargo test -q --workspace --offline

echo "== benches compile (offline) =="
cargo bench --no-run --offline

echo "== tiled signoff bench + gauges (offline) =="
# Pins the tiled full-deck DRC bench in the JSON report, including the
# peak-per-tile working-set gauges that back the "never materialises a
# full layer" claim. The tiled-vs-flat equivalence suites themselves
# run above, under both thread counts, each at two tile sizes.
# Bench binaries run with the package dir as cwd, so pass an absolute
# report path.
DFM_BENCH_JSON="$PWD/target/tiled-bench.json" \
    cargo bench -p dfm-bench --bench engines --offline -- tiled_drc
grep -q '"gauges"' target/tiled-bench.json

echo "CI OK"
