//! Pattern catalogs: census every via-enclosure configuration in two
//! designs and compare their pattern distributions — the Layout Pattern
//! Catalog workflow.
//!
//! ```text
//! cargo run --release --example pattern_catalog
//! ```

use dfm_layout::{generate, layers, Technology};
use dfm_pattern::catalog::{anchors, Catalog};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n65();
    let radius = 4 * tech.rules(layers::METAL1).min_width;
    let snap = 10;

    let mut catalogs = Vec::new();
    for (name, params, seed) in [
        ("product-A", generate::RoutedBlockParams::default(), 11),
        ("product-B", generate::RoutedBlockParams::dense(), 22),
    ] {
        let params = generate::RoutedBlockParams { width: 20_000, height: 20_000, ..params };
        let lib = generate::routed_block(&tech, params, seed);
        let flat = lib.flatten(lib.top().expect("top"))?;
        let vias = flat.region(layers::VIA1);
        let m1 = flat.region(layers::METAL1);
        let m2 = flat.region(layers::METAL2);
        let pts = anchors::rect_centers(&vias);
        let catalog = Catalog::build(&[&vias, &m1, &m2], &pts, radius, snap);
        println!("== {name} ==\n{catalog}");
        catalogs.push((name, catalog));
    }

    let (na, a) = &catalogs[0];
    let (nb, b) = &catalogs[1];
    println!("KL({na} ‖ {nb}) = {:.4} nats", a.kl_divergence(b));
    println!("KL({nb} ‖ {na}) = {:.4} nats", b.kl_divergence(a));

    let outliers = b.outliers_vs(a, 3.0);
    println!(
        "\n{} pattern classes appear ≥3x more often in {nb} than {na}:",
        outliers.len()
    );
    for (class, ratio) in outliers.iter().take(5) {
        println!(
            "  ×{:.1} — {} occurrences, example at {}",
            ratio, class.count, class.example
        );
    }
    Ok(())
}
