//! DFM sign-off: apply the full technique suite to a generated block and
//! print the hit-or-hype verdict for each — the paper's question on one
//! page.
//!
//! ```text
//! cargo run --release --example dfm_signoff
//! ```

use dfm_core::{
    evaluate, EvaluationContext, MetalFill, RedundantViaInsertion, WireSpreading, WireWidening,
};
use dfm_layout::{generate, Technology};
use dfm_yield::DefectModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 25_000,
        height: 25_000,
        ..generate::RoutedBlockParams::default()
    };
    let lib = generate::routed_block(&tech, params, 99);
    let flat = lib.flatten(lib.top().expect("top"))?;

    // Yield-ramp conditions: defects are plentiful, via failures real.
    let mut ctx = EvaluationContext::for_technology(tech.clone());
    ctx.defects = DefectModel::new(ctx.defects.x0, 50_000.0);
    ctx.via_fail_prob = 5e-5;

    let baseline = ctx.predicted_yield(&flat);
    println!(
        "baseline: metal yield {:.4} × via yield {:.4} = {:.4}  ({} via connections)",
        baseline.metal_yield,
        baseline.via_yield,
        baseline.total(),
        baseline.via_stats.connections()
    );
    println!();

    let techniques: Vec<Box<dyn dfm_core::DfmTechnique>> = vec![
        Box::new(RedundantViaInsertion::for_technology(&tech)),
        Box::new(WireSpreading::from_context(&ctx)),
        Box::new(WireWidening::from_context(&ctx)),
        Box::new(MetalFill::from_context(&ctx)),
    ];
    for t in &techniques {
        let verdict = evaluate(t.as_ref(), &flat, &ctx);
        println!("{verdict}");
        for note in &verdict.notes {
            println!("    {note}");
        }
    }
    println!("\n(the full twelve-experiment evaluation: cargo run --release -p dfm-bench --bin experiments)");
    Ok(())
}
