//! Quickstart: build a small layout, write real GDSII, run DRC, simulate
//! printing, and predict yield — the whole stack in one page.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dfm_drc::{DrcEngine, RuleDeck};
use dfm_geom::Rect;
use dfm_layout::{gds, layers, Cell, Library, Technology};
use dfm_litho::{Condition, LithoSimulator};
use dfm_yield::{critical_area, model, DefectModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A technology and a hand-built cell: two wires and a via.
    let tech = Technology::n65();
    let w = tech.rules(layers::METAL1).min_width;
    let s = tech.rules(layers::METAL1).min_space;

    let mut lib = Library::new("quickstart");
    let mut cell = Cell::new("TOP");
    cell.add_rect(layers::METAL1, Rect::new(0, 0, 6000, w));
    // The second wire keeps clear of the via landing pad below.
    cell.add_rect(layers::METAL1, Rect::new(0, 2 * w + 2 * s, 6000, 3 * w + 2 * s));
    let via_center = dfm_geom::Point::new(3000, w / 2);
    cell.add_rect(layers::VIA1, tech.via_rect_at(via_center));
    cell.add_rect(layers::METAL1, tech.via_pad_at(via_center));
    cell.add_rect(layers::METAL2, tech.via_pad_at(via_center));
    cell.add_rect(layers::METAL2, Rect::new(2955, -2000, 3045, 2000));
    let top = lib.add_cell(cell)?;
    lib.set_top(top)?;

    // 2. Round-trip through binary GDSII.
    let path = std::env::temp_dir().join("dfm_quickstart.gds");
    gds::write_file(&lib, &path)?;
    let lib = gds::read_file(&path)?;
    println!("wrote and re-read {} ({} cells)", path.display(), lib.cell_count());

    // 3. DRC sign-off.
    let flat = lib.flatten(lib.top().expect("top cell"))?;
    let deck = RuleDeck::for_technology(&tech);
    let report = DrcEngine::new(&deck).run(&flat);
    println!("\n{report}");

    // 4. Lithography: print the metal-1 layer at nominal and defocus.
    let sim = LithoSimulator::for_feature_size(w);
    let drawn = flat.region(layers::METAL1);
    for cond in [Condition::nominal(), Condition::with_defocus(120.0)] {
        let printed = sim.printed(&drawn, cond);
        println!(
            "printed M1 at {cond}: {:.1}% of drawn area",
            100.0 * printed.area() as f64 / drawn.area() as f64
        );
    }

    // 5. Yield prediction.
    let defects = DefectModel::new(w / 2, 2000.0);
    let ca = critical_area::analyze(&drawn, &defects);
    println!(
        "\ncritical area: shorts {:.3} µm², opens {:.3} µm²",
        ca.short_ca_nm2 / 1e6,
        ca.open_ca_nm2 / 1e6
    );
    println!(
        "random-defect yield of this toy block: {:.6}",
        model::poisson_yield(ca.total_ca_nm2(), defects.d0_per_cm2)
    );
    let _ = std::fs::remove_file(&path);
    Ok(())
}
