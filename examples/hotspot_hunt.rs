//! Hotspot hunt: find printability hotspots by simulation, cluster them
//! into failure classes, learn a pattern library, and rescan the design —
//! the DRC-Plus flow end to end.
//!
//! ```text
//! cargo run --release --example hotspot_hunt
//! ```

use dfm_geom::{Point, Rect, Region};
use dfm_layout::{generate, layers, Technology};
use dfm_litho::hotspots::{find_hotspots, HotspotParams};
use dfm_litho::{Condition, LithoSimulator};
use dfm_pattern::cluster::agglomerative_cluster;
use dfm_pattern::PatternLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n45();
    let params = generate::RoutedBlockParams {
        width: 20_000,
        height: 20_000,
        ..generate::RoutedBlockParams::dense()
    };
    let lib = generate::routed_block(&tech, params, 4242);
    let flat = lib.flatten(lib.top().expect("top"))?;
    let m1 = flat.region(layers::METAL1);
    let w = tech.rules(layers::METAL1).min_width;

    // 1. Golden hotspots from simulation at a defocus stress condition.
    let sim = LithoSimulator::for_feature_size(w * 14 / 10);
    let cond = Condition::with_defocus(140.0);
    let hotspots = find_hotspots(&sim, &m1, cond, HotspotParams::for_min_width(w));
    println!("simulation found {} hotspots at {cond}", hotspots.len());
    for h in hotspots.iter().take(5) {
        println!("  {} at {} severity {}", h.kind, h.location, h.severity);
    }

    // 2. Cluster the hotspot clips into failure classes.
    let radius = 6 * w;
    let window = Rect::centered_at(Point::origin(), 2 * radius, 2 * radius);
    let clips: Vec<Region> = hotspots
        .iter()
        .take(60) // clustering is quadratic; a sample suffices
        .map(|h| {
            let c = h.location.center();
            m1.clipped(Rect::centered_at(c, 2 * radius, 2 * radius))
                .translated(dfm_geom::Vector::new(-c.x, -c.y))
        })
        .collect();
    let clusters = agglomerative_cluster(&clips, window, 0.04);
    println!(
        "\n{} hotspot clips fall into {} geometric classes",
        clips.len(),
        clusters.len()
    );
    for (i, c) in clusters.iter().take(8).enumerate() {
        println!("  class {i}: {} members", c.members.len());
    }

    // 3. Learn one pattern per hotspot and rescan the design.
    let mut library: PatternLibrary<()> = PatternLibrary::new(radius, w / 8, w / 6);
    for h in &hotspots {
        library.learn(&[&m1], h.location.center(), ());
    }
    println!("\nlearned {library}");

    let anchors: Vec<Point> = hotspots.iter().map(|h| h.location.center()).collect();
    let t = std::time::Instant::now();
    let matches = library.scan(&[&m1], &anchors);
    println!(
        "rescan of {} sites matched {} in {:.1} ms (no simulation needed)",
        anchors.len(),
        matches.len(),
        t.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}
