//! Fill and write back: run metal fill on a sparse design, score the
//! result, write the processed layout back to binary GDSII, and persist
//! the design's pattern catalog — the tape-out tail of the DFM flow.
//!
//! ```text
//! cargo run --release --example fill_and_writeback
//! ```

use dfm_core::{scorecard, DfmTechnique, EvaluationContext, MetalFill};
use dfm_layout::{gds, generate, layers, Technology};
use dfm_pattern::catalog::{anchors, Catalog};
use dfm_pattern::pdb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 20_000,
        height: 20_000,
        ..generate::RoutedBlockParams::sparse()
    };
    let lib = generate::routed_block(&tech, params, 1234);
    let flat = lib.flatten(lib.top().expect("top"))?;
    let ctx = EvaluationContext::for_technology(tech.clone());

    // 1. Score, fill, score again.
    let before = scorecard(&flat, &ctx);
    println!("before fill:\n{before}\n");
    let filled = MetalFill::from_context(&ctx).apply(&flat, &tech);
    for note in &filled.notes {
        println!("fill: {note}");
    }
    let after = scorecard(&filled.layout, &ctx);
    println!("\nafter fill:\n{after}\n");

    // 2. Write the processed layout back to GDSII (fill on its own
    //    datatypes), then prove it re-reads identically.
    let out_lib = filled.layout.to_library("filled_block", "TOP_FILLED");
    let path = std::env::temp_dir().join("dfm_filled_block.gds");
    gds::write_file(&out_lib, &path)?;
    let back = gds::read_file(&path)?;
    let reflat = back.flatten(back.top().expect("top"))?;
    assert_eq!(
        reflat.region(layers::FILL_M1),
        filled.layout.region(layers::FILL_M1)
    );
    println!(
        "wrote {} ({} bytes, {} fill shapes on {} / {})",
        path.display(),
        std::fs::metadata(&path)?.len(),
        filled.layout.region(layers::FILL_M1).rect_count()
            + filled.layout.region(layers::FILL_M2).rect_count(),
        layers::FILL_M1,
        layers::FILL_M2,
    );

    // 3. Persist the via-enclosure pattern catalog (the PDB).
    let vias = flat.region(layers::VIA1);
    let m1 = flat.region(layers::METAL1);
    let m2 = flat.region(layers::METAL2);
    let pts = anchors::rect_centers(&vias);
    let radius = tech.via_size / 2 + tech.via_enclosure + tech.rules(layers::METAL1).min_width;
    let catalog = Catalog::build(&[&vias, &m1, &m2], &pts, radius, 15);
    let pdb_path = std::env::temp_dir().join("dfm_block.pdb");
    pdb::write_file(&catalog, &pdb_path)?;
    let reloaded = pdb::read_file(&pdb_path)?;
    println!(
        "\npattern database: {} classes over {} vias persisted to {} and reloaded (KL drift {:.1e})",
        reloaded.class_count(),
        reloaded.total(),
        pdb_path.display(),
        catalog.kl_divergence(&reloaded)
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&pdb_path);
    Ok(())
}
