//! Cross-crate property-based tests: invariants that span the geometry,
//! DRC, yield and DFM layers (dfm-check harness).

use dfm_check::{check, prop_assert, prop_assert_eq, Config, Gen};
use dfm_practice::geom::{Rect, Region, Vector};
use dfm_practice::layout::{layers, Cell, FlatLayout, Library, Technology};

fn cfg() -> Config {
    Config::with_cases(32)
}

fn arb_wires() -> impl Gen<Value = Vec<Rect>> {
    // Horizontal wires on random tracks with random spans: a plausible
    // mini routing layer.
    dfm_check::vec((0i64..12, 0i64..30, 5i64..40), 1..10).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(track, start, len)| {
                Rect::new(start * 100, track * 300, (start + len) * 100, track * 300 + 90)
            })
            .collect()
    })
}

fn flat_of(rects: &[Rect]) -> FlatLayout {
    let mut lib = Library::new("prop");
    let mut c = Cell::new("TOP");
    for &r in rects {
        c.add_rect(layers::METAL1, r);
    }
    let id = lib.add_cell(c).expect("add");
    lib.flatten(id).expect("flatten")
}

/// DRC results are translation-invariant.
#[test]
fn drc_translation_invariant() {
    check(
        "drc_translation_invariant",
        &cfg(),
        &(arb_wires(), -5000i64..5000, -5000i64..5000),
        |v| {
            let (rects, dx, dy) = v;
            let region = Region::from_rects(rects.iter().copied());
            let moved = region.translated(Vector::new(*dx, *dy));
            let a = dfm_practice::drc::spacing_violations(&region, 120);
            let b = dfm_practice::drc::spacing_violations(&moved, 120);
            prop_assert_eq!(a.len(), b.len());
            let aw = dfm_practice::drc::width_violations(&region, 120);
            let bw = dfm_practice::drc::width_violations(&moved, 120);
            prop_assert_eq!(aw.len(), bw.len());
            Ok(())
        },
    );
}

/// Critical area is translation-invariant and monotone under erasure.
#[test]
fn critical_area_invariants() {
    check("critical_area_invariants", &cfg(), &arb_wires(), |rects| {
        let defects = dfm_practice::yieldsim::DefectModel::new(45, 1.0);
        let region = Region::from_rects(rects.iter().copied());
        let ca = dfm_practice::yieldsim::critical_area::analyze(&region, &defects);
        prop_assert!(ca.short_ca_nm2 >= 0.0);
        prop_assert!(ca.open_ca_nm2 >= 0.0);

        let moved = region.translated(Vector::new(1234, -777));
        let ca2 = dfm_practice::yieldsim::critical_area::analyze(&moved, &defects);
        prop_assert!((ca.total_ca_nm2() - ca2.total_ca_nm2()).abs() < 1e-6);

        // Removing a wire never increases the short CA.
        if rects.len() > 1 {
            let fewer = Region::from_rects(rects[1..].iter().copied());
            let ca3 = dfm_practice::yieldsim::critical_area::analyze(&fewer, &defects);
            prop_assert!(ca3.short_ca_nm2 <= ca.short_ca_nm2 + 1e-9);
        }
        Ok(())
    });
}

/// Wire widening is additive, deterministic, and never creates
/// spacing violations that were not already present.
#[test]
fn widening_is_safe() {
    check("widening_is_safe", &cfg(), &arb_wires(), |rects| {
        let tech = Technology::n65();
        let flat = flat_of(rects);
        let before_region = flat.region(layers::METAL1);
        let min_space = tech.rules(layers::METAL1).min_space;
        let before = dfm_practice::drc::spacing_violations(&before_region, min_space).len();

        let w = dfm_practice::dfm::WireWidening {
            delta: 22,
            metal_layers: [layers::METAL1, layers::METAL2],
        };
        use dfm_practice::dfm::DfmTechnique;
        let out = w.apply(&flat, &tech);
        let after_region = out.layout.region(layers::METAL1);
        prop_assert!(before_region.difference(&after_region).is_empty(), "additive");
        let after = dfm_practice::drc::spacing_violations(&after_region, min_space).len();
        prop_assert!(after <= before, "violations {before} -> {after}");

        let out2 = w.apply(&flat, &tech);
        prop_assert_eq!(after_region, out2.layout.region(layers::METAL1));
        Ok(())
    });
}

/// DPT decomposition always preserves geometry and produces
/// non-overlapping masks, regardless of input.
#[test]
fn dpt_partition_invariant() {
    check("dpt_partition_invariant", &cfg(), &arb_wires(), |rects| {
        let layer = Region::from_rects(rects.iter().copied());
        let d = dfm_practice::dpt::decompose(&layer, dfm_practice::dpt::DptParams::default());
        prop_assert!(d.mask_a.intersection(&d.mask_b).area() <= layer.area());
        // Union may lose only dropped (conflicted) features.
        let union = d.mask_a.union(&d.mask_b);
        prop_assert!(union.difference(&layer).is_empty(), "masks within layer");
        if d.conflicts.is_empty() {
            prop_assert_eq!(union, layer);
        }
        Ok(())
    });
}

/// Pattern encode/match round-trip: a clip always matches itself and
/// its own translation.
#[test]
fn pattern_self_match() {
    check(
        "pattern_self_match",
        &cfg(),
        &(arb_wires(), 0i64..5000),
        |v| {
            let (rects, shift) = v;
            let region = Region::from_rects(rects.iter().copied());
            let anchor = region.bbox().center();
            let mut lib: dfm_practice::pattern::PatternLibrary<()> =
                dfm_practice::pattern::PatternLibrary::new(600, 10, 5);
            lib.learn(&[&region], anchor, ());
            let moved = region.translated(Vector::new(*shift, 0));
            let matches = lib.scan(&[&moved], &[anchor + Vector::new(*shift, 0)]);
            prop_assert_eq!(matches.len(), 1);
            Ok(())
        },
    );
}
