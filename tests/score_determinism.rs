//! Score-determinism suite: the manufacturability score is part of the
//! deterministic surface. Its JSON line must be byte-identical at any
//! worker count, cold or warm, local (flat) or through the service —
//! and the auto-fix loop must honour the cache contract: a no-op fix
//! resubmits into a fully warm cache and recomputes nothing.

use dfm_practice::cache::TileCache;
use dfm_practice::layout::{gds, generate, layers, Technology};
use dfm_practice::signoff::{
    auto_fix, flat_score, JobSpec, ServiceConfig, SignoffService,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn block_gds(seed: u64) -> Vec<u8> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 6_000,
        height: 6_000,
        ..Default::default()
    };
    gds::to_bytes(&generate::routed_block(&tech, params, seed)).expect("serialise")
}

fn scored_spec() -> JobSpec {
    JobSpec {
        name: "score-det".to_string(),
        tile: 1700,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        score: Some("default".to_string()),
        ..JobSpec::default()
    }
}

/// A unique temp dir per call, so cases never share cache state.
fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dfms-score-{tag}-{}-{n}", std::process::id()))
}

fn service(threads: usize, cache: Option<Arc<TileCache>>) -> SignoffService {
    SignoffService::with_config(ServiceConfig { cache, ..ServiceConfig::new(threads) })
}

/// Runs one scored job to settlement and returns the score JSON line
/// plus the settled status.
fn run_scored(
    svc: &SignoffService,
    spec: &JobSpec,
    bytes: &[u8],
) -> (dfm_practice::signoff::service::JobStatus, String) {
    let job = svc.submit(spec.clone(), bytes.to_vec()).expect("submit");
    let status = svc.wait(job).expect("wait");
    assert!(status.error.is_none(), "job failed: {:?}", status.error);
    svc.score_json(job).expect("score")
}

#[test]
fn score_json_is_byte_identical_across_worker_counts_and_warmth() {
    let bytes = block_gds(41);
    let spec = scored_spec();

    // The flat one-shot scorer is the reference rendering.
    let lib = gds::from_bytes(&bytes).expect("parse");
    let (_, flat) = flat_score(&spec, &lib).expect("flat score");
    let reference = flat.render();

    // Cold runs at 1, 2, and 8 workers.
    for threads in [1usize, 2, 8] {
        let (_, json) = run_scored(&service(threads, None), &spec, &bytes);
        assert_eq!(json, reference, "cold run at {threads} workers diverged");
    }

    // A warm run through a populated cache renders the same bytes.
    let dir = fresh_dir("warmth");
    let cache = Arc::new(TileCache::open(&dir, None).expect("cache"));
    let (cold_status, cold_json) = run_scored(&service(4, Some(cache.clone())), &spec, &bytes);
    assert_eq!(cold_status.tiles_cached, 0);
    let (warm_status, warm_json) = run_scored(&service(4, Some(cache)), &spec, &bytes);
    assert_eq!(warm_status.tiles_cached, warm_status.tiles_total, "expected a fully warm run");
    assert_eq!(cold_json, reference);
    assert_eq!(warm_json, reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn score_digest_is_pinned() {
    // The golden digest for routed block seed 41 under the default
    // score spec. A change here is a change to the score model, the
    // metric extraction, or the JSON rendering — all of which are
    // compatibility breaks for recorded scores and must be deliberate.
    let lib = gds::from_bytes(&block_gds(41)).expect("parse");
    let (_, score) = flat_score(&scored_spec(), &lib).expect("score");
    assert_eq!(
        score.digest(),
        0x3e40_7147_1d21_f90a,
        "score digest moved: {:#018x} (render: {})",
        score.digest(),
        score.render()
    );
}

#[test]
fn no_op_auto_fix_recomputes_zero_tiles() {
    let bytes = block_gds(42);
    // A score spec that is already saturated leaves no room for strict
    // improvement: the fix loop keeps nothing and returns the input
    // bytes verbatim.
    let spec = JobSpec {
        score: Some("pass 0.0\nmetric litho.area_ratio weight 0 scorer identity".to_string()),
        ..scored_spec()
    };
    let outcome = auto_fix(&spec, &bytes).expect("fix");
    assert!(!outcome.changed);
    assert_eq!(outcome.gds, bytes, "no-op fix must preserve exact bytes");

    let dir = fresh_dir("noop");
    let cache = Arc::new(TileCache::open(&dir, None).expect("cache"));
    let svc = service(4, Some(cache));
    let (first, _) = run_scored(&svc, &spec, &bytes);
    assert_eq!(first.tiles_cached, 0);
    let computed_after_first = svc.pool_stats().completed;

    // Resubmitting the fix outcome hits the cache on every tile: zero
    // pool tasks run.
    let (second, second_json) = run_scored(&svc, &spec, &outcome.gds);
    assert_eq!(second.tiles_cached, second.tiles_total);
    assert_eq!(
        svc.pool_stats().completed,
        computed_after_first,
        "a no-op fix resubmission must not recompute any tile"
    );
    let (_, first_json) = svc.score_json(first.id).expect("first score");
    assert_eq!(first_json, second_json);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auto_fix_improves_score_and_the_service_agrees() {
    let bytes = block_gds(41);
    let spec = scored_spec();
    let outcome = auto_fix(&spec, &bytes).expect("fix");
    assert!(outcome.changed, "expected the fix to land on this seed");
    assert!(
        outcome.score_after.score > outcome.score_before.score,
        "after {} !> before {}",
        outcome.score_after.score,
        outcome.score_before.score
    );

    // The service-side score of the fixed layout is byte-identical to
    // the fix loop's own after-score: shared metrics, shared spec.
    let dir = fresh_dir("fix");
    let cache = Arc::new(TileCache::open(&dir, None).expect("cache"));
    let svc = service(4, Some(cache.clone()));
    let (_, before_json) = run_scored(&svc, &spec, &bytes);
    assert_eq!(before_json, outcome.score_before.render());
    let (_, after_json) = run_scored(&svc, &spec, &outcome.gds);
    assert_eq!(after_json, outcome.score_after.render());

    // Re-running the whole fix pass against the now-warm cache is pure
    // cache traffic: both passes fully served, nothing recomputed.
    let svc2 = service(4, Some(cache));
    let baseline = svc2.pool_stats().completed;
    let (rerun_before, _) = run_scored(&svc2, &spec, &bytes);
    let (rerun_after, _) = run_scored(&svc2, &spec, &outcome.gds);
    assert_eq!(rerun_before.tiles_cached, rerun_before.tiles_total);
    assert_eq!(rerun_after.tiles_cached, rerun_after.tiles_total);
    assert_eq!(svc2.pool_stats().completed, baseline);
    let _ = std::fs::remove_dir_all(&dir);
}
