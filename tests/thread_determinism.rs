//! Cross-thread determinism suite: the determinism contract of DESIGN.md
//! asserted end to end. Every engine output — experiment reports, the
//! golden GDS byte stream — must be bit-identical for `DFM_THREADS` ∈
//! {1, 2, 8}, enforced here via `dfm_par::with_threads` so all three
//! settings run inside one test process.
//!
//! These experiments compose every parallelized engine: E1 exercises
//! the critical-area pipeline over the grid index, E4 the litho
//! raster/blur passes, hotspot detection, and the pattern-matcher scan,
//! E12 the stratified Monte-Carlo estimators.

use dfm_check::fnv1a_64;
use dfm_layout::generate::RoutedBlockParams;
use dfm_layout::{gds, generate, Technology};

fn at_threads<R>(n: usize, f: impl Fn() -> R) -> R {
    dfm_par::with_threads(n, f)
}

/// Drops wall-clock rows (`runtime`, `speedup`) from a report: they are
/// the only lines allowed to differ between runs.
fn stable_lines(report: &str) -> String {
    report
        .lines()
        .filter(|l| !l.contains("runtime") && !l.contains("speedup"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn e1_ca_table_identical_across_thread_counts() {
    let seq = at_threads(1, dfm_bench::e_yield::e1_spreading_widening);
    let two = at_threads(2, dfm_bench::e_yield::e1_spreading_widening);
    let eight = at_threads(8, dfm_bench::e_yield::e1_spreading_widening);
    assert_eq!(seq, two, "E1 differs between 1 and 2 threads");
    assert_eq!(seq, eight, "E1 differs between 1 and 8 threads");
}

#[test]
fn e4_recall_identical_across_thread_counts() {
    let seq = stable_lines(&at_threads(1, dfm_bench::e_litho::e4_hotspot_screening));
    let two = stable_lines(&at_threads(2, dfm_bench::e_litho::e4_hotspot_screening));
    let eight = stable_lines(&at_threads(8, dfm_bench::e_litho::e4_hotspot_screening));
    assert!(seq.contains("recall"), "E4 report shape changed:\n{seq}");
    assert_eq!(seq, two, "E4 differs between 1 and 2 threads");
    assert_eq!(seq, eight, "E4 differs between 1 and 8 threads");
}

#[test]
fn e12_mc_estimate_identical_across_thread_counts() {
    let seq = at_threads(1, dfm_bench::e_yield::e12_monte_carlo);
    let two = at_threads(2, dfm_bench::e_yield::e12_monte_carlo);
    let eight = at_threads(8, dfm_bench::e_yield::e12_monte_carlo);
    assert_eq!(seq, two, "E12 differs between 1 and 2 threads");
    assert_eq!(seq, eight, "E12 differs between 1 and 8 threads");
}

#[test]
fn golden_gds_digest_unchanged_at_any_thread_count() {
    // Same pinned digest as crates/layout/tests/gds_golden.rs: layout
    // generation + serialisation must not be perturbed by threading.
    const GOLDEN_DIGEST: u64 = 0x041e_bb3e_bfdd_7dde;
    for threads in [1usize, 2, 8] {
        let digest = at_threads(threads, || {
            let lib = generate::routed_block(&Technology::n65(), RoutedBlockParams::dense(), 42);
            fnv1a_64(&gds::to_bytes(&lib).expect("serialise"))
        });
        assert_eq!(
            digest, GOLDEN_DIGEST,
            "golden GDS digest changed at DFM_THREADS={threads}"
        );
    }
}
