//! End-to-end integration: generate → GDSII → DRC → litho → techniques →
//! yield, across every crate in the workspace.

use dfm_practice::dfm::{evaluate, DfmTechnique, EvaluationContext, RedundantViaInsertion, WireWidening};
use dfm_practice::drc::{DrcEngine, RuleDeck};
use dfm_practice::layout::{gds, generate, layers, Technology};
use dfm_practice::litho::{Condition, LithoSimulator};
use dfm_practice::yieldsim::DefectModel;

fn block() -> (Technology, dfm_practice::layout::Library) {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 15_000,
        height: 15_000,
        ..Default::default()
    };
    let lib = generate::routed_block(&tech, params, 7777);
    (tech, lib)
}

#[test]
fn generated_block_survives_gds_roundtrip_exactly() {
    let (_, lib) = block();
    let bytes = gds::to_bytes(&lib).expect("serialise");
    let back = gds::from_bytes(&bytes).expect("parse");
    let fa = lib.flatten(lib.top().expect("top")).expect("flatten a");
    let fb = back.flatten(back.top().expect("top")).expect("flatten b");
    for layer in [layers::METAL1, layers::METAL2, layers::VIA1] {
        assert_eq!(fa.region(layer), fb.region(layer), "layer {layer}");
    }
}

#[test]
fn generated_block_is_signoff_clean_except_density() {
    let (tech, lib) = block();
    let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
    let deck = RuleDeck::for_technology(&tech);
    let report = DrcEngine::new(&deck).run(&flat);
    for v in report.violations() {
        assert!(
            v.rule.ends_with(".DEN"),
            "unexpected hard-rule violation: {v}"
        );
    }
}

#[test]
fn techniques_compose_and_improve_yield() {
    let (tech, lib) = block();
    let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
    let mut ctx = EvaluationContext::for_technology(tech.clone());
    ctx.defects = DefectModel::new(ctx.defects.x0, 50_000.0);
    ctx.via_fail_prob = 1e-4;

    let v1 = evaluate(&RedundantViaInsertion::for_technology(&tech), &flat, &ctx);
    assert!(v1.yield_after > v1.yield_before, "{v1}");

    // Compose: widen after via insertion; the result must stay DRC-clean
    // on hard rules and must not lose the via-yield gain.
    let widened = WireWidening::from_context(&ctx)
        .apply(
            &RedundantViaInsertion::for_technology(&tech)
                .apply(&flat, &tech)
                .layout,
            &tech,
        )
        .layout;
    let deck = RuleDeck::for_technology(&tech);
    let report = DrcEngine::new(&deck).run(&widened);
    for v in report.violations() {
        assert!(v.rule.ends_with(".DEN"), "composition broke DRC: {v}");
    }
    let composed = ctx.predicted_yield(&widened);
    let baseline = ctx.predicted_yield(&flat);
    assert!(composed.total() > baseline.total());
}

#[test]
fn printed_image_covers_most_of_drawn_metal() {
    let (tech, lib) = block();
    let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
    let m1 = flat.region(layers::METAL1);
    let sim = LithoSimulator::for_feature_size(tech.rules(layers::METAL1).min_width);
    // Nominal condition on a clean min-pitch layout: the print covers the
    // bulk of the drawn metal (corner rounding and line ends lose a little).
    let printed = sim.printed(&m1, Condition::nominal());
    let covered = m1.intersection(&printed).area() as f64 / m1.area() as f64;
    assert!(covered > 0.85, "printed covers only {:.1}%", covered * 100.0);
}

#[test]
fn sram_array_flattens_and_catalogs() {
    let tech = Technology::n65();
    let lib = generate::sram_array(&tech, 16, 16);
    let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
    let contacts = flat.region(layers::CONTACT);
    assert_eq!(contacts.rect_count(), 256);
    // All 256 contacts share one pattern class: a perfectly regular array.
    let anchors = dfm_practice::pattern::catalog::anchors::rect_centers(&contacts);
    let poly = flat.region(layers::POLY);
    let m1 = flat.region(layers::METAL1);
    let catalog = dfm_practice::pattern::Catalog::build(&[&contacts, &poly, &m1], &anchors, 250, 5);
    assert!(
        catalog.class_count() <= 4,
        "regular array should have few classes, got {}",
        catalog.class_count()
    );
    assert!(catalog.coverage_top_k(1) > 0.5);
}
