//! Adversarial cache suite: the store is untrusted input. Truncated,
//! bit-flipped, and zero-length entries must read as misses — a silent
//! recompute with the exact cold-run bytes, never an error and never
//! wrong data. And failure paths must not poison the store: a
//! quarantined tile leaves no entry behind.

use dfm_practice::cache::TileCache;
use dfm_practice::fault::{FaultAction, FaultPlan, FaultPlane, FaultRule};
use dfm_practice::geom::Rect;
use dfm_practice::layout::{gds, layers, Cell, Library};
use dfm_practice::rand::{Rng, Seed};
use dfm_practice::signoff::service::{JobState, JobStatus, SITE_TILE_COMPUTE};
use dfm_practice::signoff::{JobContext, JobSpec, ServiceConfig, SignoffService};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dfms-adv-{tag}-{}-{n}", std::process::id()))
}

/// A small deterministic layout: 16 tiles at `tile: 1000` over 4 µm.
fn fixture_gds(seed: u64) -> Vec<u8> {
    let mut rng = Rng::from_seed(Seed(0xadce).derive(seed));
    let mut cell = Cell::new("TOP");
    cell.add_rect(layers::METAL1, Rect::new(0, 0, 120, 120));
    cell.add_rect(layers::METAL1, Rect::new(3_880, 3_880, 4_000, 4_000));
    for _ in 0..50 {
        let x = rng.range(0..3_500i64);
        let y = rng.range(0..3_500i64);
        cell.add_rect(layers::METAL1, Rect::new(x, y, x + rng.range(90..400), y + rng.range(90..400)));
    }
    let mut lib = Library::new("adversarial");
    lib.add_cell(cell).expect("cell");
    gds::to_bytes(&lib).expect("serialise")
}

fn fixture_spec() -> JobSpec {
    JobSpec {
        name: "adversarial".to_string(),
        tile: 1000,
        halo: 64,
        drc: false,
        ca_layer: Some(layers::METAL1),
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

fn run_once(
    threads: usize,
    cache: &Arc<TileCache>,
    plan: Option<&FaultPlan>,
    spec: &JobSpec,
    gds_bytes: &[u8],
) -> (JobStatus, Option<String>) {
    let service = SignoffService::with_config(ServiceConfig {
        cache: Some(Arc::clone(cache)),
        fault_plane: plan.map(|p| Arc::new(FaultPlane::new(p.clone()))),
        ..ServiceConfig::new(threads)
    });
    let id = service.submit(spec.clone(), gds_bytes.to_vec()).expect("submit");
    let status = service.wait(id).expect("wait");
    let text = service.report_text(id, true).ok().map(|(_, t)| t);
    (status, text)
}

/// The cache's entry files, sorted for a deterministic victim order.
fn entry_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(root)
        .expect("read_dir")
        .map(|e| e.expect("dirent").path())
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    files.sort();
    files
}

#[test]
fn corrupt_entries_silently_recompute_with_correct_bytes() {
    // Prime the cache, then vandalise three distinct entries —
    // truncate one to half, flip a bit in another, zero a third. The
    // warm run must finish Done with the exact cold bytes, hitting
    // every intact entry and recomputing (and re-storing) the three
    // victims; a third run is then fully warm again.
    let gds_bytes = fixture_gds(7);
    let spec = fixture_spec();
    let root = fresh_dir("corrupt");
    let cache = Arc::new(TileCache::open(&root, None).expect("cache"));
    let (cold, cold_text) = run_once(4, &cache, None, &spec, &gds_bytes);
    assert_eq!(cold.state, JobState::Done, "{:?}", cold.error);
    let cold_text = cold_text.expect("report");
    let total = cold.tiles_total;
    assert!(total >= 4, "fixture too small to pick 3 victims from {total}");
    let files = entry_files(&root);
    assert_eq!(files.len(), total);

    // Victim 0: truncated to half its length.
    let bytes = fs::read(&files[0]).expect("read");
    fs::write(&files[0], &bytes[..bytes.len() / 2]).expect("truncate");
    // Victim 1: one bit flipped in the middle of the payload.
    let mut bytes = fs::read(&files[1]).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&files[1], &bytes).expect("bit-flip");
    // Victim 2: zero-length file.
    fs::write(&files[2], b"").expect("zero");

    let (warm, warm_text) = run_once(4, &cache, None, &spec, &gds_bytes);
    assert_eq!(warm.state, JobState::Done, "{:?}", warm.error);
    assert_eq!(warm.tiles_cached, total - 3, "exactly the 3 victims recompute");
    assert_eq!(warm_text.as_deref(), Some(cold_text.as_str()), "corruption leaked into bytes");
    assert!(cache.stats().corrupt_dropped >= 2, "truncated/bit-flipped entries were dropped");
    assert_eq!(cache.len(), total, "victims were re-stored");
    let verify = cache.verify();
    assert_eq!(verify.removed, 0, "store is clean again: {verify:?}");
    assert_eq!(verify.ok, total);

    let (third, third_text) = run_once(4, &cache, None, &spec, &gds_bytes);
    assert_eq!(third.tiles_cached, total, "third run is fully warm");
    assert_eq!(third_text.as_deref(), Some(cold_text.as_str()));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn every_entry_corrupted_degrades_to_a_full_cold_run() {
    let gds_bytes = fixture_gds(11);
    let spec = fixture_spec();
    let root = fresh_dir("scorch");
    let cache = Arc::new(TileCache::open(&root, None).expect("cache"));
    let (cold, cold_text) = run_once(2, &cache, None, &spec, &gds_bytes);
    assert_eq!(cold.state, JobState::Done);
    for file in entry_files(&root) {
        fs::write(&file, b"DFMCgarbage").expect("scorch");
    }
    let (warm, warm_text) = run_once(2, &cache, None, &spec, &gds_bytes);
    assert_eq!(warm.state, JobState::Done);
    assert_eq!(warm.tiles_cached, 0, "nothing valid to hit");
    assert_eq!(warm_text, cold_text);
    assert_eq!(cache.len(), cold.tiles_total, "all entries re-stored");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn quarantined_tiles_leave_no_poisoned_entries() {
    // A tile that panics through its whole attempt budget is
    // quarantined; the cache must hold an entry for every tile *but*
    // that one, and verify() must find the store clean — no torn or
    // partial write from the failed attempts.
    let gds_bytes = fixture_gds(3);
    let spec = fixture_spec();
    let victim = 5usize;
    let plan = FaultPlan::seeded(9).with_rule(
        FaultRule::new(SITE_TILE_COMPUTE, FaultAction::Panic)
            .key(victim as u64)
            .first_attempts(64),
    );
    let root = fresh_dir("quarantine");
    let cache = Arc::new(TileCache::open(&root, None).expect("cache"));
    let (status, _) = run_once(4, &cache, Some(&plan), &spec, &gds_bytes);
    assert_eq!(status.state, JobState::Partial, "{:?}", status.error);
    assert_eq!(status.tiles_quarantined, 1);
    let total = status.tiles_total;
    assert!(victim < total);
    assert_eq!(cache.len(), total - 1, "every clean tile stored, victim absent");
    let ctx = JobContext::build(&spec, &gds_bytes).expect("ctx");
    assert!(
        !cache.contains(ctx.cache_key(victim)),
        "quarantined tile must never be cached"
    );
    let verify = cache.verify();
    assert_eq!(verify.removed, 0, "no torn entries: {verify:?}");
    assert_eq!(verify.ok, total - 1);

    // A warm rerun under the same plan quarantines the same tile again
    // (it was never cached, so the fault replays identically) and
    // serves everything else.
    let (warm, _) = run_once(4, &cache, Some(&plan), &spec, &gds_bytes);
    assert_eq!(warm.state, JobState::Partial);
    assert_eq!(warm.tiles_quarantined, 1);
    assert_eq!(warm.tiles_cached, total - 1);
    let _ = std::fs::remove_dir_all(&root);
}
