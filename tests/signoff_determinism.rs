//! Signoff-service determinism suite: the scheduler must be invisible
//! in the bytes. One fixed job is run through the service at several
//! worker counts, cancelled at random points, killed down to random
//! checkpoint subsets — and every completed run must render the exact
//! report text of the flat single-shot engines.

use dfm_check::{bools, check, prop_assert, prop_assert_eq, Config};
use dfm_practice::layout::{gds, generate, layers, Technology};
use dfm_practice::signoff::service::JobState;
use dfm_practice::signoff::{flat_report, JobSpec, ServiceConfig, SignoffService};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn block_gds() -> Vec<u8> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 6_000,
        height: 6_000,
        ..Default::default()
    };
    gds::to_bytes(&generate::routed_block(&tech, params, 47)).expect("serialise")
}

fn spec() -> JobSpec {
    JobSpec {
        name: "determinism".to_string(),
        tile: 1700,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

fn flat_text() -> String {
    let spec = spec();
    let lib = gds::from_bytes(&block_gds()).expect("lib");
    flat_report(&spec, &lib).expect("flat").render_text(&spec)
}

/// A unique temp dir per call, so property cases never share state.
fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dfms-det-{tag}-{}-{n}", std::process::id()))
}

#[test]
fn service_report_is_bit_identical_to_flat_at_worker_counts_1_2_8() {
    let gds_bytes = block_gds();
    let spec = spec();
    let flat = flat_text();
    for threads in [1usize, 2, 8] {
        let service = SignoffService::new(threads, None);
        let id = service.submit(spec.clone(), gds_bytes.clone()).expect("submit");
        let status = service.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "threads={threads}: {:?}", status.error);
        let (_, text) = service.report_text(id, false).expect("report");
        assert_eq!(text, flat, "scheduler changed report bytes at {threads} workers");
    }
}

#[test]
fn golden_report_digest_pinned() {
    // The canonical report text of the fixed job, digested. Pinned the
    // same way as the golden GDS stream: any engine, merge-order, or
    // rendering change must show up here as a conscious update.
    const GOLDEN_REPORT_DIGEST: u64 = 0xf486_2273_eb78_3655;
    let digest = dfm_check::fnv1a_64(flat_text().as_bytes());
    assert_eq!(
        digest, GOLDEN_REPORT_DIGEST,
        "canonical signoff report changed: digest {digest:#018x}"
    );
}

#[test]
fn cancel_at_random_points_then_resume_is_byte_identical() {
    let gds_bytes = block_gds();
    let spec = spec();
    let flat = flat_text();
    // Each case: a worker count, a random delay before cancelling (so
    // the cancel lands at a random tile boundary), and optionally a
    // second cancel/resume cycle. Whatever the interleaving, the
    // finished job must render the flat bytes.
    check(
        "signoff_cancel_resume",
        &Config::with_cases(10),
        &(1usize..5, 0u64..40, bools()),
        |&(threads, sleep_ms, double_cycle)| {
            let service = SignoffService::with_config(
                ServiceConfig::builder().threads(threads).tile_delay(Duration::from_millis(2)).build(),
            );
            let id = service.submit(spec.clone(), gds_bytes.clone()).map_err(|e| e.to_string())?;
            std::thread::sleep(Duration::from_millis(sleep_ms));
            let cycles = if double_cycle { 2 } else { 1 };
            for _ in 0..cycles {
                // The job may already be Done; cancel() then refuses,
                // which is fine — resume below is skipped too.
                if service.cancel(id).is_ok() {
                    let status = service.resume(id).map_err(|e| e.to_string())?;
                    prop_assert!(status.state == JobState::Running || status.state.is_terminal());
                }
            }
            let status = service.wait(id).map_err(|e| e.to_string())?;
            prop_assert_eq!(status.state, JobState::Done);
            let (_, text) = service.report_text(id, false).map_err(|e| e.to_string())?;
            prop_assert_eq!(&text, &flat);
            Ok(())
        },
    );
}

#[test]
fn resume_from_any_checkpoint_subset_is_byte_identical() {
    let gds_bytes = block_gds();
    let spec = spec();
    let flat = flat_text();
    // Each case: run the job to completion with checkpointing, then
    // simulate an arbitrary crash by deleting a random subset of the
    // tile files, restart a fresh service over the directory, resume,
    // and compare bytes. This covers every completed-tile set a real
    // kill could leave behind — including "none" and "all".
    check(
        "signoff_checkpoint_subset_resume",
        &Config::with_cases(8),
        &dfm_check::vec(bools(), 16..17),
        |keep_mask| {
            let root = fresh_dir("subset");
            let id = {
                let service = SignoffService::new(4, Some(root.clone()));
                let id = service.submit(spec.clone(), gds_bytes.clone()).map_err(|e| e.to_string())?;
                let status = service.wait(id).map_err(|e| e.to_string())?;
                prop_assert_eq!(status.state, JobState::Done);
                id
            };
            let job_dir = root.join(format!("job-{id}"));
            let mut deleted = 0;
            let mut tile = 0;
            loop {
                let path = job_dir.join(format!("tile-{tile}.bin"));
                if !path.exists() {
                    break;
                }
                if !keep_mask[tile % keep_mask.len()] {
                    std::fs::remove_file(&path).map_err(|e| e.to_string())?;
                    deleted += 1;
                }
                tile += 1;
            }
            prop_assert!(tile > 1, "fixture must be multi-tile");
            // Second life: the surviving subset is loaded, the rest is
            // recomputed.
            let service = SignoffService::new(4, Some(root.clone()));
            let status = service.status(id).map_err(|e| e.to_string())?;
            prop_assert_eq!(status.state, JobState::Partial);
            service.resume(id).map_err(|e| e.to_string())?;
            let status = service.wait(id).map_err(|e| e.to_string())?;
            prop_assert_eq!(status.state, JobState::Done);
            let (_, text) = service.report_text(id, false).map_err(|e| e.to_string())?;
            drop(service);
            let _ = std::fs::remove_dir_all(&root);
            prop_assert_eq!(&text, &flat);
            let _ = deleted;
            Ok(())
        },
    );
}
