//! Cache-determinism suite: the content-addressed tile-result cache
//! must be invisible in the bytes. A warm run may skip every compute,
//! but its report — and its event stream, once the `TileCacheHit`/
//! `TileCacheStore` markers are set aside — must be identical to the
//! cold run, at any worker count, under any fault plan. And an edited
//! layout must recompute exactly the tiles whose content digest
//! changed, then still render the byte-exact from-scratch report.

use dfm_practice::cache::TileCache;
use dfm_practice::fault::{FaultPlan, FaultPlane};
use dfm_practice::geom::Rect;
use dfm_practice::layout::{gds, generate, layers, Cell, Library, Technology};
use dfm_practice::rand::{Rng, Seed};
use dfm_practice::signoff::service::{JobEvent, JobEventKind, JobState, JobStatus};
use dfm_practice::signoff::{flat_report, JobContext, JobSpec, ServiceConfig, SignoffService};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn block_gds() -> Vec<u8> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 6_000,
        height: 6_000,
        ..Default::default()
    };
    gds::to_bytes(&generate::routed_block(&tech, params, 47)).expect("serialise")
}

fn block_spec() -> JobSpec {
    JobSpec {
        name: "determinism".to_string(),
        tile: 1700,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

/// A unique temp dir per call, so cases never share cache state.
fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dfms-cache-{tag}-{}-{n}", std::process::id()))
}

/// A random single-cell layout: `n_rects` METAL1 rectangles scattered
/// over a `extent`×`extent` nm window, purely from `seed`.
fn random_library(seed: u64, n_rects: usize, extent: i64) -> Library {
    let mut rng = Rng::from_seed(Seed(0xcac4e).derive(seed));
    let mut cell = Cell::new("TOP");
    // An anchor rect pins the layout extent so the tile grid is stable
    // across edits.
    cell.add_rect(layers::METAL1, Rect::new(0, 0, 120, 120));
    cell.add_rect(layers::METAL1, Rect::new(extent - 120, extent - 120, extent, extent));
    for _ in 0..n_rects {
        let x = rng.range(0..extent - 420);
        let y = rng.range(0..extent - 420);
        let w = rng.range(90..400);
        let h = rng.range(90..400);
        cell.add_rect(layers::METAL1, Rect::new(x, y, x + w, y + h));
    }
    let mut lib = Library::new("cache-prop");
    lib.add_cell(cell).expect("cell");
    lib
}

/// The spec the random-layout cases run under: litho + critical area
/// (DRC off keeps the violation lists — and the runtime — small; the
/// cache key covers the deck either way, which the fixed-block tests
/// pin with the full default deck).
fn random_spec() -> JobSpec {
    JobSpec {
        name: "cache-prop".to_string(),
        tile: 1000,
        halo: 64,
        drc: false,
        ca_layer: Some(layers::METAL1),
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

fn service_with(
    threads: usize,
    cache: &Arc<TileCache>,
    plan: Option<&FaultPlan>,
) -> SignoffService {
    SignoffService::with_config(ServiceConfig {
        cache: Some(Arc::clone(cache)),
        fault_plane: plan.map(|p| Arc::new(FaultPlane::new(p.clone()))),
        ..ServiceConfig::new(threads)
    })
}

/// One full run against a shared cache: (status, events, report text —
/// None when the job failed outright).
fn run_once(
    threads: usize,
    cache: &Arc<TileCache>,
    plan: Option<&FaultPlan>,
    spec: &JobSpec,
    gds_bytes: &[u8],
) -> (JobStatus, Vec<JobEvent>, Option<String>) {
    let service = service_with(threads, cache, plan);
    let id = service.submit(spec.clone(), gds_bytes.to_vec()).expect("submit");
    let status = service.wait(id).expect("wait");
    let events = service.events(id, 0).expect("events");
    let text = service.report_text(id, false).ok().map(|(_, t)| t);
    (status, events, text)
}

/// The event stream with the cache markers set aside — what must be
/// byte-identical between a cold and a warm run. Sequence numbers are
/// dropped with the markers (they shift when markers disappear); the
/// kind order is the contract.
fn sans_cache_markers(events: &[JobEvent]) -> Vec<JobEventKind> {
    events
        .iter()
        .filter(|e| {
            !matches!(
                e.kind,
                JobEventKind::TileCacheHit { .. } | JobEventKind::TileCacheStore { .. }
            )
        })
        .map(|e| e.kind.clone())
        .collect()
}

fn hit_tiles(events: &[JobEvent]) -> Vec<usize> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            JobEventKind::TileCacheHit { tile } => Some(tile),
            _ => None,
        })
        .collect()
}

#[test]
fn warm_resubmission_computes_zero_tiles_and_keeps_the_golden_digest() {
    // The acceptance pin: prime the cache once at 1 worker, then
    // resubmit the unchanged layout at 1, 2, and 8 workers. Every warm
    // run must serve all tiles from the cache (zero computes — the
    // pool never sees a task) and render the exact golden report.
    const GOLDEN_REPORT_DIGEST: u64 = 0xf486_2273_eb78_3655;
    let gds_bytes = block_gds();
    let spec = block_spec();
    let root = fresh_dir("golden");
    let cache = Arc::new(TileCache::open(&root, None).expect("cache"));
    let (cold_status, cold_events, cold_text) =
        run_once(1, &cache, None, &spec, &gds_bytes);
    assert_eq!(cold_status.state, JobState::Done, "{:?}", cold_status.error);
    assert_eq!(cold_status.tiles_cached, 0, "a cold run hits nothing");
    let cold_text = cold_text.expect("report");
    let digest = dfm_check::fnv1a_64(cold_text.as_bytes());
    assert_eq!(
        digest, GOLDEN_REPORT_DIGEST,
        "caching changed cold-run report bytes: digest {digest:#018x}"
    );
    assert_eq!(cache.len(), cold_status.tiles_total, "every tile stored");
    for threads in [1usize, 2, 8] {
        let warm = service_with(threads, &cache, None);
        let id = warm.submit(spec.clone(), gds_bytes.clone()).expect("submit");
        let status = warm.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "threads={threads}: {:?}", status.error);
        assert_eq!(
            status.tiles_cached, status.tiles_total,
            "threads={threads}: warm run must compute zero tiles"
        );
        assert_eq!(
            warm.pool_stats().completed, 0,
            "threads={threads}: no tile task may reach the pool"
        );
        let (_, text) = warm.report_text(id, false).expect("report");
        assert_eq!(text, cold_text, "threads={threads}: warm bytes differ from cold");
        let events = warm.events(id, 0).expect("events");
        assert_eq!(
            sans_cache_markers(&events),
            sans_cache_markers(&cold_events),
            "threads={threads}: event stream (modulo cache markers) changed"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cold_and_warm_runs_agree_modulo_markers_for_random_layouts_and_faults() {
    // Property: for random layouts, with and without a fault plan, and
    // at 1/2/8 workers (each worker count over its own fresh cache),
    // the warm event stream equals the cold one once cache markers are
    // set aside, and the report bytes are identical — to the cold run
    // and across worker counts.
    dfm_check::check(
        "cache_cold_warm_equivalence",
        &dfm_check::Config::with_cases(4),
        &(0u64..1_000, dfm_check::bools()),
        |&(seed, with_faults)| {
            let lib = random_library(seed, 60, 4_000);
            let gds_bytes = gds::to_bytes(&lib).map_err(|e| e.to_string())?;
            let spec = random_spec();
            let plan = with_faults.then(|| {
                FaultPlan::parse(&format!(
                    "seed {seed}\n\
                     rule signoff.tile.compute panic p=0.3\n\
                     rule signoff.cache.read error p=0.2\n\
                     rule signoff.cache.write error p=0.2\n"
                ))
                .expect("plan")
            });
            let mut baseline: Option<(Vec<JobEventKind>, Option<String>)> = None;
            for threads in [1usize, 2, 8] {
                let root = fresh_dir("prop");
                let cache = Arc::new(TileCache::open(&root, None).map_err(|e| e.to_string())?);
                let (cold_status, cold_events, cold_text) =
                    run_once(threads, &cache, plan.as_ref(), &spec, &gds_bytes);
                dfm_check::prop_assert!(
                    cold_status.state == JobState::Done || cold_status.state == JobState::Partial,
                    "cold run must settle"
                );
                let (warm_status, warm_events, warm_text) =
                    run_once(threads, &cache, plan.as_ref(), &spec, &gds_bytes);
                dfm_check::prop_assert_eq!(warm_status.state, cold_status.state);
                dfm_check::prop_assert_eq!(
                    sans_cache_markers(&warm_events),
                    sans_cache_markers(&cold_events)
                );
                dfm_check::prop_assert_eq!(&warm_text, &cold_text);
                if plan.is_none() {
                    // Fault-free: the second run must be fully warm.
                    dfm_check::prop_assert_eq!(warm_status.tiles_cached, warm_status.tiles_total);
                }
                match &baseline {
                    None => baseline = Some((sans_cache_markers(&cold_events), cold_text)),
                    Some((events, text)) => {
                        dfm_check::prop_assert_eq!(&sans_cache_markers(&cold_events), events);
                        dfm_check::prop_assert_eq!(&cold_text, text);
                    }
                }
                let _ = std::fs::remove_dir_all(&root);
            }
            Ok(())
        },
    );
}

#[test]
fn edited_layout_recomputes_exactly_the_dirty_tiles() {
    // Submit, edit one spot, submit again: the warm run must hit
    // exactly the tiles whose content digest is unchanged, recompute
    // the rest, and render the byte-exact from-scratch report of the
    // edited layout — at 1, 2, and 8 workers.
    dfm_check::check(
        "cache_incremental_resignoff",
        &dfm_check::Config::with_cases(3),
        &(0u64..1_000, 0u64..1_000),
        |&(seed, edit_seed)| {
            let spec = random_spec();
            let base = random_library(seed, 60, 4_000);
            let base_gds = gds::to_bytes(&base).map_err(|e| e.to_string())?;
            // The edit: one extra rect at a position drawn from
            // edit_seed — a tile-local mutation (it may straddle a
            // boundary; the digest comparison below is the truth).
            let mut rng = Rng::from_seed(Seed(0xed17).derive(edit_seed));
            let (x, y) = (rng.range(200..3_400), rng.range(200..3_400));
            let mut edited = random_library(seed, 60, 4_000);
            {
                let id = edited.top().ok_or("edited library has no top cell")?;
                edited.cell_mut(id).add_rect(layers::METAL1, Rect::new(x, y, x + 150, y + 150));
            }
            let edited_gds = gds::to_bytes(&edited).map_err(|e| e.to_string())?;
            // Ground truth from the digests themselves.
            let ctx_base = JobContext::build(&spec, &base_gds).map_err(|e| e.to_string())?;
            let ctx_edit = JobContext::build(&spec, &edited_gds).map_err(|e| e.to_string())?;
            dfm_check::prop_assert_eq!(ctx_base.tile_count(), ctx_edit.tile_count());
            let clean: Vec<usize> = (0..ctx_base.tile_count())
                .filter(|&t| ctx_base.tile_content_digest(t) == ctx_edit.tile_content_digest(t))
                .collect();
            dfm_check::prop_assert!(
                clean.len() < ctx_base.tile_count(),
                "the edit must dirty at least one tile"
            );
            let flat_edited = flat_report(&spec, &gds::from_bytes(&edited_gds).expect("lib"))
                .map_err(|e| e.to_string())?
                .render_text(&spec);
            for threads in [1usize, 2, 8] {
                let root = fresh_dir("edit");
                let cache = Arc::new(TileCache::open(&root, None).map_err(|e| e.to_string())?);
                let (cold_status, _, _) = run_once(threads, &cache, None, &spec, &base_gds);
                dfm_check::prop_assert_eq!(cold_status.state, JobState::Done);
                let (status, events, text) =
                    run_once(threads, &cache, None, &spec, &edited_gds);
                dfm_check::prop_assert_eq!(status.state, JobState::Done);
                dfm_check::prop_assert_eq!(
                    hit_tiles(&events),
                    clean.clone(),
                    "hits must be exactly the digest-clean tiles (threads {})",
                    threads
                );
                dfm_check::prop_assert_eq!(
                    status.tiles_total - status.tiles_cached,
                    ctx_base.tile_count() - clean.len(),
                    "recomputed set is exactly the dirty set (threads {})",
                    threads
                );
                dfm_check::prop_assert_eq!(
                    text.as_deref(),
                    Some(flat_edited.as_str()),
                    "edited warm run must match the from-scratch flat report (threads {})",
                    threads
                );
                let _ = std::fs::remove_dir_all(&root);
            }
            Ok(())
        },
    );
}

#[test]
fn eviction_trades_hits_for_recomputes_never_bytes() {
    // A cache too small for the whole job still yields the exact
    // report: evicted entries become recomputes (and re-stores), and
    // the surviving entries still hit.
    let gds_bytes = block_gds();
    let spec = block_spec();
    let root = fresh_dir("evict");
    // Room for roughly half the job's tiles.
    let probe = {
        let ctx = JobContext::build(&spec, &gds_bytes).expect("ctx");
        ctx.tile_count()
    };
    let cache = Arc::new(TileCache::open(&root, Some(2_048 * probe as u64 / 2)).expect("cache"));
    let (cold_status, _, cold_text) = run_once(1, &cache, None, &spec, &gds_bytes);
    assert_eq!(cold_status.state, JobState::Done);
    let cold_text = cold_text.expect("report");
    assert!(
        cache.len() < cold_status.tiles_total,
        "fixture must actually evict (len {} of {})",
        cache.len(),
        cold_status.tiles_total
    );
    assert!(!cache.is_empty(), "eviction keeps the newest entries");
    let (warm_status, _, warm_text) = run_once(1, &cache, None, &spec, &gds_bytes);
    assert_eq!(warm_status.state, JobState::Done);
    assert!(warm_status.tiles_cached < warm_status.tiles_total, "some tiles were evicted");
    assert_eq!(warm_text.as_deref(), Some(cold_text.as_str()), "eviction changed bytes");
    let _ = std::fs::remove_dir_all(&root);
}
