//! Fault-injection determinism suite: with a fixed fault plan, the
//! *entire observable behaviour* of the signoff service — the event
//! stream (retries, quarantines, tile completions, state changes), the
//! quarantine manifest, and the final report bytes — must be identical
//! at 1, 2, and 8 workers. And with an empty plan, the fault plane
//! must be invisible: the report still digests to the pinned golden
//! value.

use dfm_practice::fault::{FaultAction, FaultPlan, FaultPlane, FaultRule};
use dfm_practice::signoff::service::{
    JobEvent, JobEventKind, JobState, SITE_TILE_COMPUTE, SITE_TILE_DELAY,
};
use dfm_practice::signoff::{
    flat_report, JobSpec, ServiceConfig, SignoffService, SupervisionPolicy,
};
use std::sync::Arc;

use dfm_practice::layout::{gds, generate, layers, Technology};

fn block_gds() -> Vec<u8> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 6_000,
        height: 6_000,
        ..Default::default()
    };
    gds::to_bytes(&generate::routed_block(&tech, params, 47)).expect("serialise")
}

fn spec() -> JobSpec {
    JobSpec {
        name: "determinism".to_string(),
        tile: 1700,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

fn flat_text() -> String {
    let spec = spec();
    let lib = gds::from_bytes(&block_gds()).expect("lib");
    flat_report(&spec, &lib).expect("flat").render_text(&spec)
}

fn faulty_service(threads: usize, plan: &FaultPlan) -> SignoffService {
    SignoffService::with_config(ServiceConfig {
        fault_plane: Some(Arc::new(FaultPlane::new(plan.clone()))),
        ..ServiceConfig::new(threads)
    })
}

/// One full run under a plan: (state, events, quarantined tiles,
/// report text — None when the job failed outright).
fn run_once(
    threads: usize,
    plan: &FaultPlan,
    spec: &JobSpec,
    gds_bytes: &[u8],
) -> (JobState, Vec<JobEvent>, Vec<usize>, Option<String>) {
    let service = faulty_service(threads, plan);
    let id = service.submit(spec.clone(), gds_bytes.to_vec()).expect("submit");
    let status = service.wait(id).expect("wait");
    let events = service.events(id, 0).expect("events");
    let quarantined: Vec<usize> = events
        .iter()
        .filter_map(|e| match e.kind {
            JobEventKind::TileQuarantined { tile, .. } => Some(tile),
            _ => None,
        })
        .collect();
    let text = service.report_text(id, false).ok().map(|(_, t)| t);
    (status.state, events, quarantined, text)
}

#[test]
fn fixed_plan_behaviour_is_identical_at_worker_counts_1_2_8() {
    let gds_bytes = block_gds();
    let spec = spec();
    // Probabilistic plans, parsed from the text format so this suite
    // also covers the plan round-trip. Panic probability 0.45 per
    // (tile, attempt) with a budget of 3 attempts quarantines a tile
    // with probability ~0.09 — across these seeds both the retry-then-
    // succeed and the quarantine paths are exercised.
    for seed in [1u64, 7, 23, 91] {
        let plan_text = format!(
            "seed {seed}\n\
             rule {SITE_TILE_COMPUTE} panic p=0.45\n\
             rule {SITE_TILE_DELAY} delay=60000 p=0.1\n"
        );
        let plan = FaultPlan::parse(&plan_text).expect("plan");
        assert_eq!(FaultPlan::parse(&plan.render()).expect("reparse"), plan, "render round-trip");
        let baseline = run_once(1, &plan, &spec, &gds_bytes);
        assert!(
            baseline.0 == JobState::Done || baseline.0 == JobState::Partial,
            "seed {seed}: tile faults must settle Done or Partial, got {:?}",
            baseline.0
        );
        assert!(baseline.3.is_some(), "seed {seed}: a settled job has a report");
        for threads in [2usize, 8] {
            let run = run_once(threads, &plan, &spec, &gds_bytes);
            assert_eq!(run.0, baseline.0, "seed {seed}, threads {threads}: state");
            assert_eq!(
                run.1, baseline.1,
                "seed {seed}, threads {threads}: full event stream (retries included)"
            );
            assert_eq!(run.2, baseline.2, "seed {seed}, threads {threads}: quarantine set");
            assert_eq!(run.3, baseline.3, "seed {seed}, threads {threads}: report bytes");
        }
    }
}

#[test]
fn empty_plan_reproduces_the_pinned_golden_digest() {
    // The armed-but-empty fault plane must be invisible in the bytes:
    // the same golden digest that pins the fault-free report pins this
    // one. (Same constant as tests/signoff_determinism.rs.)
    const GOLDEN_REPORT_DIGEST: u64 = 0xf486_2273_eb78_3655;
    let gds_bytes = block_gds();
    let spec = spec();
    let (state, _, quarantined, text) =
        run_once(4, &FaultPlan::empty(), &spec, &gds_bytes);
    assert_eq!(state, JobState::Done);
    assert!(quarantined.is_empty());
    let text = text.expect("report");
    assert_eq!(text, flat_text());
    let digest = dfm_check::fnv1a_64(text.as_bytes());
    assert_eq!(
        digest, GOLDEN_REPORT_DIGEST,
        "fault plane changed fault-free report bytes: digest {digest:#018x}"
    );
}

#[test]
fn below_threshold_faults_leave_no_trace_in_the_report() {
    // Every tile panics on its first attempt, and only then: each one
    // retries and succeeds, so the job must finish Done with report
    // bytes identical to the fault-free run — faults below the
    // quarantine threshold are invisible in the results.
    let gds_bytes = block_gds();
    let spec = spec();
    let plan = FaultPlan::seeded(13)
        .with_rule(FaultRule::new(SITE_TILE_COMPUTE, FaultAction::Panic).first_attempts(1));
    let flat = flat_text();
    for threads in [1usize, 4] {
        let (state, events, quarantined, text) = run_once(threads, &plan, &spec, &gds_bytes);
        assert_eq!(state, JobState::Done, "threads {threads}");
        assert!(quarantined.is_empty());
        assert_eq!(text.as_deref(), Some(flat.as_str()), "threads {threads}");
        let retries = events
            .iter()
            .filter(|e| matches!(e.kind, JobEventKind::TileRetry { .. }))
            .count();
        let tiles = events
            .iter()
            .filter(|e| matches!(e.kind, JobEventKind::TileDone { .. }))
            .count();
        assert_eq!(retries, tiles, "threads {threads}: exactly one retry per tile");
    }
}

#[test]
fn above_threshold_faults_settle_partial_with_an_exact_manifest() {
    // Tiles 0 and 3 panic on every attempt: after the full budget both
    // are quarantined, the job settles Partial (never Failed), and the
    // report equals the offline merge of exactly the surviving tiles
    // plus the manifest.
    use dfm_practice::signoff::{JobContext, TilePartial};
    let gds_bytes = block_gds();
    let spec = spec();
    let plan = FaultPlan::seeded(2)
        .with_rule(FaultRule::new(SITE_TILE_COMPUTE, FaultAction::Panic).key(0))
        .with_rule(FaultRule::new(SITE_TILE_COMPUTE, FaultAction::Panic).key(3));
    let service = faulty_service(4, &plan);
    let id = service.submit(spec.clone(), gds_bytes.clone()).expect("submit");
    let status = service.wait(id).expect("wait");
    assert_eq!(status.state, JobState::Partial, "{:?}", status.error);
    assert!(status.error.is_none(), "quarantine is graceful degradation, not failure");
    assert_eq!(status.tiles_quarantined, 2);
    let (_, report) = service.results(id, false).expect("settled partial has results");
    let q_tiles: Vec<usize> = report.quarantined.iter().map(|q| q.tile).collect();
    assert_eq!(q_tiles, vec![0, 3]);
    for q in &report.quarantined {
        assert_eq!(q.attempts, SupervisionPolicy::default().max_attempts);
        assert!(q.reason.contains("injected panic"), "{}", q.reason);
    }
    let ctx = JobContext::build(&spec, &gds_bytes).expect("ctx");
    let surviving: Vec<TilePartial> = (0..ctx.tile_count())
        .filter(|t| !q_tiles.contains(t))
        .map(|t| ctx.compute_tile(t))
        .collect();
    let mut expect = ctx.merge(&surviving).expect("merge");
    expect.quarantined = report.quarantined.clone();
    assert_eq!(report, expect, "Partial report == offline merge of the surviving set");
}
