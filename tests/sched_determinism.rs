//! Multi-tenant scheduler determinism suite.
//!
//! Two tenants with 2:1 weights submit equal-size jobs concurrently;
//! under any worker count (1, 2, 8) the grant sequence, every job's
//! event stream, and every report must be byte-identical — warm and
//! cold cache, with and without a fault plan. The scheduler's fairness
//! must also be visible in the grant log itself: every prefix stays
//! close to the 2:1 weighted share.

use dfm_practice::cache::TileCache;
use dfm_practice::fault::{FaultAction, FaultPlan, FaultPlane, FaultRule};
use dfm_practice::layout::{gds, generate, layers, Technology};
use dfm_practice::signoff::sched::render_grant_log;
use dfm_practice::signoff::service::{JobState, SITE_TILE_COMPUTE};
use dfm_practice::signoff::{
    JobSpec, SchedConfig, ServiceConfig, ServiceConfigBuilder, SignoffService, SubmitError,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn block_gds() -> Vec<u8> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 4_000,
        height: 4_000,
        ..Default::default()
    };
    gds::to_bytes(&generate::routed_block(&tech, params, 31)).expect("serialise")
}

fn spec_for(tenant: &str, priority: u8) -> JobSpec {
    JobSpec {
        name: format!("{tenant}-block"),
        tile: 1_100,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        tenant: tenant.to_string(),
        priority,
        ..JobSpec::default()
    }
}

/// The 2:1 tenant plan every test here schedules under. The in-flight
/// window of 2 is the determinism lever: it is a property of the
/// *scheduler*, not of the worker count, so the grant sequence cannot
/// depend on how many threads drain the pool.
fn plan() -> SchedConfig {
    SchedConfig::parse(
        "tenant a weight 2\n\
         tenant b weight 1\n\
         global max_inflight 2\n",
    )
    .expect("tenant plan")
}

/// A service with the 2:1 plan and a tile delay long enough that both
/// submissions land before the first tile can resolve — the fixed
/// submission order the determinism guarantee is stated against.
fn builder(threads: usize) -> ServiceConfigBuilder {
    ServiceConfig::builder()
        .threads(threads)
        .sched(plan())
        .tile_delay(Duration::from_millis(60))
}

/// One full two-tenant run: submit a's job then b's, wait both out,
/// and capture every observable byte — the rendered grant log, each
/// job's event stream, and each job's report text.
fn run_pair(service: &SignoffService) -> (String, Vec<String>, Vec<String>) {
    let gds_bytes = block_gds();
    let a = service.submit(spec_for("a", 0), gds_bytes.clone()).expect("submit a");
    let b = service.submit(spec_for("b", 0), gds_bytes).expect("submit b");
    let mut events = Vec::new();
    let mut reports = Vec::new();
    for id in [a, b] {
        let status = service.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "job {id}: {:?}", status.error);
        events.push(format!("{:?}", service.events(id, 0).expect("events")));
        reports.push(service.report_text(id, false).expect("report").1);
    }
    (render_grant_log(&service.grant_log()), events, reports)
}

/// A unique temp dir per call, so cases never share cache state.
fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dfms-sched-{tag}-{}-{n}", std::process::id()))
}

/// Asserts the weighted 2:1 share holds in every prefix of the grant
/// log: after any k grants, tenant a has close to twice tenant b's
/// count. The slack of 3 covers the window-2 head start and the lane
/// that drains first.
fn assert_weighted_prefixes(log: &str) {
    let (mut a, mut b) = (0i64, 0i64);
    for line in log.lines() {
        if line.contains(" tenant a ") {
            a += 1;
        } else if line.contains(" tenant b ") {
            b += 1;
        } else {
            panic!("unexpected grant line: {line}");
        }
        // Once a lane is drained the other takes every remaining
        // grant; only police the region where both still have tiles.
        if a < 16 && b < 16 {
            assert!((a - 2 * b).abs() <= 3, "prefix a={a} b={b} strays from 2:1\n{log}");
        }
    }
    assert_eq!((a, b), (16, 16), "each job has 16 tiles\n{log}");
}

#[test]
fn grant_log_events_and_reports_identical_at_1_2_8_workers() {
    let mut golden: Option<(String, Vec<String>, Vec<String>)> = None;
    for threads in [1usize, 2, 8] {
        let service = SignoffService::with_config(builder(threads).build());
        let run = run_pair(&service);
        assert_weighted_prefixes(&run.0);
        match &golden {
            None => golden = Some(run),
            Some(g) => {
                assert_eq!(run.0, g.0, "grant log changed at {threads} workers");
                assert_eq!(run.1, g.1, "event streams changed at {threads} workers");
                assert_eq!(run.2, g.2, "reports changed at {threads} workers");
            }
        }
    }
}

#[test]
fn grant_log_is_identical_under_a_fault_plan() {
    // First-attempt compute panics on tiles 3 and 9 (of both jobs —
    // the site is keyed by tile index) force the retry path, which
    // must not perturb the grant sequence: retries hold their slot and
    // never re-enter the lanes.
    let plan = FaultPlan::seeded(5)
        .with_rule(FaultRule::new(SITE_TILE_COMPUTE, FaultAction::Panic).first_attempts(1).key(3))
        .with_rule(FaultRule::new(SITE_TILE_COMPUTE, FaultAction::Panic).first_attempts(1).key(9));
    let mut golden: Option<(String, Vec<String>, Vec<String>)> = None;
    for threads in [1usize, 2, 8] {
        let plane = Arc::new(FaultPlane::new(plan.clone()));
        let service = SignoffService::with_config(builder(threads).fault_plane(plane).build());
        let run = run_pair(&service);
        match &golden {
            None => golden = Some(run),
            Some(g) => {
                assert_eq!(run.0, g.0, "faulty grant log changed at {threads} workers");
                assert_eq!(run.1, g.1, "faulty event streams changed at {threads} workers");
                assert_eq!(run.2, g.2, "faulty reports changed at {threads} workers");
            }
        }
    }
    // The faults actually fired: the event streams mention retries.
    let (_, events, _) = golden.expect("ran");
    assert!(events.iter().any(|e| e.contains("TileRetry")), "no retry observed: {events:?}");
}

#[test]
fn warm_cache_runs_are_identical_and_grant_nothing() {
    let dir = fresh_dir("warm");
    // Cold pass: one service populates the cache.
    let cold = {
        let cache = Arc::new(TileCache::open(&dir, None).expect("cache"));
        let service = SignoffService::with_config(builder(2).cache(cache).build());
        run_pair(&service)
    };
    assert_weighted_prefixes(&cold.0);
    // Warm passes: every tile is served from the store before the
    // scheduler sees it, so the grant log is empty — at any worker
    // count — and the reports are byte-identical to the cold run's.
    let mut golden_warm: Option<Vec<String>> = None;
    for threads in [1usize, 2, 8] {
        let cache = Arc::new(TileCache::open(&dir, None).expect("cache"));
        let service = SignoffService::with_config(builder(threads).cache(cache).build());
        let (log, _, reports) = run_pair(&service);
        assert_eq!(log, "", "warm tiles must not be granted at {threads} workers");
        assert_eq!(reports, cold.2, "warm reports differ from cold at {threads} workers");
        match &golden_warm {
            None => golden_warm = Some(reports),
            Some(g) => assert_eq!(&reports, g, "warm reports changed at {threads} workers"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_control_rejects_and_recovers() {
    let cfg = SchedConfig::parse(
        "tenant a weight 2 max_jobs 1\n\
         tenant b weight 1 max_tiles 8\n",
    )
    .expect("plan");
    let service = SignoffService::with_config(
        ServiceConfig::builder()
            .threads(2)
            .sched(cfg)
            .tile_delay(Duration::from_millis(20))
            .build(),
    );
    let gds_bytes = block_gds();
    // Unknown tenant: no wildcard policy, so 'ghost' is refused.
    let err = service.submit_job(spec_for("ghost", 0), gds_bytes.clone()).unwrap_err();
    match err {
        SubmitError::Rejected(r) => assert_eq!(r.code.name(), "unknown_tenant"),
        other => panic!("expected rejection, got {other}"),
    }
    // Tenant a may hold one active job; the second is quota-bounced
    // with a deterministic retry hint.
    let first = service.submit(spec_for("a", 0), gds_bytes.clone()).expect("first");
    match service.submit_job(spec_for("a", 0), gds_bytes.clone()).unwrap_err() {
        SubmitError::Rejected(r) => {
            assert_eq!(r.code.name(), "quota_exceeded");
            assert!(r.retry_after_vms.is_some(), "quota rejections carry a retry hint");
        }
        other => panic!("expected rejection, got {other}"),
    }
    // Tenant b's 16-tile job exceeds its 8-tile queue quota outright.
    match service.submit_job(spec_for("b", 0), gds_bytes.clone()).unwrap_err() {
        SubmitError::Rejected(r) => assert_eq!(r.code.name(), "quota_exceeded"),
        other => panic!("expected rejection, got {other}"),
    }
    // Once the active job settles, its reservations are released and
    // tenant a is admitted again.
    assert_eq!(service.wait(first).expect("wait").state, JobState::Done);
    let second = service.submit(spec_for("a", 0), gds_bytes).expect("after settle");
    assert_eq!(service.wait(second).expect("wait").state, JobState::Done);
}

#[test]
fn priorities_jump_the_grant_queue() {
    // Everything lands before the first resolution (60 ms delay), so
    // the high-priority job — submitted *last* — must still receive
    // every grant after the in-flight window frees, ahead of the
    // backlogged priority-0 lanes.
    let service = SignoffService::with_config(builder(1).build());
    let gds_bytes = block_gds();
    let _low_a = service.submit(spec_for("a", 0), gds_bytes.clone()).expect("a");
    let _low_b = service.submit(spec_for("b", 0), gds_bytes.clone()).expect("b");
    let hi = service.submit(spec_for("b", 7), gds_bytes).expect("hi");
    assert_eq!(service.wait(hi).expect("wait").state, JobState::Done);
    let log = render_grant_log(&service.grant_log());
    let hi_lines: Vec<usize> = log
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(&format!(" job {hi} ")))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(hi_lines.len(), 16, "high-priority job fully granted\n{log}");
    // At most the two window-held grants precede it; after that the
    // priority-7 lane owns the queue until drained.
    let first = hi_lines[0];
    assert!(first <= 2, "priority lane started at grant {first}\n{log}");
    let span = hi_lines[15] - hi_lines[0];
    assert_eq!(span, 15, "priority lane was interleaved\n{log}");
}
