//! Shard-coordinator determinism suite: horizontal scale-out must be
//! invisible in the bytes. One fixed job is run through a coordinator
//! fanning out to 2 and 3 shard servers, at several worker counts and
//! cache temperatures — and every run must produce the exact event
//! stream, report text, and golden digest of a single-process run.

use dfm_practice::cache::TileCache;
use dfm_practice::layout::{gds, generate, layers, Technology};
use dfm_practice::signoff::service::{JobEvent, JobEventKind, JobState};
use dfm_practice::signoff::{
    flat_report, Client, JobSpec, Server, ServiceConfig, SignoffService,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Digest of the canonical report text for the fixed job — the same
/// pin as `tests/signoff_determinism.rs`.
const GOLDEN_REPORT_DIGEST: u64 = 0xf486_2273_eb78_3655;

fn block_gds() -> Vec<u8> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 6_000,
        height: 6_000,
        ..Default::default()
    };
    gds::to_bytes(&generate::routed_block(&tech, params, 47)).expect("serialise")
}

fn spec() -> JobSpec {
    JobSpec {
        name: "determinism".to_string(),
        tile: 1700,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

fn flat_text() -> String {
    let spec = spec();
    let lib = gds::from_bytes(&block_gds()).expect("lib");
    flat_report(&spec, &lib).expect("flat").render_text(&spec)
}

/// A unique temp dir per call, so cases never share state.
fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dfms-shard-{tag}-{}-{n}", std::process::id()))
}

/// Starts one shard server on an ephemeral port; returns its address.
/// The serve loop runs on a detached thread until `shutdown_all`.
fn spawn_shard(k: u64, n: u64, threads: usize, cache: Option<Arc<TileCache>>) -> String {
    let mut cfg = ServiceConfig::builder().threads(threads).shard_of(k, n);
    if let Some(cache) = cache {
        cfg = cfg.cache(cache);
    }
    let service = Arc::new(SignoffService::with_config(cfg.build()));
    let server = Server::bind(service, 0).expect("bind shard");
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || {
        let _ = server.serve();
    });
    addr
}

fn shutdown_all(addrs: &[String]) {
    for addr in addrs {
        if let Ok(mut client) = Client::connect(addr) {
            let _ = client.shutdown();
        }
    }
}

/// Submits the fixed job and returns `(state, events, report text)`.
fn run_job(service: &SignoffService) -> (JobState, Vec<JobEvent>, String) {
    let id = service.submit(spec(), block_gds()).expect("submit");
    let status = service.wait(id).expect("wait");
    let events = service.events(id, 0).expect("events");
    let (_, text) = service.report_text(id, true).expect("report");
    (status.state, events, text)
}

#[test]
fn coordinated_run_matches_single_process_at_any_shard_and_worker_count() {
    let flat = flat_text();
    assert_eq!(dfm_check::fnv1a_64(flat.as_bytes()), GOLDEN_REPORT_DIGEST);
    for threads in [1usize, 2, 8] {
        let baseline = SignoffService::with_config(ServiceConfig::builder().threads(threads).build());
        let (state, base_events, base_text) = run_job(&baseline);
        assert_eq!(state, JobState::Done, "baseline at {threads} workers");
        assert_eq!(base_text, flat, "baseline report bytes at {threads} workers");
        for n_shards in [2u64, 3] {
            let addrs: Vec<String> =
                (0..n_shards).map(|k| spawn_shard(k, n_shards, threads, None)).collect();
            let coord = SignoffService::with_config(
                ServiceConfig::builder().threads(threads).shards(addrs.clone()).build(),
            );
            let (state, events, text) = run_job(&coord);
            shutdown_all(&addrs);
            assert_eq!(
                state,
                JobState::Done,
                "coordinated {n_shards}-shard run at {threads} workers"
            );
            assert_eq!(
                events, base_events,
                "sharding changed the event stream ({n_shards} shards, {threads} workers)"
            );
            assert_eq!(
                text, flat,
                "sharding changed report bytes ({n_shards} shards, {threads} workers)"
            );
        }
    }
}

#[test]
fn coordinated_cache_temperature_is_invisible_in_bytes() {
    let flat = flat_text();
    let base_dir = fresh_dir("base-cache");
    let shard_dir = fresh_dir("shard-cache");

    // Single-process baseline with a tile cache: cold run stores,
    // warm run hits.
    let base_cache = Arc::new(TileCache::open(&base_dir, None).expect("open baseline cache"));
    let baseline = SignoffService::with_config(
        ServiceConfig::builder().threads(4).cache(base_cache).build(),
    );
    let (state, base_cold_events, base_cold_text) = run_job(&baseline);
    assert_eq!(state, JobState::Done);
    let (state, base_warm_events, base_warm_text) = run_job(&baseline);
    assert_eq!(state, JobState::Done);
    assert!(
        base_warm_events.iter().any(|e| matches!(e.kind, JobEventKind::TileCacheHit { .. })),
        "warm baseline run must hit the cache"
    );

    // Coordinated: two shards sharing one cache store; the coordinator
    // itself is cache-less — cache events replay from the shards.
    let shard_cache = Arc::new(TileCache::open(&shard_dir, None).expect("open shard cache"));
    let addrs: Vec<String> =
        (0..2).map(|k| spawn_shard(k, 2, 4, Some(Arc::clone(&shard_cache)))).collect();
    let coord = SignoffService::with_config(
        ServiceConfig::builder().threads(4).shards(addrs.clone()).build(),
    );
    let (state, cold_events, cold_text) = run_job(&coord);
    assert_eq!(state, JobState::Done, "coordinated cold run");
    let (state, warm_events, warm_text) = run_job(&coord);
    shutdown_all(&addrs);
    assert_eq!(state, JobState::Done, "coordinated warm run");

    assert_eq!(cold_events, base_cold_events, "cold-cache event streams diverge");
    assert_eq!(warm_events, base_warm_events, "warm-cache event streams diverge");
    for text in [&base_cold_text, &base_warm_text, &cold_text, &warm_text] {
        assert_eq!(text, &flat, "cache temperature changed report bytes");
        assert_eq!(dfm_check::fnv1a_64(text.as_bytes()), GOLDEN_REPORT_DIGEST);
    }

    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&shard_dir);
}
